// Shard placement for the partitioned database tier (ISSUE 8 tentpole).
//
// The database splits its tables into N independent shards; the ShardMap
// decides which shard owns a primary key. Placement must be a pure function
// of (table, key, num_shards) and identical across processes: replicas
// mirror the master's per-shard numbering record by record, and recovery
// re-derives ownership from the key alone, so a map that hashed
// differently per process (std::hash is free to) would silently corrupt
// both. The default map is FNV-1a over the canonical key string.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace nagano::db {

// Sentinel shard filter: deliver changes from every shard.
inline constexpr uint32_t kAllShards = UINT32_MAX;

class ShardMap {
 public:
  virtual ~ShardMap() = default;
  // Shard owning `key` (its canonical KeyString) in `table`. Must return a
  // value < num_shards and be deterministic across processes and runs.
  virtual uint32_t ShardOf(std::string_view table, std::string_view key,
                           uint32_t num_shards) const = 0;
};

// Default placement: FNV-1a of the key bytes, modulo the shard count. The
// table name is deliberately not hashed — co-locating a key's rows across
// tables keeps the Olympic generators' per-entity reads single-shard.
class HashShardMap final : public ShardMap {
 public:
  uint32_t ShardOf(std::string_view, std::string_view key,
                   uint32_t num_shards) const override {
    uint64_t h = 1469598103934665603ull;
    for (const char c : key) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return num_shards <= 1 ? 0 : static_cast<uint32_t>(h % num_shards);
  }

  static const HashShardMap& Instance() {
    static const HashShardMap map;
    return map;
  }
};

// Position in the shard-aware change feed: positions[k] is the last
// consumed per-shard seqno of shard k (0 = from genesis). A cursor shorter
// than the shard count reads the missing shards from genesis, so a
// default-constructed cursor means "everything".
struct ChangeCursor {
  std::vector<uint64_t> positions;

  bool empty() const { return positions.empty(); }
  uint64_t at(size_t shard) const {
    return shard < positions.size() ? positions[shard] : 0;
  }
};

}  // namespace nagano::db
