#include "db/database.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>

namespace nagano::db {

std::string KeyString(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(*i));
    return buf;
  }
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

bool TypeMatches(const Value& v, ColumnType type) {
  switch (type) {
    case ColumnType::kInt: return std::holds_alternative<int64_t>(v);
    case ColumnType::kDouble: return std::holds_alternative<double>(v);
    case ColumnType::kString: return std::holds_alternative<std::string>(v);
  }
  return false;
}

Database::Database(DatabaseOptions options)
    : clock_(options.clock ? options.clock : &RealClock::Instance()),
      faults_(options.faults),
      wal_(options.wal),
      retention_(options.change_log_retention) {
  ValidateOrDie(options, "DatabaseOptions");
  const auto scope = metrics::Scope::Resolve(options.metrics, "db");
  instance_ = scope.labels.empty() ? std::string() : scope.labels[0].second;
  commits_ = scope.GetCounter("nagano_db_commits_total",
                              "mutations appended to the change log");
  recovered_records_ =
      scope.GetCounter("nagano_db_recovered_records_total",
                       "change records replayed from the WAL by Recover()");
  recovery_ms_ = scope.GetHistogram("nagano_db_recovery_duration_ms",
                                    "wall time spent rebuilding state in "
                                    "Recover() (checkpoint load + replay)");
}

// --- WAL payload codec ------------------------------------------------------

namespace {

void EncodeValue(wal::Encoder& e, const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    e.PutU8(0);
    e.PutI64(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    e.PutU8(1);
    e.PutDouble(*d);
  } else {
    e.PutU8(2);
    e.PutString(std::get<std::string>(v));
  }
}

bool DecodeValue(wal::Decoder& d, Value* out) {
  switch (d.GetU8()) {
    case 0: *out = d.GetI64(); break;
    case 1: *out = d.GetDouble(); break;
    case 2: *out = d.GetString(); break;
    default: return false;
  }
  return d.ok();
}

void EncodeRow(wal::Encoder& e, const Row& row) {
  e.PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) EncodeValue(e, v);
}

bool DecodeRow(wal::Decoder& d, Row* out) {
  const uint32_t arity = d.GetU32();
  if (!d.ok() || arity > 4096) return false;
  out->clear();
  out->reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    Value v;
    if (!DecodeValue(d, &v)) return false;
    out->push_back(std::move(v));
  }
  return true;
}

}  // namespace

std::string EncodeWalChange(const ChangeRecord& change) {
  wal::Encoder e;
  e.PutU8(static_cast<uint8_t>(WalRecordKind::kChange));
  e.PutU64(change.seqno);
  e.PutString(change.table);
  e.PutString(change.key);
  e.PutU8(static_cast<uint8_t>(change.op));
  e.PutI64(change.committed_at);
  EncodeRow(e, change.row);
  return e.Take();
}

std::string EncodeWalCreateTable(std::string_view table,
                                 const std::vector<ColumnSpec>& columns,
                                 size_t key_column) {
  wal::Encoder e;
  e.PutU8(static_cast<uint8_t>(WalRecordKind::kCreateTable));
  e.PutString(table);
  e.PutU32(static_cast<uint32_t>(key_column));
  e.PutU32(static_cast<uint32_t>(columns.size()));
  for (const ColumnSpec& col : columns) {
    e.PutString(col.name);
    e.PutU8(static_cast<uint8_t>(col.type));
  }
  return e.Take();
}

std::string EncodeWalCreateIndex(std::string_view table,
                                 std::string_view column) {
  wal::Encoder e;
  e.PutU8(static_cast<uint8_t>(WalRecordKind::kCreateIndex));
  e.PutString(table);
  e.PutString(column);
  return e.Take();
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  wal::Decoder d(payload);
  WalRecord rec;
  const uint8_t kind = d.GetU8();
  switch (kind) {
    case static_cast<uint8_t>(WalRecordKind::kChange): {
      rec.kind = WalRecordKind::kChange;
      rec.change.seqno = d.GetU64();
      rec.change.table = d.GetString();
      rec.change.key = d.GetString();
      const uint8_t op = d.GetU8();
      if (op > static_cast<uint8_t>(ChangeOp::kDelete)) {
        return DataLossError("DecodeWalRecord: bad change op");
      }
      rec.change.op = static_cast<ChangeOp>(op);
      rec.change.committed_at = d.GetI64();
      if (!DecodeRow(d, &rec.change.row)) {
        return DataLossError("DecodeWalRecord: bad change row");
      }
      break;
    }
    case static_cast<uint8_t>(WalRecordKind::kCreateTable): {
      rec.kind = WalRecordKind::kCreateTable;
      rec.table = d.GetString();
      rec.key_column = d.GetU32();
      const uint32_t ncols = d.GetU32();
      if (!d.ok() || ncols == 0 || ncols > 4096 || rec.key_column >= ncols) {
        return DataLossError("DecodeWalRecord: bad table schema");
      }
      for (uint32_t i = 0; i < ncols; ++i) {
        ColumnSpec col;
        col.name = d.GetString();
        const uint8_t type = d.GetU8();
        if (type > static_cast<uint8_t>(ColumnType::kString)) {
          return DataLossError("DecodeWalRecord: bad column type");
        }
        col.type = static_cast<ColumnType>(type);
        rec.columns.push_back(std::move(col));
      }
      break;
    }
    case static_cast<uint8_t>(WalRecordKind::kCreateIndex): {
      rec.kind = WalRecordKind::kCreateIndex;
      rec.table = d.GetString();
      rec.column = d.GetString();
      break;
    }
    default:
      return DataLossError("DecodeWalRecord: unknown record kind");
  }
  if (!d.AtEnd()) {
    return DataLossError("DecodeWalRecord: malformed payload");
  }
  return rec;
}

Status Database::CreateTable(std::string_view table,
                             std::vector<ColumnSpec> columns,
                             size_t key_column) {
  if (columns.empty()) {
    return InvalidArgumentError("CreateTable: no columns");
  }
  if (key_column >= columns.size()) {
    return InvalidArgumentError("CreateTable: key column out of range");
  }
  std::unique_lock lock(mutex_);
  if (tables_.contains(std::string(table))) {
    return AlreadyExistsError("CreateTable: table exists: " + std::string(table));
  }
  // Schema changes are WAL-logged like data changes (carrying the current
  // seqno watermark), so Recover() rebuilds tables in creation order.
  if (Status s = WalAppendLocked(
          next_seqno_ - 1, EncodeWalCreateTable(table, columns, key_column));
      !s.ok()) {
    return s;
  }
  auto [it, inserted] = tables_.try_emplace(std::string(table));
  assert(inserted);
  it->second.columns = std::move(columns);
  it->second.key_column = key_column;
  return Status::Ok();
}

bool Database::HasTable(std::string_view table) const {
  std::shared_lock lock(mutex_);
  return tables_.contains(std::string(table));
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<size_t> Database::ColumnIndex(std::string_view table,
                                     std::string_view column) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) {
    return NotFoundError("ColumnIndex: no table " + std::string(table));
  }
  const auto& cols = it->second.columns;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name == column) return i;
  }
  return NotFoundError("ColumnIndex: no column " + std::string(column));
}

Status Database::ValidateRowLocked(const TableData& t, const Row& row) const {
  if (row.size() != t.columns.size()) {
    return InvalidArgumentError("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypeMatches(row[i], t.columns[i].type)) {
      return InvalidArgumentError("type mismatch in column " + t.columns[i].name);
    }
  }
  return Status::Ok();
}

void Database::CommitLocked(ChangeRecord change,
                            std::unique_lock<std::shared_mutex>& lock) {
  log_.push_back(change);
  commits_->Increment();
  // Snapshot listeners, then fire outside the lock: listeners (the trigger
  // monitor) may re-enter the database to render pages.
  std::vector<Listener> to_fire;
  to_fire.reserve(listeners_.size());
  for (const auto& [_, l] : listeners_) to_fire.push_back(l);
  lock.unlock();
  for (const auto& l : to_fire) l(change);
}

void Database::UnindexRowLocked(TableData& t, const std::string& pk,
                                const Row& row) {
  for (auto& [column, index] : t.indexes) {
    const std::string value = KeyString(row[column]);
    for (auto it = index.lower_bound(value);
         it != index.end() && it->first == value; ++it) {
      if (it->second == pk) {
        index.erase(it);
        break;
      }
    }
  }
}

void Database::IndexRowLocked(TableData& t, const std::string& pk,
                              const Row& row) {
  for (auto& [column, index] : t.indexes) {
    index.emplace(KeyString(row[column]), pk);
  }
}

Status Database::WalAppendLocked(uint64_t seqno, const std::string& payload) {
  if (wal_ == nullptr) return Status::Ok();
  return wal_->Append(seqno, payload);
}

void Database::ApplyChangeLocked(TableData& t, const ChangeRecord& change) {
  switch (change.op) {
    case ChangeOp::kInsert:
    case ChangeOp::kUpdate: {
      if (auto old = t.rows.find(change.key); old != t.rows.end()) {
        UnindexRowLocked(t, change.key, old->second);
      }
      auto [row_it, _] = t.rows.insert_or_assign(change.key, change.row);
      IndexRowLocked(t, change.key, row_it->second);
      break;
    }
    case ChangeOp::kDelete: {
      if (auto old = t.rows.find(change.key); old != t.rows.end()) {
        UnindexRowLocked(t, change.key, old->second);
        t.rows.erase(old);
      }
      break;
    }
  }
}

Status Database::Upsert(std::string_view table, Row row) {
  // Decide the commit fate before taking the lock; an injected error fails
  // the mutation cleanly, an injected delay stalls the commit timestamp.
  const auto fate = fault::Decide(faults_, "db", instance_, "commit");
  if (!fate.status.ok()) return fate.status;
  std::unique_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) {
    return NotFoundError("Upsert: no table " + std::string(table));
  }
  TableData& t = it->second;
  if (Status s = ValidateRowLocked(t, row); !s.ok()) return s;

  ChangeRecord change;
  change.table = std::string(table);
  change.key = KeyString(row[t.key_column]);
  change.row = std::move(row);
  change.committed_at = clock_->Now() + fate.delay;
  change.seqno = next_seqno_;
  change.op =
      t.rows.contains(change.key) ? ChangeOp::kUpdate : ChangeOp::kInsert;

  // Write-ahead: the record must be durable before the mutation becomes
  // visible. A failed append fails the commit without consuming the seqno.
  if (Status s = WalAppendLocked(change.seqno, EncodeWalChange(change));
      !s.ok()) {
    return s;
  }
  next_seqno_ = change.seqno + 1;
  ApplyChangeLocked(t, change);
  CommitLocked(std::move(change), lock);
  return Status::Ok();
}

Status Database::Delete(std::string_view table, const Value& key) {
  const auto fate = fault::Decide(faults_, "db", instance_, "commit");
  if (!fate.status.ok()) return fate.status;
  std::unique_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) {
    return NotFoundError("Delete: no table " + std::string(table));
  }
  TableData& t = it->second;
  const std::string k = KeyString(key);
  auto row_it = t.rows.find(k);
  if (row_it == t.rows.end()) {
    return NotFoundError("Delete: no row " + k);
  }
  ChangeRecord change;
  change.table = std::string(table);
  change.key = k;
  change.op = ChangeOp::kDelete;
  change.committed_at = clock_->Now() + fate.delay;
  change.seqno = next_seqno_;
  if (Status s = WalAppendLocked(change.seqno, EncodeWalChange(change));
      !s.ok()) {
    return s;
  }
  next_seqno_ = change.seqno + 1;
  ApplyChangeLocked(t, change);
  CommitLocked(std::move(change), lock);
  return Status::Ok();
}

Status Database::ApplyReplicated(const ChangeRecord& change) {
  std::unique_lock lock(mutex_);
  auto it = tables_.find(change.table);
  if (it == tables_.end()) {
    return NotFoundError("ApplyReplicated: no table " + change.table);
  }
  TableData& t = it->second;
  if (change.seqno != next_seqno_) {
    return DataLossError("ApplyReplicated: expected seqno " +
                         std::to_string(next_seqno_) + ", got " +
                         std::to_string(change.seqno));
  }
  if (change.op != ChangeOp::kDelete) {
    if (Status s = ValidateRowLocked(t, change.row); !s.ok()) return s;
  }
  if (Status s = WalAppendLocked(change.seqno, EncodeWalChange(change));
      !s.ok()) {
    return s;
  }
  next_seqno_ = change.seqno + 1;
  ApplyChangeLocked(t, change);
  CommitLocked(change, lock);
  return Status::Ok();
}

Result<Row> Database::Get(std::string_view table, const Value& key) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) {
    return NotFoundError("Get: no table " + std::string(table));
  }
  const auto& rows = it->second.rows;
  auto row_it = rows.find(KeyString(key));
  if (row_it == rows.end()) {
    return NotFoundError("Get: no row " + KeyString(key));
  }
  return row_it->second;
}

std::vector<Row> Database::Scan(
    std::string_view table, const std::function<bool(const Row&)>& pred) const {
  std::shared_lock lock(mutex_);
  std::vector<Row> out;
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return out;
  for (const auto& [_, row] : it->second.rows) {
    if (pred(row)) out.push_back(row);
  }
  return out;
}

std::vector<Row> Database::ScanAll(std::string_view table) const {
  return Scan(table, [](const Row&) { return true; });
}

Status Database::CreateIndex(std::string_view table, std::string_view column) {
  std::unique_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) {
    return NotFoundError("CreateIndex: no table " + std::string(table));
  }
  TableData& t = it->second;
  size_t column_index = t.columns.size();
  for (size_t i = 0; i < t.columns.size(); ++i) {
    if (t.columns[i].name == column) {
      column_index = i;
      break;
    }
  }
  if (column_index == t.columns.size()) {
    return NotFoundError("CreateIndex: no column " + std::string(column));
  }
  if (t.indexes.contains(column_index)) return Status::Ok();  // idempotent
  if (Status s = WalAppendLocked(next_seqno_ - 1,
                                 EncodeWalCreateIndex(table, column));
      !s.ok()) {
    return s;
  }
  auto [index_it, created] = t.indexes.try_emplace(column_index);
  assert(created);
  for (const auto& [pk, row] : t.rows) {
    index_it->second.emplace(KeyString(row[column_index]), pk);
  }
  return Status::Ok();
}

bool Database::HasIndex(std::string_view table, std::string_view column) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return false;
  const TableData& t = it->second;
  for (size_t i = 0; i < t.columns.size(); ++i) {
    if (t.columns[i].name == column) return t.indexes.contains(i);
  }
  return false;
}

std::vector<Row> Database::Lookup(std::string_view table,
                                  std::string_view column,
                                  const Value& value) const {
  std::shared_lock lock(mutex_);
  std::vector<Row> out;
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return out;
  const TableData& t = it->second;
  size_t column_index = t.columns.size();
  for (size_t i = 0; i < t.columns.size(); ++i) {
    if (t.columns[i].name == column) {
      column_index = i;
      break;
    }
  }
  if (column_index == t.columns.size()) return out;

  auto index_it = t.indexes.find(column_index);
  if (index_it != t.indexes.end()) {
    // Index path: collect primary keys (sorted for key order), fetch rows.
    const std::string needle = KeyString(value);
    std::vector<std::string> pks;
    for (auto e = index_it->second.lower_bound(needle);
         e != index_it->second.end() && e->first == needle; ++e) {
      pks.push_back(e->second);
    }
    std::sort(pks.begin(), pks.end());
    for (const auto& pk : pks) {
      auto row_it = t.rows.find(pk);
      if (row_it != t.rows.end()) out.push_back(row_it->second);
    }
    return out;
  }
  // Fallback: linear scan (already in key order).
  const std::string needle = KeyString(value);
  for (const auto& [_, row] : t.rows) {
    if (KeyString(row[column_index]) == needle) out.push_back(row);
  }
  return out;
}

size_t Database::RowCount(std::string_view table) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  return it == tables_.end() ? 0 : it->second.rows.size();
}

uint64_t Database::LastSeqno() const {
  std::shared_lock lock(mutex_);
  return next_seqno_ - 1;
}

uint64_t Database::log_head_seqno() const {
  std::shared_lock lock(mutex_);
  return log_head_;
}

Status Database::Checkpoint() {
  if (wal_ == nullptr) {
    return FailedPreconditionError("Checkpoint: no WAL attached");
  }
  std::unique_lock lock(mutex_);
  const uint64_t seqno = next_seqno_ - 1;

  wal::Encoder image;
  image.PutU8(1);  // image format version
  image.PutU64(seqno);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  image.PutU32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    const TableData& t = tables_.at(name);
    image.PutString(name);
    image.PutU32(static_cast<uint32_t>(t.key_column));
    image.PutU32(static_cast<uint32_t>(t.columns.size()));
    for (const ColumnSpec& col : t.columns) {
      image.PutString(col.name);
      image.PutU8(static_cast<uint8_t>(col.type));
    }
    image.PutU32(static_cast<uint32_t>(t.indexes.size()));
    for (const auto& [column_index, _] : t.indexes) {
      image.PutU32(static_cast<uint32_t>(column_index));
    }
    image.PutU32(static_cast<uint32_t>(t.rows.size()));
    for (const auto& [_, row] : t.rows) EncodeRow(image, row);
  }

  if (Status s = wal_->WriteCheckpoint(seqno, image.str()); !s.ok()) return s;

  // The checkpoint now covers everything up to `seqno`: WAL segments whose
  // records are all covered can be retired, and the in-memory change log can
  // shrink to the retention bound — replicas further behind than the
  // retained head go through resync instead of the log.
  if (retention_ > 0 && seqno + 1 > retention_) {
    const uint64_t new_head = seqno + 1 - retention_;
    if (new_head > log_head_) {
      auto it = std::lower_bound(
          log_.begin(), log_.end(), new_head,
          [](const ChangeRecord& r, uint64_t s) { return r.seqno < s; });
      log_.erase(log_.begin(), it);
      log_head_ = new_head;
    }
  }
  if (auto trimmed = wal_->TruncateThrough(seqno); !trimmed.ok()) {
    return trimmed.status();
  }
  return Status::Ok();
}

Status Database::Recover() {
  if (wal_ == nullptr) {
    return FailedPreconditionError("Recover: no WAL attached");
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_lock lock(mutex_);
  if (!tables_.empty() || !log_.empty() || next_seqno_ != 1) {
    return FailedPreconditionError("Recover: database is not empty");
  }

  uint64_t after_lsn = 0;
  auto ckpt = wal_->ReadLatestCheckpoint();
  if (ckpt.ok()) {
    wal::Decoder d(ckpt.value().image);
    if (d.GetU8() != 1) {
      return DataLossError("Recover: unknown checkpoint image version");
    }
    const uint64_t image_seqno = d.GetU64();
    const uint32_t ntables = d.GetU32();
    if (!d.ok() || image_seqno != ckpt.value().seqno) {
      return DataLossError("Recover: checkpoint image header mismatch");
    }
    for (uint32_t ti = 0; ti < ntables; ++ti) {
      const std::string name = d.GetString();
      TableData t;
      t.key_column = d.GetU32();
      const uint32_t ncols = d.GetU32();
      if (!d.ok() || ncols == 0 || ncols > 4096 || t.key_column >= ncols) {
        return DataLossError("Recover: bad schema in checkpoint image");
      }
      for (uint32_t ci = 0; ci < ncols; ++ci) {
        ColumnSpec col;
        col.name = d.GetString();
        const uint8_t type = d.GetU8();
        if (type > static_cast<uint8_t>(ColumnType::kString)) {
          return DataLossError("Recover: bad column type in checkpoint image");
        }
        col.type = static_cast<ColumnType>(type);
        t.columns.push_back(std::move(col));
      }
      const uint32_t nindexes = d.GetU32();
      if (!d.ok() || nindexes > ncols) {
        return DataLossError("Recover: bad index list in checkpoint image");
      }
      for (uint32_t ii = 0; ii < nindexes; ++ii) {
        const uint32_t column_index = d.GetU32();
        if (column_index >= ncols) {
          return DataLossError("Recover: bad index column in checkpoint image");
        }
        t.indexes.try_emplace(column_index);
      }
      const uint32_t nrows = d.GetU32();
      for (uint32_t ri = 0; d.ok() && ri < nrows; ++ri) {
        Row row;
        if (!DecodeRow(d, &row) || row.size() != ncols) {
          return DataLossError("Recover: bad row in checkpoint image");
        }
        const std::string pk = KeyString(row[t.key_column]);
        auto [row_it, _] = t.rows.insert_or_assign(pk, std::move(row));
        IndexRowLocked(t, pk, row_it->second);
      }
      if (!d.ok()) {
        return DataLossError("Recover: truncated checkpoint image");
      }
      tables_.insert_or_assign(name, std::move(t));
    }
    if (!d.AtEnd()) {
      return DataLossError("Recover: trailing bytes in checkpoint image");
    }
    next_seqno_ = ckpt.value().seqno + 1;
    log_head_ = next_seqno_;
    after_lsn = ckpt.value().lsn;
  } else if (ckpt.status().code() != ErrorCode::kNotFound) {
    return ckpt.status();
  }

  uint64_t applied = 0;
  Status replay = wal_->Replay(
      after_lsn,
      [&](uint64_t, uint64_t, std::string_view payload) -> Status {
        auto rec_or = DecodeWalRecord(payload);
        if (!rec_or.ok()) return rec_or.status();
        WalRecord& rec = rec_or.value();
        switch (rec.kind) {
          case WalRecordKind::kCreateTable: {
            auto [it, inserted] = tables_.try_emplace(rec.table);
            if (!inserted) break;  // already in the checkpoint image
            it->second.columns = std::move(rec.columns);
            it->second.key_column = rec.key_column;
            break;
          }
          case WalRecordKind::kCreateIndex: {
            auto it = tables_.find(rec.table);
            if (it == tables_.end()) {
              return DataLossError("Recover: index on unknown table " +
                                   rec.table);
            }
            TableData& t = it->second;
            size_t column_index = t.columns.size();
            for (size_t i = 0; i < t.columns.size(); ++i) {
              if (t.columns[i].name == rec.column) {
                column_index = i;
                break;
              }
            }
            if (column_index == t.columns.size()) {
              return DataLossError("Recover: index on unknown column " +
                                   rec.column);
            }
            auto [index_it, created] = t.indexes.try_emplace(column_index);
            if (created) {
              for (const auto& [pk, row] : t.rows) {
                index_it->second.emplace(KeyString(row[column_index]), pk);
              }
            }
            break;
          }
          case WalRecordKind::kChange: {
            if (rec.change.seqno != next_seqno_) {
              return DataLossError(
                  "Recover: WAL expected seqno " + std::to_string(next_seqno_) +
                  ", got " + std::to_string(rec.change.seqno));
            }
            auto it = tables_.find(rec.change.table);
            if (it == tables_.end()) {
              return DataLossError("Recover: change for unknown table " +
                                   rec.change.table);
            }
            ApplyChangeLocked(it->second, rec.change);
            next_seqno_ = rec.change.seqno + 1;
            log_.push_back(std::move(rec.change));
            ++applied;
            break;
          }
        }
        return Status::Ok();
      });
  if (!replay.ok()) return replay;

  recovered_records_->Increment(applied);
  recovery_ms_->Observe(
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count());
  return Status::Ok();
}

std::vector<ChangeRecord> Database::ChangesSince(uint64_t after,
                                                 size_t limit) const {
  std::shared_lock lock(mutex_);
  std::vector<ChangeRecord> out;
  // Log seqnos are dense starting at 1 (replicated logs mirror the master's
  // numbering), so binary-search by seqno.
  auto it = std::lower_bound(
      log_.begin(), log_.end(), after + 1,
      [](const ChangeRecord& r, uint64_t s) { return r.seqno < s; });
  for (; it != log_.end() && out.size() < limit; ++it) out.push_back(*it);
  return out;
}

Result<std::vector<ChangeRecord>> Database::ReadChanges(uint64_t after,
                                                        size_t limit) const {
  if (Status s = fault::Check(faults_, "db", instance_, "changes"); !s.ok()) {
    return s;
  }
  {
    std::shared_lock lock(mutex_);
    if (after + 1 < log_head_) {
      // The requested records were truncated after a checkpoint; the caller
      // is too far behind to be served from the log and must resync.
      return DataLossError("ReadChanges: seqnos through " +
                           std::to_string(log_head_ - 1) +
                           " truncated after checkpoint; resync required");
    }
  }
  return ChangesSince(after, limit);
}

uint64_t Database::Subscribe(Listener listener) {
  std::unique_lock lock(mutex_);
  const uint64_t id = next_listener_id_++;
  listeners_[id] = std::move(listener);
  return id;
}

void Database::Unsubscribe(uint64_t id) {
  std::unique_lock lock(mutex_);
  listeners_.erase(id);
}

}  // namespace nagano::db
