#include "db/database.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/thread_pool.h"

namespace nagano::db {

std::string KeyString(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(*i));
    return buf;
  }
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

bool TypeMatches(const Value& v, ColumnType type) {
  switch (type) {
    case ColumnType::kInt: return std::holds_alternative<int64_t>(v);
    case ColumnType::kDouble: return std::holds_alternative<double>(v);
    case ColumnType::kString: return std::holds_alternative<std::string>(v);
  }
  return false;
}

Status DatabaseOptions::Validate() const {
  if (shards == 0) {
    return InvalidArgumentError("DatabaseOptions.shards must be >= 1");
  }
  if (wal != nullptr && !shard_wals.empty()) {
    return InvalidArgumentError(
        "DatabaseOptions: set wal or shard_wals, not both");
  }
  if (wal != nullptr && shards != 1) {
    return InvalidArgumentError(
        "DatabaseOptions: the single-stream wal field requires shards == 1; "
        "sharded stores take one stream per shard via shard_wals");
  }
  if (!shard_wals.empty()) {
    if (shard_wals.size() != shards) {
      return InvalidArgumentError(
          "DatabaseOptions: shard_wals.size() must equal shards");
    }
    for (const auto* w : shard_wals) {
      if (w == nullptr) {
        return InvalidArgumentError("DatabaseOptions: null entry in shard_wals");
      }
    }
  }
  return Status::Ok();
}

Database::Database(DatabaseOptions options)
    : clock_(options.clock ? options.clock : &RealClock::Instance()),
      faults_(options.faults),
      shard_map_(options.shard_map),
      retention_(options.change_log_retention),
      recovery_threads_(options.recovery_threads) {
  ValidateOrDie(options, "DatabaseOptions");
  if (shard_map_ == nullptr) {
    // Aliasing a function-local static: no ownership, never destroyed.
    shard_map_ = std::shared_ptr<const ShardMap>(std::shared_ptr<void>(),
                                                 &HashShardMap::Instance());
  }
  shards_.reserve(options.shards);
  for (size_t k = 0; k < options.shards; ++k) {
    auto shard = std::make_unique<Shard>();
    if (!options.shard_wals.empty()) {
      shard->wal = options.shard_wals[k];
    } else if (options.wal != nullptr) {
      shard->wal = options.wal;  // shards == 1, enforced by Validate()
    }
    shards_.push_back(std::move(shard));
  }
  const auto scope = metrics::Scope::Resolve(options.metrics, "db");
  instance_ = scope.labels.empty() ? std::string() : scope.labels[0].second;
  commits_ = scope.GetCounter("nagano_db_commits_total",
                              "mutations appended to the change log");
  recovered_records_ =
      scope.GetCounter("nagano_db_recovered_records_total",
                       "change records replayed from the WAL by Recover()");
  recovery_ms_ = scope.GetHistogram("nagano_db_recovery_duration_ms",
                                    "wall time spent rebuilding state in "
                                    "Recover() (checkpoint load + replay)");
}

// --- WAL payload codec ------------------------------------------------------

namespace {

void EncodeValue(wal::Encoder& e, const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    e.PutU8(0);
    e.PutI64(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    e.PutU8(1);
    e.PutDouble(*d);
  } else {
    e.PutU8(2);
    e.PutString(std::get<std::string>(v));
  }
}

bool DecodeValue(wal::Decoder& d, Value* out) {
  switch (d.GetU8()) {
    case 0: *out = d.GetI64(); break;
    case 1: *out = d.GetDouble(); break;
    case 2: *out = d.GetString(); break;
    default: return false;
  }
  return d.ok();
}

void EncodeRow(wal::Encoder& e, const Row& row) {
  e.PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) EncodeValue(e, v);
}

bool DecodeRow(wal::Decoder& d, Row* out) {
  const uint32_t arity = d.GetU32();
  if (!d.ok() || arity > 4096) return false;
  out->clear();
  out->reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    Value v;
    if (!DecodeValue(d, &v)) return false;
    out->push_back(std::move(v));
  }
  return true;
}

}  // namespace

std::string EncodeWalChange(const ChangeRecord& change) {
  wal::Encoder e;
  e.PutU8(static_cast<uint8_t>(WalRecordKind::kChange));
  e.PutU64(change.seqno);
  e.PutU32(change.shard);
  e.PutU64(change.shard_seqno);
  e.PutString(change.table);
  e.PutString(change.key);
  e.PutU8(static_cast<uint8_t>(change.op));
  e.PutI64(change.committed_at);
  EncodeRow(e, change.row);
  return e.Take();
}

std::string EncodeWalCreateTable(std::string_view table,
                                 const std::vector<ColumnSpec>& columns,
                                 size_t key_column) {
  wal::Encoder e;
  e.PutU8(static_cast<uint8_t>(WalRecordKind::kCreateTable));
  e.PutString(table);
  e.PutU32(static_cast<uint32_t>(key_column));
  e.PutU32(static_cast<uint32_t>(columns.size()));
  for (const ColumnSpec& col : columns) {
    e.PutString(col.name);
    e.PutU8(static_cast<uint8_t>(col.type));
  }
  return e.Take();
}

std::string EncodeWalCreateIndex(std::string_view table,
                                 std::string_view column) {
  wal::Encoder e;
  e.PutU8(static_cast<uint8_t>(WalRecordKind::kCreateIndex));
  e.PutString(table);
  e.PutString(column);
  return e.Take();
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  wal::Decoder d(payload);
  WalRecord rec;
  const uint8_t kind = d.GetU8();
  switch (kind) {
    case static_cast<uint8_t>(WalRecordKind::kChange): {
      rec.kind = WalRecordKind::kChange;
      rec.change.seqno = d.GetU64();
      rec.change.shard = d.GetU32();
      rec.change.shard_seqno = d.GetU64();
      rec.change.table = d.GetString();
      rec.change.key = d.GetString();
      const uint8_t op = d.GetU8();
      if (op > static_cast<uint8_t>(ChangeOp::kDelete)) {
        return DataLossError("DecodeWalRecord: bad change op");
      }
      rec.change.op = static_cast<ChangeOp>(op);
      rec.change.committed_at = d.GetI64();
      if (!DecodeRow(d, &rec.change.row)) {
        return DataLossError("DecodeWalRecord: bad change row");
      }
      break;
    }
    case static_cast<uint8_t>(WalRecordKind::kCreateTable): {
      rec.kind = WalRecordKind::kCreateTable;
      rec.table = d.GetString();
      rec.key_column = d.GetU32();
      const uint32_t ncols = d.GetU32();
      if (!d.ok() || ncols == 0 || ncols > 4096 || rec.key_column >= ncols) {
        return DataLossError("DecodeWalRecord: bad table schema");
      }
      for (uint32_t i = 0; i < ncols; ++i) {
        ColumnSpec col;
        col.name = d.GetString();
        const uint8_t type = d.GetU8();
        if (type > static_cast<uint8_t>(ColumnType::kString)) {
          return DataLossError("DecodeWalRecord: bad column type");
        }
        col.type = static_cast<ColumnType>(type);
        rec.columns.push_back(std::move(col));
      }
      break;
    }
    case static_cast<uint8_t>(WalRecordKind::kCreateIndex): {
      rec.kind = WalRecordKind::kCreateIndex;
      rec.table = d.GetString();
      rec.column = d.GetString();
      break;
    }
    default:
      return DataLossError("DecodeWalRecord: unknown record kind");
  }
  if (!d.AtEnd()) {
    return DataLossError("DecodeWalRecord: malformed payload");
  }
  return rec;
}

// --- schema -----------------------------------------------------------------

Status Database::CreateTable(std::string_view table,
                             std::vector<ColumnSpec> columns,
                             size_t key_column) {
  if (columns.empty()) {
    return InvalidArgumentError("CreateTable: no columns");
  }
  if (key_column >= columns.size()) {
    return InvalidArgumentError("CreateTable: key column out of range");
  }
  const std::string name(table);
  std::lock_guard commit(commit_mutex_);
  std::unique_lock schema_lock(schema_mutex_);
  if (schemas_.contains(name)) {
    return AlreadyExistsError("CreateTable: table exists: " + name);
  }
  // Schema changes are WAL-logged like data changes (carrying the current
  // seqno watermark) into *every* shard stream, so each stream replays to a
  // complete schema on its own.
  if (Status s = WalAppendAll(
          next_seqno_.load(std::memory_order_relaxed) - 1,
          EncodeWalCreateTable(table, columns, key_column));
      !s.ok()) {
    return s;
  }
  TableSchema schema;
  schema.columns = std::move(columns);
  schema.key_column = key_column;
  schemas_.emplace(name, std::move(schema));
  for (auto& shard : shards_) {
    std::unique_lock shard_lock(shard->mutex);
    shard->tables.try_emplace(name);
  }
  return Status::Ok();
}

bool Database::HasTable(std::string_view table) const {
  std::shared_lock lock(schema_mutex_);
  return schemas_.find(std::string(table)) != schemas_.end();
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock lock(schema_mutex_);
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, _] : schemas_) names.push_back(name);
  return names;  // schemas_ is an ordered map — already sorted
}

Result<size_t> Database::ColumnIndex(std::string_view table,
                                     std::string_view column) const {
  std::shared_lock lock(schema_mutex_);
  auto it = schemas_.find(std::string(table));
  if (it == schemas_.end()) {
    return NotFoundError("ColumnIndex: no table " + std::string(table));
  }
  const auto& cols = it->second.columns;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name == column) return i;
  }
  return NotFoundError("ColumnIndex: no column " + std::string(column));
}

Status Database::ValidateRow(const TableSchema& schema, const Row& row) const {
  if (row.size() != schema.columns.size()) {
    return InvalidArgumentError("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypeMatches(row[i], schema.columns[i].type)) {
      return InvalidArgumentError("type mismatch in column " +
                                  schema.columns[i].name);
    }
  }
  return Status::Ok();
}

// --- commit path ------------------------------------------------------------

Status Database::WalAppend(uint32_t shard, uint64_t seqno,
                           const std::string& payload) {
  wal::WriteAheadLog* wal = shards_[shard]->wal;
  if (wal == nullptr) return Status::Ok();
  return wal->Append(seqno, payload);
}

Status Database::WalAppendAll(uint64_t seqno, const std::string& payload) {
  // A failure part-way leaves the DDL in some streams only; replay
  // tolerates that (DDL application is idempotent) and the commit fails.
  for (uint32_t k = 0; k < shards(); ++k) {
    if (Status s = WalAppend(k, seqno, payload); !s.ok()) return s;
  }
  return Status::Ok();
}

void Database::UnindexRow(Partition& p, const std::string& pk,
                          const Row& row) {
  for (auto& [column, index] : p.indexes) {
    const std::string value = KeyString(row[column]);
    for (auto it = index.lower_bound(value);
         it != index.end() && it->first == value; ++it) {
      if (it->second == pk) {
        index.erase(it);
        break;
      }
    }
  }
}

void Database::IndexRow(Partition& p, const std::string& pk, const Row& row) {
  for (auto& [column, index] : p.indexes) {
    index.emplace(KeyString(row[column]), pk);
  }
}

void Database::ApplyChange(Partition& p, const ChangeRecord& change) {
  switch (change.op) {
    case ChangeOp::kInsert:
    case ChangeOp::kUpdate: {
      if (auto old = p.rows.find(change.key); old != p.rows.end()) {
        UnindexRow(p, change.key, old->second);
      }
      auto [row_it, _] = p.rows.insert_or_assign(change.key, change.row);
      IndexRow(p, change.key, row_it->second);
      break;
    }
    case ChangeOp::kDelete: {
      if (auto old = p.rows.find(change.key); old != p.rows.end()) {
        UnindexRow(p, change.key, old->second);
        p.rows.erase(old);
      }
      break;
    }
  }
}

void Database::ApplyAndLog(Shard& shard, const TableSchema&,
                           const ChangeRecord& change) {
  ApplyChange(shard.tables[change.table], change);
  shard.log.push_back(change);
  commits_->Increment();
}

void Database::NotifySinks(const ChangeRecord& change) {
  // Snapshot matching sinks, then fire with no locks held: sinks (the
  // trigger monitor) may re-enter the database to render pages.
  std::vector<ChangeSink*> to_fire;
  {
    std::lock_guard lock(sink_mutex_);
    to_fire.reserve(sinks_.size());
    for (const auto& [_, sub] : sinks_) {
      if (sub.shard == kAllShards || sub.shard == change.shard) {
        to_fire.push_back(sub.sink);
      }
    }
  }
  for (ChangeSink* sink : to_fire) sink->OnChange(change.shard, change);
}

Status Database::Upsert(std::string_view table, Row row) {
  // Decide the commit fate before taking the locks; an injected error fails
  // the mutation cleanly, an injected delay stalls the commit timestamp.
  const auto fate = fault::Decide(faults_, "db", instance_, "commit");
  if (!fate.status.ok()) return fate.status;
  std::unique_lock commit(commit_mutex_);
  std::shared_lock schema_lock(schema_mutex_);
  auto it = schemas_.find(std::string(table));
  if (it == schemas_.end()) {
    return NotFoundError("Upsert: no table " + std::string(table));
  }
  const TableSchema& schema = it->second;
  if (Status s = ValidateRow(schema, row); !s.ok()) return s;

  ChangeRecord change;
  change.table = std::string(table);
  change.key = KeyString(row[schema.key_column]);
  change.row = std::move(row);
  change.committed_at = clock_->Now() + fate.delay;
  change.seqno = next_seqno_.load(std::memory_order_relaxed);
  change.shard = ShardOf(change.table, change.key);

  Shard& shard = *shards_[change.shard];
  std::unique_lock shard_lock(shard.mutex);
  change.shard_seqno = shard.next_shard_seqno;
  change.op = shard.tables[change.table].rows.contains(change.key)
                  ? ChangeOp::kUpdate
                  : ChangeOp::kInsert;

  // Write-ahead: the record must be durable before the mutation becomes
  // visible. A failed append fails the commit without consuming a seqno.
  if (Status s = WalAppend(change.shard, change.seqno, EncodeWalChange(change));
      !s.ok()) {
    return s;
  }
  next_seqno_.store(change.seqno + 1, std::memory_order_release);
  shard.next_shard_seqno = change.shard_seqno + 1;
  ApplyAndLog(shard, schema, change);
  shard_lock.unlock();
  schema_lock.unlock();
  commit.unlock();
  NotifySinks(change);
  return Status::Ok();
}

Status Database::Delete(std::string_view table, const Value& key) {
  const auto fate = fault::Decide(faults_, "db", instance_, "commit");
  if (!fate.status.ok()) return fate.status;
  std::unique_lock commit(commit_mutex_);
  std::shared_lock schema_lock(schema_mutex_);
  auto it = schemas_.find(std::string(table));
  if (it == schemas_.end()) {
    return NotFoundError("Delete: no table " + std::string(table));
  }
  const TableSchema& schema = it->second;

  ChangeRecord change;
  change.table = std::string(table);
  change.key = KeyString(key);
  change.op = ChangeOp::kDelete;
  change.committed_at = clock_->Now() + fate.delay;
  change.seqno = next_seqno_.load(std::memory_order_relaxed);
  change.shard = ShardOf(change.table, change.key);

  Shard& shard = *shards_[change.shard];
  std::unique_lock shard_lock(shard.mutex);
  if (!shard.tables[change.table].rows.contains(change.key)) {
    return NotFoundError("Delete: no row " + change.key);
  }
  change.shard_seqno = shard.next_shard_seqno;
  if (Status s = WalAppend(change.shard, change.seqno, EncodeWalChange(change));
      !s.ok()) {
    return s;
  }
  next_seqno_.store(change.seqno + 1, std::memory_order_release);
  shard.next_shard_seqno = change.shard_seqno + 1;
  ApplyAndLog(shard, schema, change);
  shard_lock.unlock();
  schema_lock.unlock();
  commit.unlock();
  NotifySinks(change);
  return Status::Ok();
}

Status Database::ApplyReplicated(const ChangeRecord& change) {
  std::unique_lock commit(commit_mutex_);
  std::shared_lock schema_lock(schema_mutex_);
  auto it = schemas_.find(change.table);
  if (it == schemas_.end()) {
    return NotFoundError("ApplyReplicated: no table " + change.table);
  }
  const TableSchema& schema = it->second;
  if (change.shard >= shards()) {
    return InvalidArgumentError(
        "ApplyReplicated: record for shard " + std::to_string(change.shard) +
        " but this store has " + std::to_string(shards()) +
        " — replicas must mirror their feed's shard layout");
  }
  if (ShardOf(change.table, change.key) != change.shard) {
    return InvalidArgumentError(
        "ApplyReplicated: shard map disagrees with the feed's placement for "
        "key " + change.key);
  }
  Shard& shard = *shards_[change.shard];
  std::unique_lock shard_lock(shard.mutex);
  // Per-shard density is the in-order/exactly-once guarantee: a hole in one
  // shard's stream stalls only that shard, and the consumer re-pulls it
  // while the other shards keep applying.
  if (change.shard_seqno != shard.next_shard_seqno) {
    return DataLossError(
        "ApplyReplicated: shard " + std::to_string(change.shard) +
        " expected shard seqno " + std::to_string(shard.next_shard_seqno) +
        ", got " + std::to_string(change.shard_seqno));
  }
  if (change.op != ChangeOp::kDelete) {
    if (Status s = ValidateRow(schema, change.row); !s.ok()) return s;
  }
  if (Status s = WalAppend(change.shard, change.seqno, EncodeWalChange(change));
      !s.ok()) {
    return s;
  }
  shard.next_shard_seqno = change.shard_seqno + 1;
  // The total order is the feed's; track the high-water mark so LastSeqno()
  // reports how far this replica has seen, independent of arrival order
  // across shards.
  if (change.seqno >= next_seqno_.load(std::memory_order_relaxed)) {
    next_seqno_.store(change.seqno + 1, std::memory_order_release);
  }
  ApplyAndLog(shard, schema, change);
  shard_lock.unlock();
  schema_lock.unlock();
  commit.unlock();
  NotifySinks(change);
  return Status::Ok();
}

// --- query ------------------------------------------------------------------

Result<Row> Database::Get(std::string_view table, const Value& key) const {
  const std::string name(table);
  {
    std::shared_lock lock(schema_mutex_);
    if (schemas_.find(name) == schemas_.end()) {
      return NotFoundError("Get: no table " + name);
    }
  }
  const std::string pk = KeyString(key);
  const Shard& shard = *shards_[ShardOf(name, pk)];
  std::shared_lock lock(shard.mutex);
  auto pit = shard.tables.find(name);
  if (pit == shard.tables.end()) {
    return NotFoundError("Get: no row " + pk);
  }
  auto row_it = pit->second.rows.find(pk);
  if (row_it == pit->second.rows.end()) {
    return NotFoundError("Get: no row " + pk);
  }
  return row_it->second;
}

std::vector<Row> Database::Scan(
    std::string_view table, const std::function<bool(const Row&)>& pred) const {
  const std::string name(table);
  std::shared_lock schema_lock(schema_mutex_);
  if (schemas_.find(name) == schemas_.end()) return {};
  // Lock every shard (ascending — the global lock order) for an atomic
  // snapshot, then merge partitions back into primary-key order so the
  // result is byte-identical regardless of the shard count.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);
  std::vector<std::pair<const std::string*, const Row*>> merged;
  for (const auto& shard : shards_) {
    auto pit = shard->tables.find(name);
    if (pit == shard->tables.end()) continue;
    for (const auto& [pk, row] : pit->second.rows) {
      merged.emplace_back(&pk, &row);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  std::vector<Row> out;
  for (const auto& [_, row] : merged) {
    if (pred(*row)) out.push_back(*row);
  }
  return out;
}

std::vector<Row> Database::ScanAll(std::string_view table) const {
  return Scan(table, [](const Row&) { return true; });
}

Status Database::CreateIndex(std::string_view table, std::string_view column) {
  const std::string name(table);
  std::lock_guard commit(commit_mutex_);
  std::unique_lock schema_lock(schema_mutex_);
  auto it = schemas_.find(name);
  if (it == schemas_.end()) {
    return NotFoundError("CreateIndex: no table " + name);
  }
  TableSchema& schema = it->second;
  size_t column_index = schema.columns.size();
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    if (schema.columns[i].name == column) {
      column_index = i;
      break;
    }
  }
  if (column_index == schema.columns.size()) {
    return NotFoundError("CreateIndex: no column " + std::string(column));
  }
  if (std::find(schema.indexed_columns.begin(), schema.indexed_columns.end(),
                column_index) != schema.indexed_columns.end()) {
    return Status::Ok();  // idempotent
  }
  if (Status s =
          WalAppendAll(next_seqno_.load(std::memory_order_relaxed) - 1,
                       EncodeWalCreateIndex(table, column));
      !s.ok()) {
    return s;
  }
  schema.indexed_columns.push_back(column_index);
  std::sort(schema.indexed_columns.begin(), schema.indexed_columns.end());
  for (auto& shard : shards_) {
    std::unique_lock shard_lock(shard->mutex);
    Partition& p = shard->tables[name];
    auto [index_it, created] = p.indexes.try_emplace(column_index);
    if (!created) continue;
    for (const auto& [pk, row] : p.rows) {
      index_it->second.emplace(KeyString(row[column_index]), pk);
    }
  }
  return Status::Ok();
}

bool Database::HasIndex(std::string_view table, std::string_view column) const {
  std::shared_lock lock(schema_mutex_);
  auto it = schemas_.find(std::string(table));
  if (it == schemas_.end()) return false;
  const TableSchema& schema = it->second;
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    if (schema.columns[i].name == column) {
      return std::find(schema.indexed_columns.begin(),
                       schema.indexed_columns.end(),
                       i) != schema.indexed_columns.end();
    }
  }
  return false;
}

std::vector<Row> Database::Lookup(std::string_view table,
                                  std::string_view column,
                                  const Value& value) const {
  const std::string name(table);
  std::shared_lock schema_lock(schema_mutex_);
  auto it = schemas_.find(name);
  if (it == schemas_.end()) return {};
  const TableSchema& schema = it->second;
  size_t column_index = schema.columns.size();
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    if (schema.columns[i].name == column) {
      column_index = i;
      break;
    }
  }
  if (column_index == schema.columns.size()) return {};
  const bool indexed =
      std::find(schema.indexed_columns.begin(), schema.indexed_columns.end(),
                column_index) != schema.indexed_columns.end();
  const std::string needle = KeyString(value);

  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);
  // Collect matches per shard, then sort by primary key so the result
  // order matches the unsharded store exactly.
  std::vector<std::pair<const std::string*, const Row*>> merged;
  for (const auto& shard : shards_) {
    auto pit = shard->tables.find(name);
    if (pit == shard->tables.end()) continue;
    const Partition& p = pit->second;
    if (indexed) {
      auto index_it = p.indexes.find(column_index);
      if (index_it == p.indexes.end()) continue;
      for (auto e = index_it->second.lower_bound(needle);
           e != index_it->second.end() && e->first == needle; ++e) {
        auto row_it = p.rows.find(e->second);
        if (row_it != p.rows.end()) {
          merged.emplace_back(&row_it->first, &row_it->second);
        }
      }
    } else {
      for (const auto& [pk, row] : p.rows) {
        if (KeyString(row[column_index]) == needle) {
          merged.emplace_back(&pk, &row);
        }
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  std::vector<Row> out;
  out.reserve(merged.size());
  for (const auto& [_, row] : merged) out.push_back(*row);
  return out;
}

size_t Database::RowCount(std::string_view table) const {
  const std::string name(table);
  size_t count = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    auto pit = shard->tables.find(name);
    if (pit != shard->tables.end()) count += pit->second.rows.size();
  }
  return count;
}

// --- durability -------------------------------------------------------------

Status Database::Checkpoint() {
  if (shards_[0]->wal == nullptr) {
    return FailedPreconditionError("Checkpoint: no WAL attached");
  }
  std::lock_guard commit(commit_mutex_);
  std::shared_lock schema_lock(schema_mutex_);
  const uint64_t watermark = next_seqno_.load(std::memory_order_relaxed) - 1;
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, _] : schemas_) names.push_back(name);

  for (uint32_t k = 0; k < shards(); ++k) {
    Shard& shard = *shards_[k];
    std::unique_lock shard_lock(shard.mutex);
    const uint64_t shard_mark = shard.next_shard_seqno - 1;

    // Image format 2: shard identity + both watermarks + full schema + this
    // shard's rows, so every stream recovers alone (and a checkpoint from a
    // different shard layout is detected instead of misread).
    wal::Encoder image;
    image.PutU8(2);
    image.PutU32(k);
    image.PutU32(shards());
    image.PutU64(watermark);
    image.PutU64(shard_mark);
    image.PutU32(static_cast<uint32_t>(names.size()));
    for (const std::string& name : names) {
      const TableSchema& schema = schemas_.at(name);
      image.PutString(name);
      image.PutU32(static_cast<uint32_t>(schema.key_column));
      image.PutU32(static_cast<uint32_t>(schema.columns.size()));
      for (const ColumnSpec& col : schema.columns) {
        image.PutString(col.name);
        image.PutU8(static_cast<uint8_t>(col.type));
      }
      image.PutU32(static_cast<uint32_t>(schema.indexed_columns.size()));
      for (const size_t column_index : schema.indexed_columns) {
        image.PutU32(static_cast<uint32_t>(column_index));
      }
      const auto pit = shard.tables.find(name);
      const Partition* p = pit == shard.tables.end() ? nullptr : &pit->second;
      image.PutU32(p ? static_cast<uint32_t>(p->rows.size()) : 0);
      if (p) {
        for (const auto& [_, row] : p->rows) EncodeRow(image, row);
      }
    }
    if (Status s = shard.wal->WriteCheckpoint(watermark, image.str());
        !s.ok()) {
      return s;
    }

    // The checkpoint now covers this shard through `shard_mark`: retire WAL
    // segments fully covered, and shrink the in-memory change log to the
    // retention bound — consumers further behind than the retained head go
    // through resync instead of the log.
    if (retention_ > 0 && shard_mark + 1 > retention_) {
      const uint64_t new_head = shard_mark + 1 - retention_;
      if (new_head > shard.log_head) {
        auto cut = std::lower_bound(
            shard.log.begin(), shard.log.end(), new_head,
            [](const ChangeRecord& r, uint64_t s) { return r.shard_seqno < s; });
        if (cut != shard.log.begin()) {
          const uint64_t max_erased_global = std::prev(cut)->seqno;
          if (max_erased_global + 1 >
              global_log_head_.load(std::memory_order_relaxed)) {
            global_log_head_.store(max_erased_global + 1,
                                   std::memory_order_release);
          }
        }
        shard.log.erase(shard.log.begin(), cut);
        shard.log_head = new_head;
      }
    }
    if (auto trimmed = shard.wal->TruncateThrough(watermark); !trimmed.ok()) {
      return trimmed.status();
    }
  }
  return Status::Ok();
}

Status Database::Sync() {
  for (const auto& shard : shards_) {
    if (shard->wal == nullptr) continue;
    if (Status s = shard->wal->Sync(); !s.ok()) return s;
  }
  return Status::Ok();
}

void Database::RecoverShard(uint32_t index, ShardRecoveryScratch& sc) {
  const auto t0 = std::chrono::steady_clock::now();
  Shard& shard = *shards_[index];
  ShardRecovery& r = sc.result;
  r.torn_bytes = shard.wal->torn_bytes_dropped();
  const auto done = [&] {
    r.shard_seqno = shard.next_shard_seqno - 1;
    r.replay_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  };

  uint64_t after_lsn = 0;
  auto ckpt = shard.wal->ReadLatestCheckpoint();
  if (ckpt.ok()) {
    wal::Decoder d(ckpt.value().image);
    if (d.GetU8() != 2) {
      r.status = DataLossError("Recover: unknown checkpoint image version");
      return done();
    }
    const uint32_t image_shard = d.GetU32();
    const uint32_t image_shards = d.GetU32();
    const uint64_t global_mark = d.GetU64();
    const uint64_t shard_mark = d.GetU64();
    const uint32_t ntables = d.GetU32();
    if (!d.ok() || global_mark != ckpt.value().seqno) {
      r.status = DataLossError("Recover: checkpoint image header mismatch");
      return done();
    }
    if (image_shard != index || image_shards != shards()) {
      r.status = DataLossError(
          "Recover: checkpoint belongs to a different shard layout "
          "(re-sharding requires a fresh sync)");
      return done();
    }
    for (uint32_t ti = 0; ti < ntables; ++ti) {
      const std::string name = d.GetString();
      TableSchema schema;
      schema.key_column = d.GetU32();
      const uint32_t ncols = d.GetU32();
      if (!d.ok() || ncols == 0 || ncols > 4096 || schema.key_column >= ncols) {
        r.status = DataLossError("Recover: bad schema in checkpoint image");
        return done();
      }
      for (uint32_t ci = 0; ci < ncols; ++ci) {
        ColumnSpec col;
        col.name = d.GetString();
        const uint8_t type = d.GetU8();
        if (type > static_cast<uint8_t>(ColumnType::kString)) {
          r.status =
              DataLossError("Recover: bad column type in checkpoint image");
          return done();
        }
        col.type = static_cast<ColumnType>(type);
        schema.columns.push_back(std::move(col));
      }
      const uint32_t nindexes = d.GetU32();
      if (!d.ok() || nindexes > ncols) {
        r.status = DataLossError("Recover: bad index list in checkpoint image");
        return done();
      }
      Partition p;
      for (uint32_t ii = 0; ii < nindexes; ++ii) {
        const uint32_t column_index = d.GetU32();
        if (column_index >= ncols) {
          r.status =
              DataLossError("Recover: bad index column in checkpoint image");
          return done();
        }
        schema.indexed_columns.push_back(column_index);
        p.indexes.try_emplace(column_index);
      }
      const uint32_t nrows = d.GetU32();
      for (uint32_t ri = 0; d.ok() && ri < nrows; ++ri) {
        Row row;
        if (!DecodeRow(d, &row) || row.size() != ncols) {
          r.status = DataLossError("Recover: bad row in checkpoint image");
          return done();
        }
        const std::string pk = KeyString(row[schema.key_column]);
        auto [row_it, _] = p.rows.insert_or_assign(pk, std::move(row));
        IndexRow(p, pk, row_it->second);
      }
      if (!d.ok()) {
        r.status = DataLossError("Recover: truncated checkpoint image");
        return done();
      }
      shard.tables.insert_or_assign(name, std::move(p));
      sc.schema.insert_or_assign(name, std::move(schema));
    }
    if (!d.AtEnd()) {
      r.status = DataLossError("Recover: trailing bytes in checkpoint image");
      return done();
    }
    r.checkpoint_seqno = global_mark;
    r.last_global_seqno = global_mark;
    shard.next_shard_seqno = shard_mark + 1;
    shard.log_head = shard_mark + 1;
    after_lsn = ckpt.value().lsn;
  } else if (ckpt.status().code() != ErrorCode::kNotFound) {
    r.status = ckpt.status();
    return done();
  }

  Status replay = shard.wal->Replay(
      after_lsn,
      [&](uint64_t, uint64_t, std::string_view payload) -> Status {
        auto rec_or = DecodeWalRecord(payload);
        if (!rec_or.ok()) return rec_or.status();
        WalRecord& rec = rec_or.value();
        switch (rec.kind) {
          case WalRecordKind::kCreateTable: {
            if (sc.schema.contains(rec.table)) break;  // in the checkpoint
            TableSchema schema;
            schema.columns = std::move(rec.columns);
            schema.key_column = rec.key_column;
            sc.schema.emplace(rec.table, std::move(schema));
            shard.tables.try_emplace(rec.table);
            break;
          }
          case WalRecordKind::kCreateIndex: {
            auto it = sc.schema.find(rec.table);
            if (it == sc.schema.end()) {
              return DataLossError("Recover: index on unknown table " +
                                   rec.table);
            }
            TableSchema& schema = it->second;
            size_t column_index = schema.columns.size();
            for (size_t i = 0; i < schema.columns.size(); ++i) {
              if (schema.columns[i].name == rec.column) {
                column_index = i;
                break;
              }
            }
            if (column_index == schema.columns.size()) {
              return DataLossError("Recover: index on unknown column " +
                                   rec.column);
            }
            if (std::find(schema.indexed_columns.begin(),
                          schema.indexed_columns.end(),
                          column_index) == schema.indexed_columns.end()) {
              schema.indexed_columns.push_back(column_index);
              std::sort(schema.indexed_columns.begin(),
                        schema.indexed_columns.end());
            }
            Partition& p = shard.tables[rec.table];
            auto [index_it, created] = p.indexes.try_emplace(column_index);
            if (created) {
              for (const auto& [pk, row] : p.rows) {
                index_it->second.emplace(KeyString(row[column_index]), pk);
              }
            }
            break;
          }
          case WalRecordKind::kChange: {
            if (rec.change.shard != index) {
              return DataLossError(
                  "Recover: record for shard " +
                  std::to_string(rec.change.shard) + " in shard " +
                  std::to_string(index) + "'s stream");
            }
            if (rec.change.shard_seqno != shard.next_shard_seqno) {
              return DataLossError(
                  "Recover: shard " + std::to_string(index) +
                  " expected shard seqno " +
                  std::to_string(shard.next_shard_seqno) + ", got " +
                  std::to_string(rec.change.shard_seqno));
            }
            auto pit = shard.tables.find(rec.change.table);
            if (pit == shard.tables.end()) {
              return DataLossError("Recover: change for unknown table " +
                                   rec.change.table);
            }
            ApplyChange(pit->second, rec.change);
            shard.next_shard_seqno = rec.change.shard_seqno + 1;
            r.last_global_seqno = rec.change.seqno;
            shard.log.push_back(std::move(rec.change));
            ++r.replayed;
            break;
          }
        }
        return Status::Ok();
      });
  // A replay error keeps the clean prefix applied before it — the shard
  // serves what it has and is flagged kDataLoss by the merge step.
  if (!replay.ok()) r.status = replay;
  done();
}

Status Database::Recover() {
  if (shards_[0]->wal == nullptr) {
    return FailedPreconditionError("Recover: no WAL attached");
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard commit(commit_mutex_);
  std::unique_lock schema_lock(schema_mutex_);
  if (!schemas_.empty() || next_seqno_.load(std::memory_order_relaxed) != 1) {
    return FailedPreconditionError("Recover: database is not empty");
  }
  for (const auto& shard : shards_) {
    if (!shard->log.empty()) {
      return FailedPreconditionError("Recover: database is not empty");
    }
  }

  // Replay every shard in parallel: each worker owns its shard's state
  // exclusively (plus private schema scratch merged serially below), so no
  // locks are needed while the pool runs.
  const size_t n = shards_.size();
  std::vector<ShardRecoveryScratch> scratch(n);
  size_t workers =
      recovery_threads_ != 0
          ? recovery_threads_
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (uint32_t k = 0; k < n; ++k) RecoverShard(k, scratch[k]);
  } else {
    ThreadPool pool(workers);
    for (uint32_t k = 0; k < n; ++k) {
      pool.Submit([this, k, &scratch] { RecoverShard(k, scratch[k]); });
    }
    pool.Wait();
    pool.Shutdown();
  }

  // Merge the per-shard schema views (identical by construction — every
  // stream carries every DDL record; a stream torn before a late DDL just
  // misses tables it holds no rows for).
  for (const auto& sc : scratch) {
    for (const auto& [name, schema] : sc.schema) {
      auto [it, inserted] = schemas_.try_emplace(name, schema);
      if (inserted) continue;
      TableSchema& have = it->second;
      if (have.key_column != schema.key_column ||
          have.columns.size() != schema.columns.size()) {
        return DataLossError("Recover: shard streams disagree on the schema of "
                             + name);
      }
      for (const size_t ci : schema.indexed_columns) {
        if (std::find(have.indexed_columns.begin(), have.indexed_columns.end(),
                      ci) == have.indexed_columns.end()) {
          have.indexed_columns.push_back(ci);
        }
      }
      std::sort(have.indexed_columns.begin(), have.indexed_columns.end());
    }
  }
  // Every shard serves every table (a stream torn before a CreateTable
  // still needs the partition other shards know about).
  for (const auto& [name, schema] : schemas_) {
    for (const auto& shard : shards_) {
      Partition& p = shard->tables[name];
      for (const size_t ci : schema.indexed_columns) p.indexes.try_emplace(ci);
    }
  }

  // Cross-shard accounting. Global seqnos are dense across shards, so the
  // highest watermark seen anywhere counts the commits that must exist;
  // per-shard seqnos are dense from 1, so their sum counts the commits
  // recovered. The difference is provable loss, attributed to the shards
  // whose streams end early (suffix-only truncation means a shard holds
  // *all* its records up to its last global watermark).
  uint64_t high = 0;
  uint64_t recovered_count = 0;
  uint64_t max_ckpt = 0;
  uint64_t replayed_total = 0;
  size_t failed_shards = 0;
  for (const auto& sc : scratch) {
    high = std::max(high, sc.result.last_global_seqno);
    recovered_count += sc.result.shard_seqno;
    max_ckpt = std::max(max_ckpt, sc.result.checkpoint_seqno);
    replayed_total += sc.result.replayed;
  }
  const uint64_t missing = high > recovered_count ? high - recovered_count : 0;

  recovery_report_ = RecoveryReport{};
  recovery_report_.missing_records = missing;
  Status first_error = Status::Ok();
  for (uint32_t k = 0; k < n; ++k) {
    ShardRecovery r = scratch[k].result;
    if (!r.status.ok()) {
      ++failed_shards;
      if (first_error.ok()) first_error = r.status;
    } else if (r.torn_bytes > 0) {
      r.status = DataLossError(
          "shard " + std::to_string(k) + ": torn WAL tail (" +
          std::to_string(r.torn_bytes) + " bytes dropped); heal via catch-up");
    }
    // A clean-boundary tail loss (group commit: frames unsynced at the
    // crash, nothing torn) leaves no per-shard evidence — a short stream
    // looks identical to a shard that simply had no recent commits. Those
    // losses surface only as the cross-shard missing_records count above;
    // attributing them to every shard below the high watermark would flag
    // healthy shards, so we deliberately do not.
    recovery_report_.shards.push_back(std::move(r));
  }

  next_seqno_.store(high + 1, std::memory_order_release);
  global_log_head_.store(max_ckpt + 1, std::memory_order_release);

  recovered_records_->Increment(replayed_total);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  recovery_report_.total_ms = ms;
  recovery_ms_->Observe(ms);
  // Partial loss is survivable (the healthy shards serve; the flagged ones
  // heal through replication) — only a store with *no* usable shard fails.
  if (failed_shards == n && !first_error.ok()) return first_error;
  return Status::Ok();
}

// --- change feed ------------------------------------------------------------

uint64_t Database::LastSeqno() const {
  return next_seqno_.load(std::memory_order_acquire) - 1;
}

uint64_t Database::log_head_seqno() const {
  return global_log_head_.load(std::memory_order_acquire);
}

ChangeCursor Database::AppliedCursor() const {
  ChangeCursor cursor;
  cursor.positions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    cursor.positions.push_back(shard->next_shard_seqno - 1);
  }
  return cursor;
}

ChangeCursor Database::RetainedCursor() const {
  ChangeCursor cursor;
  cursor.positions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    cursor.positions.push_back(shard->log_head - 1);
  }
  return cursor;
}

ChangeCursor Database::CursorAtGlobal(uint64_t seqno) const {
  ChangeCursor cursor;
  cursor.positions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    // Shard logs ascend in both seqno spaces; find the last record at or
    // before the global watermark.
    auto it = std::upper_bound(
        shard->log.begin(), shard->log.end(), seqno,
        [](uint64_t s, const ChangeRecord& r) { return s < r.seqno; });
    if (it != shard->log.begin()) {
      cursor.positions.push_back(std::prev(it)->shard_seqno);
    } else {
      // Nothing at or before the watermark survives in the log: clamp to
      // the retained head. If records below it postdated `seqno`, the
      // consumer observes the mismatch at apply time and resyncs.
      cursor.positions.push_back(shard->log_head - 1);
    }
  }
  return cursor;
}

Result<ChangeBatch> Database::ReadChanges(const ChangeCursor& cursor,
                                          size_t limit) const {
  if (Status s = fault::Check(faults_, "db", instance_, "changes"); !s.ok()) {
    return s;
  }
  const size_t n = shards_.size();
  ChangeBatch batch;
  batch.next.positions.resize(n);
  for (size_t k = 0; k < n; ++k) batch.next.positions[k] = cursor.at(k);

  // Per shard: the tail past the cursor (bounded by limit — the merge can
  // never consume more than `limit` from one shard).
  std::vector<std::vector<ChangeRecord>> tails(n);
  for (size_t k = 0; k < n; ++k) {
    const Shard& shard = *shards_[k];
    std::shared_lock lock(shard.mutex);
    const uint64_t pos = cursor.at(k);
    if (pos + 1 < shard.log_head) {
      // This shard's records at the cursor were truncated after a
      // checkpoint: withhold the shard (position unmoved) and report the
      // gap; the healthy shards still flow below.
      batch.gap_shards.push_back(static_cast<uint32_t>(k));
      continue;
    }
    auto it = std::lower_bound(
        shard.log.begin(), shard.log.end(), pos + 1,
        [](const ChangeRecord& r, uint64_t s) { return r.shard_seqno < s; });
    for (; it != shard.log.end() && tails[k].size() < limit; ++it) {
      tails[k].push_back(*it);
    }
  }

  // K-way merge by global seqno.
  std::vector<size_t> heads(n, 0);
  while (batch.records.size() < limit) {
    size_t best = n;
    for (size_t k = 0; k < n; ++k) {
      if (heads[k] >= tails[k].size()) continue;
      if (best == n ||
          tails[k][heads[k]].seqno < tails[best][heads[best]].seqno) {
        best = k;
      }
    }
    if (best == n) break;
    ChangeRecord& rec = tails[best][heads[best]++];
    batch.next.positions[best] = rec.shard_seqno;
    batch.records.push_back(std::move(rec));
  }
  return batch;
}

Result<std::vector<ChangeRecord>> Database::ReadShardChanges(
    uint32_t shard_index, uint64_t after, size_t limit) const {
  if (shard_index >= shards()) {
    return InvalidArgumentError("ReadShardChanges: no shard " +
                                std::to_string(shard_index));
  }
  if (Status s = fault::Check(faults_, "db", instance_, "changes"); !s.ok()) {
    return s;
  }
  const Shard& shard = *shards_[shard_index];
  std::shared_lock lock(shard.mutex);
  if (after + 1 < shard.log_head) {
    return DataLossError(
        "ReadShardChanges: shard " + std::to_string(shard_index) +
        " seqnos through " + std::to_string(shard.log_head - 1) +
        " truncated after checkpoint; resync required");
  }
  std::vector<ChangeRecord> out;
  auto it = std::lower_bound(
      shard.log.begin(), shard.log.end(), after + 1,
      [](const ChangeRecord& r, uint64_t s) { return r.shard_seqno < s; });
  for (; it != shard.log.end() && out.size() < limit; ++it) out.push_back(*it);
  return out;
}

uint64_t Database::Subscribe(ChangeSink* sink, uint32_t shard) {
  std::lock_guard lock(sink_mutex_);
  const uint64_t id = next_sink_id_++;
  sinks_[id] = Subscription{sink, shard};
  return id;
}

void Database::Unsubscribe(uint64_t id) {
  std::lock_guard lock(sink_mutex_);
  sinks_.erase(id);
}

}  // namespace nagano::db
