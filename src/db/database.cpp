#include "db/database.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace nagano::db {

std::string KeyString(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(*i));
    return buf;
  }
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

bool TypeMatches(const Value& v, ColumnType type) {
  switch (type) {
    case ColumnType::kInt: return std::holds_alternative<int64_t>(v);
    case ColumnType::kDouble: return std::holds_alternative<double>(v);
    case ColumnType::kString: return std::holds_alternative<std::string>(v);
  }
  return false;
}

Database::Database(DatabaseOptions options)
    : clock_(options.clock ? options.clock : &RealClock::Instance()),
      faults_(options.faults) {
  ValidateOrDie(options, "DatabaseOptions");
  const auto scope = metrics::Scope::Resolve(options.metrics, "db");
  instance_ = scope.labels.empty() ? std::string() : scope.labels[0].second;
  commits_ = scope.GetCounter("nagano_db_commits_total",
                              "mutations appended to the change log");
}

Status Database::CreateTable(std::string_view table,
                             std::vector<ColumnSpec> columns,
                             size_t key_column) {
  if (columns.empty()) {
    return InvalidArgumentError("CreateTable: no columns");
  }
  if (key_column >= columns.size()) {
    return InvalidArgumentError("CreateTable: key column out of range");
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = tables_.try_emplace(std::string(table));
  if (!inserted) {
    return AlreadyExistsError("CreateTable: table exists: " + std::string(table));
  }
  it->second.columns = std::move(columns);
  it->second.key_column = key_column;
  return Status::Ok();
}

bool Database::HasTable(std::string_view table) const {
  std::shared_lock lock(mutex_);
  return tables_.contains(std::string(table));
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<size_t> Database::ColumnIndex(std::string_view table,
                                     std::string_view column) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) {
    return NotFoundError("ColumnIndex: no table " + std::string(table));
  }
  const auto& cols = it->second.columns;
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name == column) return i;
  }
  return NotFoundError("ColumnIndex: no column " + std::string(column));
}

Status Database::ValidateRowLocked(const TableData& t, const Row& row) const {
  if (row.size() != t.columns.size()) {
    return InvalidArgumentError("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypeMatches(row[i], t.columns[i].type)) {
      return InvalidArgumentError("type mismatch in column " + t.columns[i].name);
    }
  }
  return Status::Ok();
}

void Database::CommitLocked(ChangeRecord change,
                            std::unique_lock<std::shared_mutex>& lock) {
  log_.push_back(change);
  commits_->Increment();
  // Snapshot listeners, then fire outside the lock: listeners (the trigger
  // monitor) may re-enter the database to render pages.
  std::vector<Listener> to_fire;
  to_fire.reserve(listeners_.size());
  for (const auto& [_, l] : listeners_) to_fire.push_back(l);
  lock.unlock();
  for (const auto& l : to_fire) l(change);
}

void Database::UnindexRowLocked(TableData& t, const std::string& pk,
                                const Row& row) {
  for (auto& [column, index] : t.indexes) {
    const std::string value = KeyString(row[column]);
    for (auto it = index.lower_bound(value);
         it != index.end() && it->first == value; ++it) {
      if (it->second == pk) {
        index.erase(it);
        break;
      }
    }
  }
}

void Database::IndexRowLocked(TableData& t, const std::string& pk,
                              const Row& row) {
  for (auto& [column, index] : t.indexes) {
    index.emplace(KeyString(row[column]), pk);
  }
}

Status Database::Upsert(std::string_view table, Row row) {
  // Decide the commit fate before taking the lock; an injected error fails
  // the mutation cleanly, an injected delay stalls the commit timestamp.
  const auto fate = fault::Decide(faults_, "db", instance_, "commit");
  if (!fate.status.ok()) return fate.status;
  std::unique_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) {
    return NotFoundError("Upsert: no table " + std::string(table));
  }
  TableData& t = it->second;
  if (Status s = ValidateRowLocked(t, row); !s.ok()) return s;

  ChangeRecord change;
  change.table = std::string(table);
  change.key = KeyString(row[t.key_column]);
  change.row = row;
  change.committed_at = clock_->Now() + fate.delay;
  change.seqno = next_seqno_++;

  if (auto old = t.rows.find(change.key); old != t.rows.end()) {
    UnindexRowLocked(t, change.key, old->second);
  }
  auto [row_it, inserted] = t.rows.insert_or_assign(change.key, std::move(row));
  IndexRowLocked(t, change.key, row_it->second);
  change.op = inserted ? ChangeOp::kInsert : ChangeOp::kUpdate;
  CommitLocked(std::move(change), lock);
  return Status::Ok();
}

Status Database::Delete(std::string_view table, const Value& key) {
  const auto fate = fault::Decide(faults_, "db", instance_, "commit");
  if (!fate.status.ok()) return fate.status;
  std::unique_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) {
    return NotFoundError("Delete: no table " + std::string(table));
  }
  TableData& t = it->second;
  const std::string k = KeyString(key);
  auto row_it = t.rows.find(k);
  if (row_it == t.rows.end()) {
    return NotFoundError("Delete: no row " + k);
  }
  UnindexRowLocked(t, k, row_it->second);
  t.rows.erase(row_it);
  ChangeRecord change;
  change.table = std::string(table);
  change.key = k;
  change.op = ChangeOp::kDelete;
  change.committed_at = clock_->Now() + fate.delay;
  change.seqno = next_seqno_++;
  CommitLocked(std::move(change), lock);
  return Status::Ok();
}

Status Database::ApplyReplicated(const ChangeRecord& change) {
  std::unique_lock lock(mutex_);
  auto it = tables_.find(change.table);
  if (it == tables_.end()) {
    return NotFoundError("ApplyReplicated: no table " + change.table);
  }
  TableData& t = it->second;
  if (change.seqno != next_seqno_) {
    return DataLossError("ApplyReplicated: expected seqno " +
                         std::to_string(next_seqno_) + ", got " +
                         std::to_string(change.seqno));
  }
  switch (change.op) {
    case ChangeOp::kInsert:
    case ChangeOp::kUpdate: {
      if (Status s = ValidateRowLocked(t, change.row); !s.ok()) return s;
      if (auto old = t.rows.find(change.key); old != t.rows.end()) {
        UnindexRowLocked(t, change.key, old->second);
      }
      auto [row_it, _] = t.rows.insert_or_assign(change.key, change.row);
      IndexRowLocked(t, change.key, row_it->second);
      break;
    }
    case ChangeOp::kDelete: {
      if (auto old = t.rows.find(change.key); old != t.rows.end()) {
        UnindexRowLocked(t, change.key, old->second);
        t.rows.erase(old);
      }
      break;
    }
  }
  next_seqno_ = change.seqno + 1;
  CommitLocked(change, lock);
  return Status::Ok();
}

Result<Row> Database::Get(std::string_view table, const Value& key) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) {
    return NotFoundError("Get: no table " + std::string(table));
  }
  const auto& rows = it->second.rows;
  auto row_it = rows.find(KeyString(key));
  if (row_it == rows.end()) {
    return NotFoundError("Get: no row " + KeyString(key));
  }
  return row_it->second;
}

std::vector<Row> Database::Scan(
    std::string_view table, const std::function<bool(const Row&)>& pred) const {
  std::shared_lock lock(mutex_);
  std::vector<Row> out;
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return out;
  for (const auto& [_, row] : it->second.rows) {
    if (pred(row)) out.push_back(row);
  }
  return out;
}

std::vector<Row> Database::ScanAll(std::string_view table) const {
  return Scan(table, [](const Row&) { return true; });
}

Status Database::CreateIndex(std::string_view table, std::string_view column) {
  std::unique_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) {
    return NotFoundError("CreateIndex: no table " + std::string(table));
  }
  TableData& t = it->second;
  size_t column_index = t.columns.size();
  for (size_t i = 0; i < t.columns.size(); ++i) {
    if (t.columns[i].name == column) {
      column_index = i;
      break;
    }
  }
  if (column_index == t.columns.size()) {
    return NotFoundError("CreateIndex: no column " + std::string(column));
  }
  auto [index_it, created] = t.indexes.try_emplace(column_index);
  if (!created) return Status::Ok();  // idempotent
  for (const auto& [pk, row] : t.rows) {
    index_it->second.emplace(KeyString(row[column_index]), pk);
  }
  return Status::Ok();
}

bool Database::HasIndex(std::string_view table, std::string_view column) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return false;
  const TableData& t = it->second;
  for (size_t i = 0; i < t.columns.size(); ++i) {
    if (t.columns[i].name == column) return t.indexes.contains(i);
  }
  return false;
}

std::vector<Row> Database::Lookup(std::string_view table,
                                  std::string_view column,
                                  const Value& value) const {
  std::shared_lock lock(mutex_);
  std::vector<Row> out;
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return out;
  const TableData& t = it->second;
  size_t column_index = t.columns.size();
  for (size_t i = 0; i < t.columns.size(); ++i) {
    if (t.columns[i].name == column) {
      column_index = i;
      break;
    }
  }
  if (column_index == t.columns.size()) return out;

  auto index_it = t.indexes.find(column_index);
  if (index_it != t.indexes.end()) {
    // Index path: collect primary keys (sorted for key order), fetch rows.
    const std::string needle = KeyString(value);
    std::vector<std::string> pks;
    for (auto e = index_it->second.lower_bound(needle);
         e != index_it->second.end() && e->first == needle; ++e) {
      pks.push_back(e->second);
    }
    std::sort(pks.begin(), pks.end());
    for (const auto& pk : pks) {
      auto row_it = t.rows.find(pk);
      if (row_it != t.rows.end()) out.push_back(row_it->second);
    }
    return out;
  }
  // Fallback: linear scan (already in key order).
  const std::string needle = KeyString(value);
  for (const auto& [_, row] : t.rows) {
    if (KeyString(row[column_index]) == needle) out.push_back(row);
  }
  return out;
}

size_t Database::RowCount(std::string_view table) const {
  std::shared_lock lock(mutex_);
  auto it = tables_.find(std::string(table));
  return it == tables_.end() ? 0 : it->second.rows.size();
}

uint64_t Database::LastSeqno() const {
  std::shared_lock lock(mutex_);
  return next_seqno_ - 1;
}

std::vector<ChangeRecord> Database::ChangesSince(uint64_t after,
                                                 size_t limit) const {
  std::shared_lock lock(mutex_);
  std::vector<ChangeRecord> out;
  // Log seqnos are dense starting at 1 (replicated logs mirror the master's
  // numbering), so binary-search by seqno.
  auto it = std::lower_bound(
      log_.begin(), log_.end(), after + 1,
      [](const ChangeRecord& r, uint64_t s) { return r.seqno < s; });
  for (; it != log_.end() && out.size() < limit; ++it) out.push_back(*it);
  return out;
}

Result<std::vector<ChangeRecord>> Database::ReadChanges(uint64_t after,
                                                        size_t limit) const {
  if (Status s = fault::Check(faults_, "db", instance_, "changes"); !s.ok()) {
    return s;
  }
  return ChangesSince(after, limit);
}

uint64_t Database::Subscribe(Listener listener) {
  std::unique_lock lock(mutex_);
  const uint64_t id = next_listener_id_++;
  listeners_[id] = std::move(listener);
  return id;
}

void Database::Unsubscribe(uint64_t id) {
  std::unique_lock lock(mutex_);
  listeners_.erase(id);
}

}  // namespace nagano::db
