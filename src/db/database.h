// Sharded in-memory relational store — the reproduction's stand-in for the
// DB2 results database of the Olympic site (ISSUE 8: partitioned storage
// tier behind a redesigned API).
//
// What DUP needs from the database layer (and what this provides):
//  * typed tables with primary keys, point reads and predicate scans, used
//    by the page generators to render content;
//  * a shard-aware change feed: every commit carries a total-order seqno
//    plus a dense per-shard (shard, shard_seqno) pair, consumed through
//    per-shard cursors (ReadChanges) — the feed the trigger monitor tails
//    and the replication shipper pulls;
//  * change subscriptions (ChangeSink callbacks fired on commit, optionally
//    filtered to one shard) for push-style consumers.
//
// Sharding: rows are partitioned across N independent shards by a pluggable
// ShardMap (FNV-1a of the primary key by default). Each shard owns its own
// row/index partitions, its own dense change-log sequence, its own WAL
// stream (wal/shard-<k>/) and its own checkpoint image, so Recover() can
// replay all shards on a thread pool and a torn tail wedges one shard, not
// the store.
//
// Concurrency: one reader/writer lock per shard plus a global commit mutex
// that serializes mutations (assigning the total-order seqno). Writes were
// rare relative to reads at the Olympic site (tens of thousands of updates
// per day vs tens of millions of requests), so serialized commits are
// faithful; reads only take the shard locks they touch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "db/shard_map.h"
#include "wal/wal.h"

namespace nagano::db {

using Value = std::variant<int64_t, double, std::string>;

enum class ColumnType : uint8_t { kInt, kDouble, kString };

struct ColumnSpec {
  std::string name;
  ColumnType type;
};

using Row = std::vector<Value>;

// Canonical string encoding of a primary-key value (used for row indexing
// and for naming ODG underlying-data nodes consistently).
std::string KeyString(const Value& v);

// True iff `v` holds the alternative matching `type`.
bool TypeMatches(const Value& v, ColumnType type);

enum class ChangeOp : uint8_t { kInsert, kUpdate, kDelete };

// One committed mutation. Carries the full row image so replicas can apply
// the log without reading back from the master. `seqno` is the total commit
// order across the store; (shard, shard_seqno) is the dense per-shard
// numbering that cursors, replication and recovery actually track.
struct ChangeRecord {
  uint64_t seqno = 0;
  uint32_t shard = 0;
  uint64_t shard_seqno = 0;
  std::string table;
  std::string key;  // KeyString of the primary key
  ChangeOp op = ChangeOp::kInsert;
  Row row;          // empty for deletes
  TimeNs committed_at = 0;
};

// One page of the shard-aware change feed (ReadChanges). Records are merged
// across shards in total (global seqno) order; `next` resumes after the
// last record returned. Shards whose cursor position was truncated after a
// checkpoint are listed in `gap_shards` — their records are withheld and
// their cursor position left unmoved, so the consumer resyncs exactly those
// shards while the healthy ones keep flowing.
struct ChangeBatch {
  std::vector<ChangeRecord> records;
  ChangeCursor next;
  std::vector<uint32_t> gap_shards;
};

// Push-style change consumer. Fires synchronously on commit, outside the
// database locks, tagged with the owning shard — so a consumer can
// subscribe to one shard without inspecting every commit.
class ChangeSink {
 public:
  virtual ~ChangeSink() = default;
  virtual void OnChange(uint32_t shard, const ChangeRecord& change) = 0;
};

struct DatabaseOptions : OptionsBase {
  const Clock* clock = nullptr;  // defaults to RealClock
  // Consulted on mutations ({"db", <instance>, "commit"}: commit errors and
  // commit stalls charged to committed_at) and on ReadChanges
  // ({"db", <instance>, "changes"}). Null = injection off.
  fault::FaultInjector* faults = nullptr;
  metrics::Options metrics;
  // Number of independent shards rows are partitioned across.
  size_t shards = 1;
  // Key placement; null = HashShardMap. Must match across replicas of the
  // same feed — per-shard numbering mirrors record by record.
  std::shared_ptr<const ShardMap> shard_map;
  // Durability, single-shard convenience form: one WAL stream for a
  // one-shard store. Mutually exclusive with shard_wals; requires
  // shards == 1. Not owned.
  wal::WriteAheadLog* wal = nullptr;
  // Durability, sharded form: one WAL stream per shard (wal/shard-<k>/ —
  // see wal::OpenShardWals). Size must equal `shards`. Not owned.
  std::vector<wal::WriteAheadLog*> shard_wals;
  // Upper bound on in-memory change-log records retained per shard after a
  // Checkpoint() (0 = unbounded, the pre-WAL behaviour). Reading a cursor
  // from before a shard's retained head reports that shard in
  // ChangeBatch::gap_shards — the signal that sends replication consumers
  // through resync.
  size_t change_log_retention = 0;
  // Worker threads Recover() replays shards on. 0 = min(shards, hardware
  // concurrency); 1 = serial.
  size_t recovery_threads = 0;

  Status Validate() const;
};

// --- WAL payload codec ---
// Every WAL payload starts with a kind tag so replay can rebuild schema and
// content in commit order (schema records carry the seqno watermark of the
// last data change and are appended to every shard stream, keeping each
// stream self-contained; data records carry their own seqno).
enum class WalRecordKind : uint8_t {
  kChange = 1,
  kCreateTable = 2,
  kCreateIndex = 3,
};

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kChange;
  ChangeRecord change;             // kChange
  std::string table;               // kCreateTable / kCreateIndex
  std::vector<ColumnSpec> columns; // kCreateTable
  size_t key_column = 0;           // kCreateTable
  std::string column;              // kCreateIndex
};

std::string EncodeWalChange(const ChangeRecord& change);
std::string EncodeWalCreateTable(std::string_view table,
                                 const std::vector<ColumnSpec>& columns,
                                 size_t key_column);
std::string EncodeWalCreateIndex(std::string_view table,
                                 std::string_view column);
// kDataLoss on a malformed payload.
Result<WalRecord> DecodeWalRecord(std::string_view payload);

// Per-shard outcome of the last Recover() call. A shard whose WAL stream
// had a torn tail (or failed replay outright) carries kDataLoss here while
// the other shards come back healthy — the caller (WarmRestart) heals
// exactly that shard through per-shard replication instead of resyncing
// the world. Clean-boundary group-commit tail losses leave no per-shard
// evidence and surface only as RecoveryReport::missing_records.
struct ShardRecovery {
  Status status = Status::Ok();
  uint64_t replayed = 0;           // records replayed from the WAL tail
  uint64_t checkpoint_seqno = 0;   // global watermark of the image loaded
  uint64_t last_global_seqno = 0;  // highest global seqno this shard holds
  uint64_t shard_seqno = 0;        // dense per-shard watermark after recovery
  uint64_t torn_bytes = 0;         // bytes the WAL dropped from a torn tail
  double replay_ms = 0.0;          // this shard's checkpoint-load + replay time
};

struct RecoveryReport {
  std::vector<ShardRecovery> shards;
  // Commits known to have happened (max global watermark observed) that no
  // shard recovered — the cross-shard loss signal for group-commit tails.
  uint64_t missing_records = 0;
  double total_ms = 0.0;

  // Every shard's stream was intact. Callers deciding whether catch-up is
  // needed must also consult missing_records: a clean group-commit tail
  // loss keeps every stream healthy yet still needs healing.
  bool healthy() const {
    for (const auto& s : shards) {
      if (!s.status.ok()) return false;
    }
    return true;
  }
};

class Database {
 public:
  explicit Database(DatabaseOptions options);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- schema ---
  // key_column is an index into `columns`. Fails if the table exists.
  // Schema is global (every shard serves every table); the DDL record is
  // appended to every shard's WAL stream so each stream replays alone.
  Status CreateTable(std::string_view table, std::vector<ColumnSpec> columns,
                     size_t key_column = 0);
  bool HasTable(std::string_view table) const;
  std::vector<std::string> TableNames() const;
  // Index of `column` in `table`'s schema, or error.
  Result<size_t> ColumnIndex(std::string_view table,
                             std::string_view column) const;

  // --- mutation (goes through the change log) ---
  Status Upsert(std::string_view table, Row row);
  Status Delete(std::string_view table, const Value& key);

  // Applies a replicated change without assigning new local seqnos — used
  // by replicas so their logs mirror the master's numbering exactly.
  // Enforces per-shard density (change.shard_seqno must be the shard's
  // next), so each shard's stream is in-order and exactly-once while the
  // shards heal independently of one another.
  Status ApplyReplicated(const ChangeRecord& change);

  // --- secondary indexes ---
  // Builds (and thereafter maintains) an index on `column`. Idempotent.
  // Page generators hit results-by-event / events-by-day constantly; the
  // production site's DB2 obviously had them.
  Status CreateIndex(std::string_view table, std::string_view column);
  bool HasIndex(std::string_view table, std::string_view column) const;

  // --- query ---
  Result<Row> Get(std::string_view table, const Value& key) const;
  // All rows for which pred returns true, in primary-key order (merged
  // across shards; the order is independent of the shard count).
  std::vector<Row> Scan(std::string_view table,
                        const std::function<bool(const Row&)>& pred) const;
  std::vector<Row> ScanAll(std::string_view table) const;
  // Rows whose `column` equals `value`, in primary-key order. Uses the
  // secondary index when one exists, otherwise degrades to a scan.
  std::vector<Row> Lookup(std::string_view table, std::string_view column,
                          const Value& value) const;
  size_t RowCount(std::string_view table) const;

  // --- durability (requires a WAL per shard) ---
  // Writes one checkpoint image per shard (that shard's rows + the global
  // schema + both seqno watermarks), retires WAL segments fully covered,
  // and — when change_log_retention is set — truncates each shard's
  // in-memory change log to the newest `retention` records.
  Status Checkpoint();
  // Rebuilds an empty database (no tables, no commits) from each shard's
  // newest checkpoint plus its WAL tail, replaying shards in parallel on a
  // thread pool (recovery_threads). Original seqnos are preserved:
  // LastSeqno() afterwards equals the last durably committed seqno and new
  // commits continue densely from it; per-shard seqnos likewise. Listeners
  // do not fire during recovery.
  //
  // A shard that lost records (torn WAL tail, or provably missing commits)
  // comes back as far as its stream allows and is flagged kDataLoss in
  // last_recovery() — Recover() itself still returns Ok so the caller can
  // serve the healthy shards and heal the wounded one through replication.
  // Structural failures (no WAL, unreadable image format) fail the call.
  Status Recover();
  // Report of the last Recover() on this object. Empty before any call.
  const RecoveryReport& last_recovery() const { return recovery_report_; }

  // Forces an fsync of every attached WAL stream — the group-commit flush
  // batching appends across shards (streams opened with kGroupCommit defer
  // per-append fsyncs to this barrier, rotation, or checkpoints).
  Status Sync();

  // --- change feed ---
  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint64_t LastSeqno() const;
  // Seqno of the oldest change guaranteed still held across every shard's
  // in-memory log (records below it may have been truncated after a
  // checkpoint). 1 until a retention-bounded checkpoint or a
  // checkpoint-based recovery moves it.
  uint64_t log_head_seqno() const;

  // The one fallible cursor API (ISSUE 8): records past `cursor`, merged
  // across shards in total order, up to `limit`. ChangeBatch::next resumes
  // after the last record returned; truncated shards are reported in
  // gap_shards (position unmoved) while healthy shards keep flowing.
  // Errors only when the read itself fails (the fault plan's
  // {"db", <instance>, "changes"} point) — kUnavailable, retry later.
  Result<ChangeBatch> ReadChanges(const ChangeCursor& cursor,
                                  size_t limit = SIZE_MAX) const;
  // Single-shard tail read: records of `shard` with shard_seqno > after.
  // kDataLoss when `after` precedes the shard's retained head.
  Result<std::vector<ChangeRecord>> ReadShardChanges(
      uint32_t shard, uint64_t after, size_t limit = SIZE_MAX) const;
  // Cursor positioned at everything applied so far (positions[k] = shard
  // k's dense watermark) — the seed for feed consumers starting "now".
  ChangeCursor AppliedCursor() const;
  // Cursor positioned just before the oldest record each shard still
  // retains — the farthest back a consumer can read without a gap. A
  // consumer whose cursor fell behind this has lost records for good and
  // clamps forward to it.
  ChangeCursor RetainedCursor() const;
  // Cursor positioned at the last record of each shard with global seqno
  // <= `seqno`, derived from the retained logs. Positions truncated out of
  // the log clamp to the shard's retained head (the consumer then observes
  // the gap at apply time). For re-parenting a consumer that only knows a
  // global watermark.
  ChangeCursor CursorAtGlobal(uint64_t seqno) const;

  // Sink fires synchronously on commit, outside the database locks, for
  // every change whose shard matches `shard` (kAllShards = no filter).
  // The sink must outlive the subscription.
  uint64_t Subscribe(ChangeSink* sink, uint32_t shard = kAllShards);
  void Unsubscribe(uint64_t id);

 private:
  // Global schema for one table; rows live in per-shard partitions.
  struct TableSchema {
    std::vector<ColumnSpec> columns;
    size_t key_column = 0;
    std::vector<size_t> indexed_columns;  // sorted
  };

  // One shard's slice of one table.
  struct Partition {
    std::map<std::string, Row> rows;  // KeyString -> row, key-ordered
    // column index -> (KeyString(column value) -> set of primary keys)
    std::map<size_t, std::multimap<std::string, std::string>> indexes;
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::string, Partition> tables;
    std::vector<ChangeRecord> log;    // ascending shard_seqno AND seqno
    uint64_t next_shard_seqno = 1;
    uint64_t log_head = 1;            // shard_seqno of log.front() (non-empty)
    wal::WriteAheadLog* wal = nullptr;
  };

  // Scratch state one shard's recovery worker builds in isolation; merged
  // serially after every worker joins.
  struct ShardRecoveryScratch {
    std::map<std::string, TableSchema> schema;
    ShardRecovery result;
  };

  uint32_t ShardOf(std::string_view table, std::string_view key) const {
    return shard_map_->ShardOf(table, key, shards());
  }
  Status ValidateRow(const TableSchema& schema, const Row& row) const;
  // Appends one encoded record to shard `shard`'s WAL (no-op without one).
  // Called with the commit mutex held, *before* the mutation is applied — a
  // failed append fails the commit without consuming either seqno.
  Status WalAppend(uint32_t shard, uint64_t seqno, const std::string& payload);
  // Appends a DDL record to every shard stream (each stream replays alone).
  Status WalAppendAll(uint64_t seqno, const std::string& payload);
  // Applies a validated change to one shard's partition (rows + indexes)
  // and appends it to the shard log; callers hold the commit mutex and are
  // about to take (or hold) the shard's write lock.
  void ApplyAndLog(Shard& shard, const TableSchema& schema,
                   const ChangeRecord& change);
  // Fires matching sinks. Called with no database locks held.
  void NotifySinks(const ChangeRecord& change);
  static void ApplyChange(Partition& p, const ChangeRecord& change);
  // Index maintenance around a row mutation.
  static void UnindexRow(Partition& p, const std::string& pk, const Row& row);
  static void IndexRow(Partition& p, const std::string& pk, const Row& row);
  // One shard's checkpoint-load + tail-replay, run on the recovery pool.
  void RecoverShard(uint32_t index, ShardRecoveryScratch& scratch);

  const Clock* clock_;
  fault::FaultInjector* faults_;
  std::shared_ptr<const ShardMap> shard_map_;
  const size_t retention_;
  const size_t recovery_threads_;
  std::string instance_;  // fault-injection site name (== metrics label)

  // Lock order: commit_mutex_ -> schema_mutex_ -> shard mutexes (ascending
  // index). Readers may take schema + any subset of shard locks (ascending)
  // without the commit mutex.
  std::mutex commit_mutex_;
  mutable std::shared_mutex schema_mutex_;
  std::map<std::string, TableSchema> schemas_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_seqno_{1};
  // Smallest seqno such that every record >= it is still retained in some
  // shard log (advanced by retention truncation and recovery).
  std::atomic<uint64_t> global_log_head_{1};
  RecoveryReport recovery_report_;

  struct Subscription {
    ChangeSink* sink = nullptr;
    uint32_t shard = kAllShards;
  };
  mutable std::mutex sink_mutex_;
  std::map<uint64_t, Subscription> sinks_;
  uint64_t next_sink_id_ = 1;

  // Committed mutations (inserts/updates/deletes plus replicated applies).
  metrics::Counter* commits_;
  metrics::Counter* recovered_records_;
  metrics::Histogram* recovery_ms_;
};

}  // namespace nagano::db
