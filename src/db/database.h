// Minimal in-memory relational store — the reproduction's stand-in for the
// DB2 results database of the Olympic site.
//
// What DUP needs from the database layer (and what this provides):
//  * typed tables with primary keys, point reads and predicate scans, used
//    by the page generators to render content;
//  * a totally ordered change log with sequence numbers — the feed the
//    trigger monitor tails to learn that underlying data changed;
//  * change subscriptions (callbacks fired on commit) for push-style
//    consumers, and pull-style ChangesSince() for the replication shipper.
//
// Concurrency: a single reader/writer lock over the database. Writes were
// rare relative to reads at the Olympic site (tens of thousands of updates
// per day vs tens of millions of requests), so a coarse lock is faithful
// and keeps the semantics obvious.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "wal/wal.h"

namespace nagano::db {

using Value = std::variant<int64_t, double, std::string>;

enum class ColumnType : uint8_t { kInt, kDouble, kString };

struct ColumnSpec {
  std::string name;
  ColumnType type;
};

using Row = std::vector<Value>;

// Canonical string encoding of a primary-key value (used for row indexing
// and for naming ODG underlying-data nodes consistently).
std::string KeyString(const Value& v);

// True iff `v` holds the alternative matching `type`.
bool TypeMatches(const Value& v, ColumnType type);

enum class ChangeOp : uint8_t { kInsert, kUpdate, kDelete };

// One committed mutation. Carries the full row image so replicas can apply
// the log without reading back from the master.
struct ChangeRecord {
  uint64_t seqno = 0;
  std::string table;
  std::string key;  // KeyString of the primary key
  ChangeOp op = ChangeOp::kInsert;
  Row row;          // empty for deletes
  TimeNs committed_at = 0;
};

struct DatabaseOptions : OptionsBase {
  const Clock* clock = nullptr;  // defaults to RealClock
  // Consulted on mutations ({"db", <instance>, "commit"}: commit errors and
  // commit stalls charged to committed_at) and on ReadChanges
  // ({"db", <instance>, "changes"}). Null = injection off.
  fault::FaultInjector* faults = nullptr;
  metrics::Options metrics;
  // When set, every commit (schema and data) is appended to the WAL before
  // it becomes visible, Checkpoint() snapshots the tables into it, and
  // Recover() rebuilds an empty database from it. Not owned.
  wal::WriteAheadLog* wal = nullptr;
  // Upper bound on in-memory change-log records retained after a
  // Checkpoint() (0 = unbounded, the pre-WAL behaviour). ReadChanges()
  // before the retained head returns kDataLoss — the gap status that sends
  // replication consumers through resync.
  size_t change_log_retention = 0;

  Status Validate() const { return Status::Ok(); }
};

// --- WAL payload codec ---
// Every WAL payload starts with a kind tag so replay can rebuild schema and
// content in commit order (schema records carry the seqno watermark of the
// last data change; data records carry their own seqno).
enum class WalRecordKind : uint8_t {
  kChange = 1,
  kCreateTable = 2,
  kCreateIndex = 3,
};

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kChange;
  ChangeRecord change;             // kChange
  std::string table;               // kCreateTable / kCreateIndex
  std::vector<ColumnSpec> columns; // kCreateTable
  size_t key_column = 0;           // kCreateTable
  std::string column;              // kCreateIndex
};

std::string EncodeWalChange(const ChangeRecord& change);
std::string EncodeWalCreateTable(std::string_view table,
                                 const std::vector<ColumnSpec>& columns,
                                 size_t key_column);
std::string EncodeWalCreateIndex(std::string_view table,
                                 std::string_view column);
// kDataLoss on a malformed payload.
Result<WalRecord> DecodeWalRecord(std::string_view payload);

class Database {
 public:
  explicit Database(DatabaseOptions options);
  // Legacy convenience signature; equivalent to DatabaseOptions{clock,
  // metrics}.
  explicit Database(const Clock* clock = nullptr,
                    const metrics::Options& metrics_options = {})
      : Database(DatabaseOptions{{}, clock, nullptr, metrics_options}) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- schema ---
  // key_column is an index into `columns`. Fails if the table exists.
  Status CreateTable(std::string_view table, std::vector<ColumnSpec> columns,
                     size_t key_column = 0);
  bool HasTable(std::string_view table) const;
  std::vector<std::string> TableNames() const;
  // Index of `column` in `table`'s schema, or error.
  Result<size_t> ColumnIndex(std::string_view table,
                             std::string_view column) const;

  // --- mutation (goes through the change log) ---
  Status Upsert(std::string_view table, Row row);
  Status Delete(std::string_view table, const Value& key);

  // Applies a replicated change without assigning a new local seqno — used
  // by replicas so their logs mirror the master's numbering exactly.
  Status ApplyReplicated(const ChangeRecord& change);

  // --- secondary indexes ---
  // Builds (and thereafter maintains) an index on `column`. Idempotent.
  // Page generators hit results-by-event / events-by-day constantly; the
  // production site's DB2 obviously had them.
  Status CreateIndex(std::string_view table, std::string_view column);
  bool HasIndex(std::string_view table, std::string_view column) const;

  // --- query ---
  Result<Row> Get(std::string_view table, const Value& key) const;
  // All rows for which pred returns true, in primary-key order.
  std::vector<Row> Scan(std::string_view table,
                        const std::function<bool(const Row&)>& pred) const;
  std::vector<Row> ScanAll(std::string_view table) const;
  // Rows whose `column` equals `value`, in primary-key order. Uses the
  // secondary index when one exists, otherwise degrades to a scan.
  std::vector<Row> Lookup(std::string_view table, std::string_view column,
                          const Value& value) const;
  size_t RowCount(std::string_view table) const;

  // --- durability (requires options.wal) ---
  // Writes a checkpoint image (full tables + last applied seqno) to the WAL,
  // retires WAL segments fully covered by it, and — when
  // change_log_retention is set — truncates the in-memory change log to the
  // newest `retention` records.
  Status Checkpoint();
  // Rebuilds an empty database (no tables, no commits) from the newest
  // checkpoint plus the WAL tail. Original seqnos are preserved: LastSeqno()
  // afterwards equals the last durably committed seqno, and new commits
  // continue densely from it. Listeners do not fire during recovery.
  Status Recover();

  // --- change feed ---
  uint64_t LastSeqno() const;
  // Seqno of the oldest record still held in the in-memory change log
  // (records below it were truncated after a checkpoint). 1 until a
  // retention-bounded checkpoint or a checkpoint-based recovery moves it.
  uint64_t log_head_seqno() const;
  // Records with seqno > after, up to limit, in order. Requests from before
  // the retained head simply yield the retained suffix; use ReadChanges()
  // to observe the gap as an error.
  std::vector<ChangeRecord> ChangesSince(uint64_t after,
                                         size_t limit = SIZE_MAX) const;
  // Fallible change-log read: ChangesSince through the fault plan's
  // {"db", <instance>, "changes"} point, so consumers (the replication
  // shipper) see kUnavailable when the log read itself fails — and
  // kDataLoss when `after` precedes the retained head, the same gap status
  // a dense-seqno violation raises, driving the consumer through resync.
  Result<std::vector<ChangeRecord>> ReadChanges(uint64_t after,
                                                size_t limit = SIZE_MAX) const;

  using Listener = std::function<void(const ChangeRecord&)>;
  // Listener fires synchronously on commit, outside the database lock.
  uint64_t Subscribe(Listener listener);
  void Unsubscribe(uint64_t id);

 private:
  struct TableData {
    std::vector<ColumnSpec> columns;
    size_t key_column = 0;
    std::map<std::string, Row> rows;  // KeyString -> row, key-ordered
    // column index -> (KeyString(column value) -> set of primary keys)
    std::map<size_t, std::multimap<std::string, std::string>> indexes;
  };

  Status ValidateRowLocked(const TableData& t, const Row& row) const;
  void CommitLocked(ChangeRecord change, std::unique_lock<std::shared_mutex>& lock);
  // Appends one encoded record to the WAL (no-op without one). Called with
  // the write lock held, *before* the mutation is applied — a failed append
  // fails the commit without consuming a seqno.
  Status WalAppendLocked(uint64_t seqno, const std::string& payload);
  // Applies a validated change to the table (rows + indexes); callers hold
  // the write lock and have already resolved the table.
  static void ApplyChangeLocked(TableData& t, const ChangeRecord& change);
  // Index maintenance around a row mutation; callers hold the write lock.
  static void UnindexRowLocked(TableData& t, const std::string& pk,
                               const Row& row);
  static void IndexRowLocked(TableData& t, const std::string& pk,
                             const Row& row);

  const Clock* clock_;
  fault::FaultInjector* faults_;
  wal::WriteAheadLog* wal_;
  const size_t retention_;
  std::string instance_;  // fault-injection site name (== metrics label)
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, TableData> tables_;
  std::vector<ChangeRecord> log_;
  uint64_t next_seqno_ = 1;
  uint64_t log_head_ = 1;  // seqno of log_.front() (when non-empty)
  std::map<uint64_t, Listener> listeners_;
  uint64_t next_listener_id_ = 1;
  // Committed mutations (inserts/updates/deletes plus replicated applies).
  metrics::Counter* commits_;
  metrics::Counter* recovered_records_;
  metrics::Histogram* recovery_ms_;
};

}  // namespace nagano::db
