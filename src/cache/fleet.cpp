#include "cache/fleet.h"

#include <cassert>

namespace nagano::cache {

CacheFleet::CacheFleet(size_t nodes, ObjectCache::Options base_options) {
  assert(nodes > 0);
  nodes_.reserve(nodes);
  const std::string base_instance = base_options.metrics.instance;
  for (size_t i = 0; i < nodes; ++i) {
    // Each node cache gets its own instance label ("<site>/node3", or
    // auto-assigned when the base is anonymous) so per-node counters never
    // alias in the shared registry.
    if (!base_instance.empty()) {
      base_options.metrics.instance =
          base_instance + "/node" + std::to_string(i);
    }
    nodes_.push_back(std::make_unique<ObjectCache>(base_options));
  }
}

void CacheFleet::PutAll(std::string_view key, const std::string& body) {
  for (auto& node : nodes_) node->Put(key, body);
}

size_t CacheFleet::UpdateInPlaceAll(std::string_view key,
                                    const std::string& body) {
  size_t updated = 0;
  for (auto& node : nodes_) {
    updated += node->UpdateInPlace(key, body) != 0;
  }
  return updated;
}

size_t CacheFleet::InvalidateAll(std::string_view key) {
  size_t held = 0;
  for (auto& node : nodes_) held += node->Invalidate(key);
  return held;
}

size_t CacheFleet::InvalidatePrefixAll(std::string_view prefix) {
  size_t dropped = 0;
  for (auto& node : nodes_) dropped += node->InvalidatePrefix(prefix);
  return dropped;
}

bool CacheFleet::ContainsAnywhere(std::string_view key) const {
  for (const auto& node : nodes_) {
    if (node->Contains(key)) return true;
  }
  return false;
}

CacheStats CacheFleet::TotalStats() const {
  CacheStats total;
  for (const auto& node : nodes_) {
    const CacheStats s = node->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.inserts += s.inserts;
    total.updates_in_place += s.updates_in_place;
    total.invalidations += s.invalidations;
    total.evictions += s.evictions;
    total.entries += s.entries;
    total.bytes += s.bytes;
  }
  return total;
}

bool CacheFleet::AllNodesIdentical() const {
  if (nodes_.size() < 2) return true;
  // Compare every node's full contents against node 0 — the strong form of
  // the distribution invariant: same key set, byte-identical bodies.
  const auto reference = nodes_[0]->Snapshot();
  for (size_t i = 1; i < nodes_.size(); ++i) {
    const auto other = nodes_[i]->Snapshot();
    if (other.size() != reference.size()) return false;
    for (size_t k = 0; k < reference.size(); ++k) {
      if (other[k].first != reference[k].first ||
          other[k].second->body != reference[k].second->body) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace nagano::cache
