// CacheFleet — the per-node serving caches of paper Fig. 6.
//
// Inside each SP2, pages were composed once on the SMP and the trigger
// monitor "distributed updated pages to each of the eight UP's serving the
// Internet": every serving uniprocessor held its own copy of the cache,
// kept consistent by push distribution rather than by sharing. The fleet
// models those N node caches and the distribution primitives the trigger
// monitor uses (update everywhere, invalidate everywhere).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/object_cache.h"

namespace nagano::cache {

class CacheFleet {
 public:
  // `nodes` serving caches, each built with `base_options`.
  explicit CacheFleet(size_t nodes, ObjectCache::Options base_options = {});

  CacheFleet(const CacheFleet&) = delete;
  CacheFleet& operator=(const CacheFleet&) = delete;

  size_t size() const { return nodes_.size(); }
  ObjectCache& node(size_t i) { return *nodes_[i]; }
  const ObjectCache& node(size_t i) const { return *nodes_[i]; }

  // --- distribution primitives (the trigger monitor's push path) ---------
  // Stores `body` in every node cache (update-in-place everywhere).
  void PutAll(std::string_view key, const std::string& body);
  // Refreshes `key` only on nodes that already hold it; returns how many
  // nodes were updated. The trigger monitor's re-render path uses this so a
  // push racing a node-local drop cannot resurrect the entry.
  size_t UpdateInPlaceAll(std::string_view key, const std::string& body);
  // Invalidates `key` everywhere; returns how many nodes held it.
  size_t InvalidateAll(std::string_view key);
  // Bulk prefix invalidation everywhere; returns total entries dropped.
  size_t InvalidatePrefixAll(std::string_view prefix);
  // True if any node cache holds `key`.
  bool ContainsAnywhere(std::string_view key) const;

  // Aggregate statistics over all node caches.
  CacheStats TotalStats() const;
  // Every node holds exactly the same key set with identical bodies —
  // the consistency invariant the distribution path maintains. O(n·m).
  // Meaningful at quiescence; mid-distribution it may observe a push that
  // reached some nodes but not yet others.
  bool AllNodesIdentical() const;

 private:
  std::vector<std::unique_ptr<ObjectCache>> nodes_;
};

}  // namespace nagano::cache
