// In-memory dynamic-page cache — the paper's "cache" component into which
// the trigger monitor pushes updated pages and from which server programs
// answer requests.
//
// Design points taken from the paper:
//  * Lookups vastly outnumber writes; storage is sharded with per-shard
//    locks so serving threads rarely contend.
//  * Stale entries can be *updated in place* (the 1998 innovation) rather
//    than invalidated, so hot pages never miss.
//  * An LRU replacement mechanism exists but at Olympic scale every page
//    fits in memory — "the system never had to apply a cache replacement
//    algorithm". The eviction counter lets tests and the MEM bench assert
//    exactly that.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "common/stats.h"

namespace nagano::cache {

struct CachedObject;

// One piece of a page composition plan: either a static byte run owned by
// the plan itself, or a reference to an independently cached fragment. A
// fragment chunk pins the fragment's CachedObject snapshot, so the plan
// stays serveable even if the fragment entry is replaced or evicted after
// the plan was stored/patched. Pinned fragment snapshots are always flat
// (never plans themselves), so bytes() is a single contiguous span.
struct PlanChunk {
  std::string text;      // static bytes (empty for fragment chunks)
  std::string fragment;  // fragment cache key (empty for static chunks)
  std::shared_ptr<const CachedObject> source;  // pinned fragment snapshot
  uint64_t fragment_version = 0;  // source->version at pin time

  bool is_fragment() const { return !fragment.empty(); }
  const std::string& bytes() const;
};

// Immutable snapshot of a cached object. Returned by shared_ptr so a reader
// keeps a consistent body even while the trigger monitor replaces the entry.
//
// Two shapes share this struct:
//  * flat entries — `body` holds the bytes, `plan` is empty (fragments and
//    fragment-free pages);
//  * composition plans — `body` is empty and `plan` is the ordered chunk
//    list (static byte runs + pinned fragment refs) whose concatenation is
//    the page. A fragment swap replaces only the touched chunk refs and the
//    cheap recomputed entity headers; the static skeleton is never
//    re-rendered.
struct CachedObject {
  std::string body;
  // Composition plan for plan-shaped entries (see above). Empty ⇔ flat.
  std::vector<PlanChunk> plan;
  // Sum of plan chunk byte lengths, precomputed at store/patch time so
  // entity_size() and Content-Length recomputation are O(1).
  size_t plan_bytes = 0;
  // Ready-to-send entity-header lines for this body, each CRLF-terminated:
  // "Content-Length: N\r\nX-Nagano-Version: V\r\n". Built once per store
  // (Put/UpdateInPlace/PutPlan/PatchPlan) so a cache hit assembles its HTTP
  // header block by appending this span — Vcache's complete-entity caching:
  // no per-request itoa, no per-request length math. The version line is
  // the ETag-style change stamp.
  std::string entity_headers;
  uint64_t version = 0;   // monotonically increasing per key
  TimeNs stored_at = 0;   // cache clock at insert/update time
  bool stale = false;     // invalidated but retained as last-known-good

  bool is_plan() const { return !plan.empty(); }
  // Entity byte length: body.size() for flat entries, summed chunk lengths
  // for plans — what Content-Length advertises either way.
  size_t entity_size() const { return is_plan() ? plan_bytes : body.size(); }
  // The full entity bytes as one string. Flat entries return a copy of
  // body; plans concatenate their chunks. The serve hot path never calls
  // this — it splices chunk refs — but include_body callers, digesting
  // benches, and the consistency audits do.
  std::string Materialize() const;
};

inline const std::string& PlanChunk::bytes() const {
  return is_fragment() ? source->body : text;
}

// Aliasing views into a cached object: shared_ptrs that point at the body /
// entity-header strings but share the object's control block, so the serving
// path can hand just the bytes to the HTTP writer while keeping the whole
// object alive until the socket flush completes.
inline std::shared_ptr<const std::string> BodyRef(
    const std::shared_ptr<const CachedObject>& object) {
  if (object == nullptr) return nullptr;
  return std::shared_ptr<const std::string>(object, &object->body);
}
inline std::shared_ptr<const std::string> EntityHeadersRef(
    const std::shared_ptr<const CachedObject>& object) {
  if (object == nullptr) return nullptr;
  return std::shared_ptr<const std::string>(object, &object->entity_headers);
}

// Scatter-gather view of an entity: one aliasing ref per byte run, in page
// order. Flat entries yield a single BodyRef; plans yield one ref per chunk
// — static text aliases the plan object, fragment bytes alias the pinned
// fragment snapshot. Every ref shares a control block with a CachedObject,
// so handing the vector to the HTTP writer keeps all the bytes alive until
// the socket flush completes without copying any of them.
inline std::vector<std::shared_ptr<const std::string>> BodyChunkRefs(
    const std::shared_ptr<const CachedObject>& object) {
  std::vector<std::shared_ptr<const std::string>> refs;
  if (object == nullptr) return refs;
  if (!object->is_plan()) {
    if (!object->body.empty()) refs.push_back(BodyRef(object));
    return refs;
  }
  refs.reserve(object->plan.size());
  for (const PlanChunk& chunk : object->plan) {
    if (chunk.is_fragment()) {
      refs.emplace_back(chunk.source, &chunk.source->body);
    } else if (!chunk.text.empty()) {
      refs.emplace_back(object, &chunk.text);
    }
  }
  return refs;
}

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t updates_in_place = 0;
  uint64_t invalidations = 0;
  uint64_t evictions = 0;
  // Composition plans refreshed by PatchPlan (fragment swap without page
  // re-render) — the fragment-first DUP fast path.
  uint64_t plans_patched = 0;
  size_t entries = 0;       // live entries; stale retentions not included
  size_t stale_entries = 0; // invalidated-but-retained last-known-good copies
  size_t bytes = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ObjectCache {
 public:
  struct Options : OptionsBase {
    size_t shards = 16;
    // 0 = unbounded (the Olympic configuration). When bounded, Put() evicts
    // least-recently-used unpinned entries until the new object fits.
    size_t capacity_bytes = 0;
    // Keep invalidated entries as stale last-known-good copies instead of
    // erasing them, so degraded serving (server/serving.h) has something to
    // fall back to when regeneration fails. Stale entries are invisible to
    // Lookup/Contains/size/Snapshot and reachable only via LookupStale.
    bool retain_stale = false;
    const Clock* clock = nullptr;  // defaults to RealClock
    // Consulted on TryLookup ({"cache", <instance>, "lookup"}). Null = off.
    fault::FaultInjector* faults = nullptr;
    // Registry + instance label for the nagano_cache_* metrics. An empty
    // instance gets a unique auto-assigned label so two caches (fleet
    // nodes, test fixtures) never alias each other's cells.
    metrics::Options metrics;

    Status Validate() const;
  };

  ObjectCache() : ObjectCache(Options()) {}
  explicit ObjectCache(Options options);

  ObjectCache(const ObjectCache&) = delete;
  ObjectCache& operator=(const ObjectCache&) = delete;

  // nullptr on miss. Hit/miss counters are updated either way. Never
  // consults the fault injector and never returns stale entries; the
  // serving path uses TryLookup so it can distinguish miss from outage.
  std::shared_ptr<const CachedObject> Lookup(std::string_view key);

  // Fallible lookup: the value on a hit, kNotFound on a miss (including a
  // stale-retained entry — a miss is a stable answer, see common/result.h),
  // kUnavailable when the fault plan fails this lookup.
  Result<std::shared_ptr<const CachedObject>> TryLookup(std::string_view key);

  // Last-known-good read for degraded serving: returns the entry even when
  // it is stale-retained (check ->stale; age is now - stored_at). Bypasses
  // the fault injector — the whole point is to keep working during an
  // outage — and counts neither hit nor miss. nullptr when nothing at all
  // is retained for the key.
  std::shared_ptr<const CachedObject> LookupStale(std::string_view key) const;

  // Peek without touching statistics or LRU order (used by monitoring).
  // Like Lookup, does not see stale-retained entries.
  std::shared_ptr<const CachedObject> Peek(std::string_view key) const;

  // Insert or update-in-place. The version is bumped past the entry's
  // current version automatically; returns the stored version.
  uint64_t Put(std::string_view key, std::string body);

  // Update-in-place only if `key` is present; returns the new version, or 0
  // without storing when the key is absent. The trigger monitor's
  // concurrent re-render path uses this so a regeneration racing an
  // invalidation can never resurrect a dropped entry; a stale-retained
  // entry counts as absent for the same reason.
  uint64_t UpdateInPlace(std::string_view key, std::string body);

  // Store a composition plan (ordered static chunks + pinned fragment
  // refs) under `key`. Same versioning and eviction semantics as Put; the
  // entity headers are computed from the summed chunk lengths. Fragment
  // chunks must carry a non-null flat `source` snapshot.
  uint64_t PutPlan(std::string_view key, std::vector<PlanChunk> plan);

  // Fragment swap: re-pin every fragment chunk of `key`'s plan to the
  // fragment's *current* cached snapshot, recompute Content-Length from the
  // new chunk lengths, and bump the version — all without touching the
  // static skeleton. Returns the new version, or 0 (store nothing) when the
  // key is absent/stale/not a plan, when any referenced fragment is no
  // longer live in the cache, or when the entry was concurrently replaced —
  // the caller then falls back to a full re-render. This is the
  // fragment-first DUP update path: a scoreboard commit re-renders one
  // fragment and patches every embedding page for the cost of a few
  // pointer swaps and an itoa.
  uint64_t PatchPlan(std::string_view key);

  // Pinned entries are never evicted by the LRU (the paper's hot pages,
  // which were "never invalidated from the cache").
  void Pin(std::string_view key, bool pinned);

  // True if the key was present (and live). Under retain_stale the entry is
  // downgraded to a stale last-known-good copy instead of being erased.
  bool Invalidate(std::string_view key);

  // Invalidates every key starting with `prefix`; returns the count. This
  // is the 1996-Atlanta conservative bulk invalidation primitive.
  size_t InvalidatePrefix(std::string_view prefix);

  void Clear();

  bool Contains(std::string_view key) const;
  CacheStats stats() const;
  size_t size() const;
  size_t bytes() const;

  // Key-sorted (key, object) snapshot across all shards. Shards are locked
  // one at a time, so the snapshot is per-shard consistent — call at
  // quiescence for an exact image. Used by the consistency test suites and
  // CacheFleet::AllNodesIdentical.
  std::vector<std::pair<std::string, std::shared_ptr<const CachedObject>>>
  Snapshot() const;

 private:
  struct Entry {
    std::shared_ptr<const CachedObject> object;
    uint64_t lru_tick = 0;
    bool pinned = false;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> map;
    size_t bytes = 0;
    size_t stale = 0;  // entries currently held as stale-retained
  };

  Shard& ShardFor(std::string_view key);
  const Shard& ShardFor(std::string_view key) const;
  // Shared insert/replace path behind Put and PutPlan: assigns the next
  // version, stamps headers and the clock, and does the footprint/LRU
  // bookkeeping.
  uint64_t Store(std::string_view key, std::shared_ptr<CachedObject> obj);
  // Evict LRU unpinned entries from `shard` until its bytes fit the
  // per-shard budget. Caller holds the shard lock.
  void EvictLocked(Shard& shard, size_t budget);
  // Erase or (under retain_stale) downgrade one entry. Caller holds the
  // shard lock; returns true when the entry was live before the call.
  bool InvalidateLocked(Shard& shard,
                        std::unordered_map<std::string, Entry>::iterator it);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t capacity_bytes_;
  bool retain_stale_;
  const Clock* clock_;
  fault::FaultInjector* faults_;
  std::string instance_;  // fault-injection site name (== metrics label)
  std::atomic<uint64_t> lru_clock_{0};

  // Registry-owned cells; stats() is a thin snapshot view over them.
  // Increments happen under the owning shard's lock, so per-metric relaxed
  // atomics are plenty.
  metrics::Counter* hits_;
  metrics::Counter* misses_;
  metrics::Counter* inserts_;
  metrics::Counter* updates_;
  metrics::Counter* invalidations_;
  metrics::Counter* evictions_;
  metrics::Counter* plans_patched_;
  metrics::Gauge* entries_gauge_;
  metrics::Gauge* bytes_gauge_;
};

}  // namespace nagano::cache
