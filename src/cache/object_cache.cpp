#include "cache/object_cache.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <iterator>

namespace nagano::cache {
namespace {

size_t EntryFootprint(const std::string& key, const CachedObject& obj) {
  size_t n = key.size() + obj.body.size() + obj.entity_headers.size() +
             sizeof(CachedObject);
  // Plans own their static text; fragment bytes are charged to the
  // fragment's own entry, so only the chunk bookkeeping is counted here.
  for (const PlanChunk& chunk : obj.plan) {
    n += chunk.text.size() + chunk.fragment.size() + sizeof(PlanChunk);
  }
  return n;
}

// The ready-to-send header prefix a hit appends to its response. Refreshed
// on every store so Content-Length and the version stamp always match the
// entity bytes they travel with.
void BuildEntityHeaders(CachedObject& obj) {
  obj.entity_headers = "Content-Length: ";
  obj.entity_headers += std::to_string(obj.entity_size());
  obj.entity_headers += "\r\nX-Nagano-Version: ";
  obj.entity_headers += std::to_string(obj.version);
  obj.entity_headers += "\r\n";
}

size_t SumPlanBytes(const std::vector<PlanChunk>& plan) {
  size_t n = 0;
  for (const PlanChunk& chunk : plan) n += chunk.bytes().size();
  return n;
}

}  // namespace

std::string CachedObject::Materialize() const {
  if (!is_plan()) return body;
  std::string out;
  out.reserve(plan_bytes);
  for (const PlanChunk& chunk : plan) out += chunk.bytes();
  return out;
}

Status ObjectCache::Options::Validate() const {
  if (shards == 0) {
    return InvalidArgumentError("ObjectCache::Options.shards must be >= 1");
  }
  return Status::Ok();
}

ObjectCache::ObjectCache(Options options)
    : capacity_bytes_(ValidateOrDie(options, "ObjectCache::Options")
                          .capacity_bytes),
      retain_stale_(options.retain_stale),
      clock_(options.clock ? options.clock : &RealClock::Instance()),
      faults_(options.faults) {
  const size_t n = options.shards;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());

  const auto scope = metrics::Scope::Resolve(options.metrics, "cache");
  instance_ = scope.labels.empty() ? std::string() : scope.labels[0].second;
  hits_ = scope.GetCounter("nagano_cache_hits_total", "cache lookups served");
  misses_ = scope.GetCounter("nagano_cache_misses_total", "cache lookups missed");
  inserts_ = scope.GetCounter("nagano_cache_inserts_total", "new entries stored");
  updates_ = scope.GetCounter("nagano_cache_updates_in_place_total",
                              "entries refreshed without invalidation");
  invalidations_ =
      scope.GetCounter("nagano_cache_invalidations_total", "entries dropped");
  evictions_ =
      scope.GetCounter("nagano_cache_evictions_total", "LRU evictions");
  plans_patched_ = scope.GetCounter(
      "nagano_cache_plans_patched_total",
      "composition plans refreshed by fragment swap (no page re-render)");
  entries_gauge_ = scope.GetGauge("nagano_cache_entries", "resident entries");
  bytes_gauge_ = scope.GetGauge("nagano_cache_bytes", "resident bytes");
}

ObjectCache::Shard& ObjectCache::ShardFor(std::string_view key) {
  return *shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

const ObjectCache::Shard& ObjectCache::ShardFor(std::string_view key) const {
  return *shards_[std::hash<std::string_view>{}(key) % shards_.size()];
}

std::shared_ptr<const CachedObject> ObjectCache::Lookup(std::string_view key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(std::string(key));
  if (it == shard.map.end() || it->second.object->stale) {
    misses_->Increment();
    return nullptr;
  }
  hits_->Increment();
  it->second.lru_tick = lru_clock_.fetch_add(1, std::memory_order_relaxed);
  return it->second.object;
}

Result<std::shared_ptr<const CachedObject>> ObjectCache::TryLookup(
    std::string_view key) {
  if (Status s = fault::Check(faults_, "cache", instance_, "lookup");
      !s.ok()) {
    return s;
  }
  if (auto hit = Lookup(key)) return hit;
  return NotFoundError("cache miss: " + std::string(key));
}

std::shared_ptr<const CachedObject> ObjectCache::LookupStale(
    std::string_view key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(std::string(key));
  return it == shard.map.end() ? nullptr : it->second.object;
}

std::shared_ptr<const CachedObject> ObjectCache::Peek(std::string_view key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(std::string(key));
  if (it == shard.map.end() || it->second.object->stale) return nullptr;
  return it->second.object;
}

uint64_t ObjectCache::Put(std::string_view key, std::string body) {
  auto obj = std::make_shared<CachedObject>();
  obj->body = std::move(body);
  return Store(key, std::move(obj));
}

uint64_t ObjectCache::PutPlan(std::string_view key,
                              std::vector<PlanChunk> plan) {
  auto obj = std::make_shared<CachedObject>();
  obj->plan = std::move(plan);
  obj->plan_bytes = SumPlanBytes(obj->plan);
  return Store(key, std::move(obj));
}

uint64_t ObjectCache::Store(std::string_view key,
                            std::shared_ptr<CachedObject> obj) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);

  std::string k(key);
  auto it = shard.map.find(k);
  uint64_t version = 1;
  if (it != shard.map.end()) {
    version = it->second.object->version + 1;
    const size_t old_footprint = EntryFootprint(k, *it->second.object);
    shard.bytes -= old_footprint;
    bytes_gauge_->Add(-static_cast<double>(old_footprint));
    if (it->second.object->stale) {
      // Revival: the entry was logically absent, so this is an insert.
      --shard.stale;
      inserts_->Increment();
      entries_gauge_->Add(1.0);
    } else {
      updates_->Increment();
    }
  } else {
    inserts_->Increment();
    entries_gauge_->Add(1.0);
  }

  obj->version = version;
  obj->stored_at = clock_->Now();
  BuildEntityHeaders(*obj);
  const size_t footprint = EntryFootprint(k, *obj);

  Entry& entry = shard.map[std::move(k)];
  entry.object = std::move(obj);
  entry.lru_tick = lru_clock_.fetch_add(1, std::memory_order_relaxed);
  shard.bytes += footprint;
  bytes_gauge_->Add(static_cast<double>(footprint));

  if (capacity_bytes_ != 0) {
    EvictLocked(shard, capacity_bytes_ / shards_.size());
  }
  return version;
}

uint64_t ObjectCache::PatchPlan(std::string_view key) {
  // Snapshot the current plan, then resolve fresh fragment pins with no
  // shard lock held — the fragments hash to arbitrary shards, and taking
  // two shard locks at once would need a global ordering.
  std::shared_ptr<const CachedObject> current = Peek(key);
  if (current == nullptr || !current->is_plan()) return 0;

  std::vector<std::shared_ptr<const CachedObject>> fresh(current->plan.size());
  for (size_t i = 0; i < current->plan.size(); ++i) {
    const PlanChunk& chunk = current->plan[i];
    if (!chunk.is_fragment()) continue;
    auto snapshot = Peek(chunk.fragment);
    // A retired (invalidated/evicted) or plan-shaped fragment means the
    // plan cannot be patched — the caller re-renders the whole page.
    if (snapshot == nullptr || snapshot->is_plan()) return 0;
    fresh[i] = std::move(snapshot);
  }

  auto obj = std::make_shared<CachedObject>();
  obj->plan = current->plan;
  for (size_t i = 0; i < obj->plan.size(); ++i) {
    if (fresh[i] == nullptr) continue;
    obj->plan[i].source = std::move(fresh[i]);
    obj->plan[i].fragment_version = obj->plan[i].source->version;
  }
  obj->plan_bytes = SumPlanBytes(obj->plan);
  obj->stored_at = clock_->Now();

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(std::string(key));
  // Compare object identity: if a concurrent Put/Invalidate replaced the
  // entry since the snapshot above, that writer wins and the patch aborts.
  if (it == shard.map.end() || it->second.object != current) return 0;

  obj->version = current->version + 1;
  BuildEntityHeaders(*obj);
  const size_t old_footprint = EntryFootprint(it->first, *current);
  const size_t new_footprint = EntryFootprint(it->first, *obj);
  shard.bytes += new_footprint;
  shard.bytes -= old_footprint;
  bytes_gauge_->Add(static_cast<double>(new_footprint) -
                    static_cast<double>(old_footprint));
  it->second.object = std::move(obj);
  it->second.lru_tick = lru_clock_.fetch_add(1, std::memory_order_relaxed);
  updates_->Increment();
  plans_patched_->Increment();
  if (capacity_bytes_ != 0) {
    EvictLocked(shard, capacity_bytes_ / shards_.size());
  }
  return current->version + 1;
}

uint64_t ObjectCache::UpdateInPlace(std::string_view key, std::string body) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(std::string(key));
  // Stale-retained counts as absent: a regeneration racing the
  // invalidation must not resurrect the entry as live.
  if (it == shard.map.end() || it->second.object->stale) return 0;

  const size_t old_footprint = EntryFootprint(it->first, *it->second.object);
  shard.bytes -= old_footprint;
  auto obj = std::make_shared<CachedObject>();
  obj->body = std::move(body);
  obj->version = it->second.object->version + 1;
  obj->stored_at = clock_->Now();
  BuildEntityHeaders(*obj);
  const uint64_t version = obj->version;
  const size_t new_footprint = EntryFootprint(it->first, *obj);
  shard.bytes += new_footprint;
  bytes_gauge_->Add(static_cast<double>(new_footprint) -
                    static_cast<double>(old_footprint));
  it->second.object = std::move(obj);
  it->second.lru_tick = lru_clock_.fetch_add(1, std::memory_order_relaxed);
  updates_->Increment();

  if (capacity_bytes_ != 0) {
    // May evict `it` itself when the grown body blows the budget.
    EvictLocked(shard, capacity_bytes_ / shards_.size());
  }
  return version;
}

void ObjectCache::Pin(std::string_view key, bool pinned) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(std::string(key));
  if (it != shard.map.end()) it->second.pinned = pinned;
}

bool ObjectCache::InvalidateLocked(
    Shard& shard, std::unordered_map<std::string, Entry>::iterator it) {
  if (it->second.object->stale) return false;  // already downgraded
  if (retain_stale_) {
    // Downgrade to last-known-good: same body and stored_at, marked stale.
    auto stale_copy = std::make_shared<CachedObject>(*it->second.object);
    stale_copy->stale = true;
    it->second.object = std::move(stale_copy);
    ++shard.stale;
  } else {
    const size_t footprint = EntryFootprint(it->first, *it->second.object);
    shard.bytes -= footprint;
    bytes_gauge_->Add(-static_cast<double>(footprint));
    shard.map.erase(it);
  }
  invalidations_->Increment();
  entries_gauge_->Add(-1.0);
  return true;
}

bool ObjectCache::Invalidate(std::string_view key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(std::string(key));
  if (it == shard.map.end()) return false;
  return InvalidateLocked(shard, it);
}

size_t ObjectCache::InvalidatePrefix(std::string_view prefix) {
  size_t removed = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      auto next = std::next(it);
      if (it->first.starts_with(prefix) && InvalidateLocked(shard, it)) {
        ++removed;
      }
      it = next;
    }
  }
  return removed;
}

void ObjectCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    entries_gauge_->Add(
        -static_cast<double>(shard.map.size() - shard.stale));
    bytes_gauge_->Add(-static_cast<double>(shard.bytes));
    shard.map.clear();
    shard.bytes = 0;
    shard.stale = 0;
  }
}

bool ObjectCache::Contains(std::string_view key) const {
  return Peek(key) != nullptr;
}

void ObjectCache::EvictLocked(Shard& shard, size_t budget) {
  while (shard.bytes > budget) {
    // Smallest lru_tick among unpinned entries. Linear scan: eviction never
    // fires in the paper configuration, so this path is cold by design.
    auto victim = shard.map.end();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      if (it->second.pinned) continue;
      if (victim == shard.map.end() ||
          it->second.lru_tick < victim->second.lru_tick) {
        victim = it;
      }
    }
    if (victim == shard.map.end()) return;  // everything pinned
    const size_t footprint =
        EntryFootprint(victim->first, *victim->second.object);
    const bool was_stale = victim->second.object->stale;
    shard.bytes -= footprint;
    shard.map.erase(victim);
    evictions_->Increment();
    // A stale retention already left the live-entry gauge at invalidation.
    if (was_stale) {
      --shard.stale;
    } else {
      entries_gauge_->Add(-1.0);
    }
    bytes_gauge_->Add(-static_cast<double>(footprint));
  }
}

CacheStats ObjectCache::stats() const {
  // Thin snapshot view over the registry cells; entries/bytes come from the
  // shard maps themselves so the legacy accessor stays exact.
  CacheStats total;
  total.hits = hits_->value();
  total.misses = misses_->value();
  total.inserts = inserts_->value();
  total.updates_in_place = updates_->value();
  total.invalidations = invalidations_->value();
  total.evictions = evictions_->value();
  total.plans_patched = plans_patched_->value();
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.entries += shard.map.size() - shard.stale;
    total.stale_entries += shard.stale;
    total.bytes += shard.bytes;
  }
  return total;
}

size_t ObjectCache::size() const { return stats().entries; }
size_t ObjectCache::bytes() const { return stats().bytes; }

std::vector<std::pair<std::string, std::shared_ptr<const CachedObject>>>
ObjectCache::Snapshot() const {
  std::vector<std::pair<std::string, std::shared_ptr<const CachedObject>>> out;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.reserve(out.size() + shard.map.size());
    for (const auto& [key, entry] : shard.map) {
      if (entry.object->stale) continue;  // consistency checks see live only
      out.emplace_back(key, entry.object);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace nagano::cache
