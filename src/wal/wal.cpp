#include "wal/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>

#include "common/crc32c.h"

namespace nagano::wal {
namespace {

constexpr char kSegmentMagic[8] = {'N', 'A', 'G', 'W', 'A', 'L', '0', '1'};
constexpr char kCkptMagic[8] = {'N', 'A', 'G', 'C', 'K', 'P', 'T', '1'};
constexpr size_t kMagicLen = 8;
// u32 payload_len | u32 crc | u64 lsn | u64 seqno
constexpr size_t kFrameHeader = 4 + 4 + 8 + 8;
// Far beyond any real record; a length above this means a torn/garbage
// header, not a huge payload.
constexpr uint32_t kMaxPayload = 64u * 1024 * 1024;

void PutLE32(char* p, uint32_t v) {
  p[0] = static_cast<char>(v & 0xFF);
  p[1] = static_cast<char>((v >> 8) & 0xFF);
  p[2] = static_cast<char>((v >> 16) & 0xFF);
  p[3] = static_cast<char>((v >> 24) & 0xFF);
}

void PutLE64(char* p, uint64_t v) {
  PutLE32(p, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutLE32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t GetLE32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t GetLE64(const char* p) {
  return static_cast<uint64_t>(GetLE32(p)) |
         (static_cast<uint64_t>(GetLE32(p + 4)) << 32);
}

Status ErrnoError(std::string what) {
  return UnavailableError(std::move(what) + ": " + std::strerror(errno));
}

// fsync the directory so created/renamed/unlinked entries are durable.
Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("open dir " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoError("fsync dir " + dir);
  return Status::Ok();
}

Result<std::string> ReadWholeFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("open " + path);
  std::string data;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoError("read " + path);
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

// Parses "wal-%016x.seg" / "ckpt-%016x.img"; nullopt for foreign names.
std::optional<uint64_t> ParseHexName(std::string_view name,
                                     std::string_view prefix,
                                     std::string_view suffix) {
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(prefix.size() + 16) != suffix) return std::nullopt;
  uint64_t v = 0;
  for (char c : name.substr(prefix.size(), 16)) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<uint64_t>(c - 'a' + 10);
    else return std::nullopt;
  }
  return v;
}

std::vector<std::pair<uint64_t, std::string>> ListByPrefix(
    const std::string& dir, std::string_view prefix, std::string_view suffix) {
  std::vector<std::pair<uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (auto v = ParseHexName(name, prefix, suffix)) {
      out.emplace_back(*v, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct FrameView {
  uint64_t lsn = 0;
  uint64_t seqno = 0;
  std::string_view payload;
  size_t frame_bytes = 0;  // header + payload
};

// Parses the frame at data[off..]; nullopt means torn/invalid (the caller
// truncates there).
std::optional<FrameView> ParseFrame(std::string_view data, size_t off) {
  if (data.size() - off < kFrameHeader) return std::nullopt;
  const char* p = data.data() + off;
  const uint32_t len = GetLE32(p);
  if (len > kMaxPayload) return std::nullopt;
  if (data.size() - off - kFrameHeader < len) return std::nullopt;
  const uint32_t crc = GetLE32(p + 4);
  // CRC covers [lsn, seqno, payload] — the bytes right after the crc field.
  if (Crc32cExtend(0, p + 8, 16 + len) != crc) return std::nullopt;
  FrameView f;
  f.lsn = GetLE64(p + 8);
  f.seqno = GetLE64(p + 16);
  f.payload = data.substr(off + kFrameHeader, len);
  f.frame_bytes = kFrameHeader + len;
  return f;
}

}  // namespace

// --- codec ------------------------------------------------------------------

void Encoder::PutU32(uint32_t v) {
  char buf[4];
  PutLE32(buf, v);
  out_.append(buf, sizeof(buf));
}

void Encoder::PutU64(uint64_t v) {
  char buf[8];
  PutLE64(buf, v);
  out_.append(buf, sizeof(buf));
}

void Encoder::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

bool Decoder::Need(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t Decoder::GetU8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t Decoder::GetU32() {
  if (!Need(4)) return 0;
  const uint32_t v = GetLE32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

uint64_t Decoder::GetU64() {
  if (!Need(8)) return 0;
  const uint64_t v = GetLE64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

double Decoder::GetDouble() {
  const uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Decoder::GetString() {
  const uint32_t len = GetU32();
  if (!Need(len)) return {};
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

// --- options ----------------------------------------------------------------

std::string_view SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kPerCommit: return "per-commit";
    case SyncPolicy::kGroupCommit: return "group-commit";
  }
  return "?";
}

Status WalOptions::Validate() const {
  if (dir.empty()) return InvalidArgumentError("WalOptions: dir is empty");
  if (segment_bytes < kMagicLen + kFrameHeader) {
    return InvalidArgumentError("WalOptions: segment_bytes too small");
  }
  if (sync_policy == SyncPolicy::kGroupCommit && group_commit_interval < 0) {
    return InvalidArgumentError(
        "WalOptions: group_commit_interval must be >= 0");
  }
  return Status::Ok();
}

// --- the log ----------------------------------------------------------------

WriteAheadLog::WriteAheadLog(WalOptions options)
    : options_(std::move(options)),
      clock_(options_.clock ? options_.clock : &RealClock::Instance()),
      faults_(options_.faults) {
  const auto scope = metrics::Scope::Resolve(options_.metrics, "wal");
  instance_ = scope.labels.empty() ? std::string() : scope.labels[0].second;
  appends_ = scope.GetCounter("nagano_wal_appends_total",
                              "records appended to the write-ahead log");
  fsyncs_ = scope.GetCounter("nagano_wal_fsyncs_total",
                             "fsync calls on WAL segments");
  bytes_ = scope.GetCounter("nagano_wal_bytes_total",
                            "bytes appended to the write-ahead log");
  checkpoints_ = scope.GetCounter("nagano_wal_checkpoints_total",
                                  "checkpoint images written");
  segments_created_ = scope.GetCounter("nagano_wal_segments_created_total",
                                       "WAL segment files created");
  segments_deleted_ = scope.GetCounter("nagano_wal_segments_deleted_total",
                                       "WAL segment files retired");
  torn_tails_ = scope.GetCounter(
      "nagano_wal_torn_tails_total",
      "torn frames truncated from the log tail at open");
}

WriteAheadLog::~WriteAheadLog() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    if (dirty_ && !wedged_) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(WalOptions options) {
  if (Status s = options.Validate(); !s.ok()) return s;
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return UnavailableError("WAL: cannot create dir " + options.dir + ": " +
                            ec.message());
  }
  auto log = std::unique_ptr<WriteAheadLog>(new WriteAheadLog(std::move(options)));
  std::unique_lock<std::mutex> lock(log->mutex_);
  if (Status s = log->ScanExistingLocked(); !s.ok()) return s;
  if (Status s = log->OpenActiveLocked(); !s.ok()) return s;
  log->last_sync_ = log->clock_->Now();
  lock.unlock();
  return log;
}

std::string WriteAheadLog::SegmentPath(uint64_t first_lsn) const {
  char name[48];
  std::snprintf(name, sizeof(name), "wal-%016" PRIx64 ".seg", first_lsn);
  return options_.dir + "/" + name;
}

std::string WriteAheadLog::CheckpointPath(uint64_t seqno) const {
  char name[48];
  std::snprintf(name, sizeof(name), "ckpt-%016" PRIx64 ".img", seqno);
  return options_.dir + "/" + name;
}

// Walks every segment in LSN order, validating magic, CRC and dense LSN
// continuity; the log is truncated at the first torn frame and any later
// segments are deleted — recovery state is exactly the longest fully
// committed prefix.
Status WriteAheadLog::ScanExistingLocked() {
  const auto files = ListByPrefix(options_.dir, "wal-", ".seg");
  // Older segments may have been retired by TruncateThrough, so numbering
  // picks up wherever the oldest surviving segment starts.
  if (!files.empty()) next_lsn_ = files.front().first;
  bool torn = false;
  for (size_t i = 0; i < files.size(); ++i) {
    const auto& [first_lsn, path] = files[i];
    if (torn) {
      // Everything after a torn frame was never acknowledged; drop it.
      std::error_code ec;
      const auto sz = std::filesystem::file_size(path, ec);
      if (!ec) torn_bytes_ += sz;
      std::filesystem::remove(path, ec);
      segments_deleted_->Increment();
      continue;
    }
    auto data_or = ReadWholeFile(path);
    if (!data_or.ok()) return data_or.status();
    const std::string& data = data_or.value();

    Segment seg;
    seg.path = path;
    seg.first_lsn = first_lsn;
    size_t valid = 0;
    if (data.size() >= kMagicLen &&
        std::memcmp(data.data(), kSegmentMagic, kMagicLen) == 0 &&
        first_lsn == next_lsn_) {
      valid = kMagicLen;
      size_t off = kMagicLen;
      while (off < data.size()) {
        auto frame = ParseFrame(data, off);
        if (!frame || frame->lsn != next_lsn_ ||
            frame->seqno < last_seqno_) {
          break;
        }
        next_lsn_ = frame->lsn + 1;
        last_seqno_ = frame->seqno;
        seg.max_seqno = frame->seqno;
        seg.empty = false;
        off += frame->frame_bytes;
        valid = off;
      }
    } else if (first_lsn != next_lsn_) {
      // A hole in the segment sequence (manual deletion / foreign file):
      // refuse rather than silently replay a gapped log.
      return DataLossError("WAL: segment " + path + " breaks LSN continuity");
    }

    if (valid < data.size() || valid == 0) {
      torn = true;
      torn_tails_->Increment();
      torn_bytes_ += data.size() - valid;
      if (valid == 0) {
        // Even the magic was torn; the file holds nothing committed.
        std::error_code ec;
        std::filesystem::remove(path, ec);
        segments_deleted_->Increment();
        continue;
      }
      if (::truncate(path.c_str(), static_cast<off_t>(valid)) != 0) {
        return ErrnoError("WAL: truncate torn tail of " + path);
      }
    }
    seg.bytes = valid;
    segments_.push_back(std::move(seg));
  }
  return Status::Ok();
}

Status WriteAheadLog::OpenActiveLocked() {
  if (segments_.empty()) {
    return RotateLocked();  // creates wal-<next_lsn_>.seg
  }
  const std::string& path = segments_.back().path;
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) return ErrnoError("WAL: reopen " + path);
  return Status::Ok();
}

// Seals the active segment (fsync + close) and starts a fresh one named by
// the next LSN.
Status WriteAheadLog::RotateLocked() {
  if (fd_ >= 0) {
    if (Status s = FsyncLocked(); !s.ok()) return s;
    ::close(fd_);
    fd_ = -1;
  }
  Segment seg;
  seg.first_lsn = next_lsn_;
  seg.path = SegmentPath(next_lsn_);
  fd_ = ::open(seg.path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd_ < 0) return ErrnoError("WAL: create " + seg.path);
  if (Status s = WriteAllLocked(kSegmentMagic, kMagicLen); !s.ok()) return s;
  seg.bytes = kMagicLen;
  segments_.push_back(std::move(seg));
  segments_created_->Increment();
  dirty_ = true;
  return SyncDir(options_.dir);
}

Status WriteAheadLog::WriteAllLocked(const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd_, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("WAL: write");
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status WriteAheadLog::FsyncLocked() {
  if (Status s = fault::Check(faults_, "wal", instance_, "fsync"); !s.ok()) {
    return s;
  }
  if (fd_ >= 0 && dirty_) {
    if (::fsync(fd_) != 0) return ErrnoError("WAL: fsync");
    fsyncs_->Increment();
    dirty_ = false;
    last_sync_ = clock_->Now();
  }
  return Status::Ok();
}

Status WriteAheadLog::Append(uint64_t seqno, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wedged_) {
    return FailedPreconditionError(
        "WAL: wedged by an injected torn append; reopen to recover");
  }
  if (seqno < last_seqno_) {
    return InvalidArgumentError("WAL: seqno watermark went backwards");
  }
  const size_t frame_bytes = kFrameHeader + payload.size();
  if (!segments_.back().empty &&
      segments_.back().bytes + frame_bytes > options_.segment_bytes) {
    if (Status s = RotateLocked(); !s.ok()) return s;
  }

  const uint64_t lsn = next_lsn_;
  std::string frame(frame_bytes, '\0');
  PutLE32(frame.data(), static_cast<uint32_t>(payload.size()));
  PutLE64(frame.data() + 8, lsn);
  PutLE64(frame.data() + 16, seqno);
  std::memcpy(frame.data() + kFrameHeader, payload.data(), payload.size());
  PutLE32(frame.data() + 4,
          Crc32cExtend(0, frame.data() + 8, 16 + payload.size()));

  if (Status s = fault::Check(faults_, "wal", instance_, "append"); !s.ok()) {
    // Model a crash mid-write: leave a genuinely torn frame on disk (header
    // plus a prefix of the payload — short of what the header promises) and
    // wedge the log. Only a reopen (which truncates the tear) recovers.
    const size_t partial =
        payload.empty() ? kFrameHeader / 2 : kFrameHeader + payload.size() / 2;
    (void)WriteAllLocked(frame.data(), partial);
    wedged_ = true;
    dirty_ = true;
    return s;
  }

  if (Status s = WriteAllLocked(frame.data(), frame.size()); !s.ok()) return s;
  next_lsn_ = lsn + 1;
  last_seqno_ = seqno;
  Segment& active = segments_.back();
  active.bytes += frame.size();
  active.max_seqno = seqno;
  active.empty = false;
  dirty_ = true;
  appends_->Increment();
  bytes_->Increment(frame.size());

  switch (options_.sync_policy) {
    case SyncPolicy::kPerCommit:
      return FsyncLocked();
    case SyncPolicy::kGroupCommit:
      if (clock_->Now() - last_sync_ >= options_.group_commit_interval) {
        return FsyncLocked();
      }
      return Status::Ok();
  }
  return Status::Ok();
}

Status WriteAheadLog::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wedged_) {
    return FailedPreconditionError("WAL: wedged; reopen to recover");
  }
  return FsyncLocked();
}

Status WriteAheadLog::Replay(
    uint64_t after_lsn,
    const std::function<Status(uint64_t, uint64_t, std::string_view)>& apply) {
  // Snapshot the segment list under the lock, then read files without it:
  // segments are append-only and replay happens before serving starts.
  std::vector<std::string> paths;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& seg : segments_) paths.push_back(seg.path);
  }
  for (const auto& path : paths) {
    auto data_or = ReadWholeFile(path);
    if (!data_or.ok()) return data_or.status();
    const std::string& data = data_or.value();
    size_t off = kMagicLen;
    while (off < data.size()) {
      auto frame = ParseFrame(data, off);
      if (!frame) {
        return DataLossError("WAL: torn frame during replay in " + path);
      }
      if (frame->lsn > after_lsn) {
        if (Status s = apply(frame->lsn, frame->seqno, frame->payload);
            !s.ok()) {
          return s;
        }
      }
      off += frame->frame_bytes;
    }
  }
  return Status::Ok();
}

Status WriteAheadLog::WriteCheckpoint(uint64_t seqno, std::string_view image) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wedged_) {
    return FailedPreconditionError("WAL: wedged; reopen to recover");
  }
  // The image must cover every frame already appended, so sync them first:
  // a checkpoint that outlives its log prefix would silently lose the
  // unsynced tail it claims to cover.
  if (Status s = FsyncLocked(); !s.ok()) return s;

  const uint64_t lsn = next_lsn_ - 1;
  std::string blob;
  blob.reserve(kMagicLen + kFrameHeader + image.size());
  blob.append(kCkptMagic, kMagicLen);
  char header[kFrameHeader];
  PutLE32(header, static_cast<uint32_t>(image.size()));
  PutLE64(header + 8, lsn);
  PutLE64(header + 16, seqno);
  uint32_t crc = Crc32cExtend(0, header + 8, 16);
  crc = Crc32cExtend(crc, image.data(), image.size());
  PutLE32(header + 4, crc);
  blob.append(header, kFrameHeader);
  blob.append(image);

  const std::string path = CheckpointPath(seqno);
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoError("WAL: create " + tmp);
  size_t n = blob.size();
  const char* p = blob.data();
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoError("WAL: write " + tmp);
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoError("WAL: fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoError("WAL: rename " + tmp);
  }
  if (Status s = SyncDir(options_.dir); !s.ok()) return s;
  checkpoints_->Increment();
  return Status::Ok();
}

Result<CheckpointImage> WriteAheadLog::ReadLatestCheckpoint() {
  auto files = ListByPrefix(options_.dir, "ckpt-", ".img");
  // Newest first; fall back on corruption.
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    auto data_or = ReadWholeFile(it->second);
    if (!data_or.ok()) continue;
    const std::string& data = data_or.value();
    if (data.size() < kMagicLen + kFrameHeader ||
        std::memcmp(data.data(), kCkptMagic, kMagicLen) != 0) {
      continue;
    }
    const char* h = data.data() + kMagicLen;
    const uint32_t len = GetLE32(h);
    if (data.size() - kMagicLen - kFrameHeader != len) continue;
    uint32_t crc = Crc32cExtend(0, h + 8, 16);
    crc = Crc32cExtend(crc, h + kFrameHeader, len);
    if (crc != GetLE32(h + 4)) continue;
    CheckpointImage img;
    img.lsn = GetLE64(h + 8);
    img.seqno = GetLE64(h + 16);
    img.image.assign(h + kFrameHeader, len);
    return img;
  }
  return NotFoundError("WAL: no valid checkpoint in " + options_.dir);
}

Result<size_t> WriteAheadLog::TruncateThrough(uint64_t through_seqno) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Status s = fault::Check(faults_, "wal", instance_, "truncate"); !s.ok()) {
    return s;
  }
  size_t deleted = 0;
  // Sealed segments only (back() is active); a segment is retirable when
  // every record it holds is covered by the checkpoint watermark.
  while (segments_.size() > 1 && !segments_.front().empty &&
         segments_.front().max_seqno <= through_seqno) {
    std::error_code ec;
    std::filesystem::remove(segments_.front().path, ec);
    if (ec) {
      return UnavailableError("WAL: remove " + segments_.front().path + ": " +
                              ec.message());
    }
    segments_.erase(segments_.begin());
    segments_deleted_->Increment();
    ++deleted;
  }
  // Keep the two newest checkpoint images: the newest, plus one fallback in
  // case the newest turns out unreadable on the next open.
  auto ckpts = ListByPrefix(options_.dir, "ckpt-", ".img");
  while (ckpts.size() > 2) {
    std::error_code ec;
    std::filesystem::remove(ckpts.front().second, ec);
    if (!ec) ++deleted;
    ckpts.erase(ckpts.begin());
  }
  if (deleted > 0) {
    if (Status s = SyncDir(options_.dir); !s.ok()) return s;
  }
  return deleted;
}

uint64_t WriteAheadLog::last_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_lsn_ - 1;
}

uint64_t WriteAheadLog::last_seqno() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_seqno_;
}

uint64_t WriteAheadLog::torn_bytes_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return torn_bytes_;
}

WalStats WriteAheadLog::stats() const {
  WalStats s;
  s.appends = appends_->value();
  s.fsyncs = fsyncs_->value();
  s.bytes_appended = bytes_->value();
  s.checkpoints = checkpoints_->value();
  s.segments_created = segments_created_->value();
  s.segments_deleted = segments_deleted_->value();
  s.torn_tails = torn_tails_->value();
  std::lock_guard<std::mutex> lock(mutex_);
  s.torn_bytes_dropped = torn_bytes_;
  return s;
}

std::vector<std::string> WriteAheadLog::SegmentFiles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& seg : segments_) {
    out.push_back(std::filesystem::path(seg.path).filename().string());
  }
  return out;
}

Result<ShardWalSet> OpenShardWals(WalOptions base, size_t shards) {
  if (shards == 0) {
    return InvalidArgumentError("OpenShardWals: shards must be >= 1");
  }
  ShardWalSet set;
  set.wals.reserve(shards);
  for (size_t k = 0; k < shards; ++k) {
    WalOptions stream = base;
    stream.dir = base.dir + "/shard-" + std::to_string(k);
    if (!stream.metrics.instance.empty()) {
      stream.metrics.instance = base.metrics.instance + "/s" + std::to_string(k);
    }
    auto wal = WriteAheadLog::Open(std::move(stream));
    if (!wal.ok()) return wal.status();
    set.wals.push_back(std::move(wal).value());
  }
  return set;
}

}  // namespace nagano::wal
