// nagano::wal — durable, segmented, append-only write-ahead log with
// checkpoint images (ISSUE 4 tentpole).
//
// The paper's availability story rests on a durable DB2 tier behind the
// caches: a failed complex catches up from the database and rejoins
// serving. Our in-memory nagano::db stand-in loses everything on process
// death; this module is the durability floor beneath it. The database
// appends every commit here *before* making it visible, periodically
// writes a checkpoint (full table image + last applied seqno), and on
// restart rebuilds itself from checkpoint + log tail — the classic
// ARIES-shaped contract, reduced to redo-only because nagano commits are
// single-record and never abort.
//
// On-disk layout (all integers little-endian):
//
//   <dir>/wal-%016x.seg       segments, named by the first LSN they hold
//   <dir>/ckpt-%016x.img      checkpoint images, named by their seqno
//
//   segment  := "NAGWAL01" frame*
//   frame    := u32 payload_len | u32 crc | u64 lsn | u64 seqno | payload
//   ckpt     := "NAGCKPT1" | u32 image_len | u32 crc | u64 lsn | u64 seqno
//               | image
//
// `crc` is CRC32C over [lsn, seqno, payload]. LSNs are the WAL's own dense
// frame numbering (schema records share the committed seqno watermark, so
// seqnos alone cannot order frames); `seqno` is the database watermark the
// frame carries, which drives retention truncation.
//
// Crash semantics: Open() scans every segment in order and truncates the
// log at the first torn frame (short header, impossible length, CRC
// mismatch, or LSN discontinuity), deleting any later segments — recovery
// always equals the longest fully committed prefix, never a torn or
// reordered state. Checkpoints are written to a temp file and renamed into
// place, so a torn checkpoint is simply ignored in favour of the previous
// one.
//
// Fault injection ({"wal", <instance>, op}): "append" kError models a
// crash mid-write — the frame is half-written (a real torn tail) and the
// log wedges until reopened; "fsync" kError fails the sync; "truncate"
// kError fails segment retirement.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"

namespace nagano::wal {

// --- binary payload codec ---------------------------------------------------
// Little-endian writer/reader used for WAL payloads and checkpoint images
// (the db-level record encodings live next to the Database).

class Encoder {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  // u32 length prefix + bytes.
  void PutString(std::string_view s);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

// Reader with sticky failure: any short read flips ok() false and every
// later Get returns zero/empty, so decode loops need one check at the end.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetDouble();
  std::string GetString();

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- the log ----------------------------------------------------------------

enum class SyncPolicy : uint8_t {
  kPerCommit,    // fsync after every append — durability to the last commit
  kGroupCommit,  // fsync at most once per group_commit_interval; a crash can
                 // lose the unsynced tail but never tears committed frames
};

std::string_view SyncPolicyName(SyncPolicy policy);

struct WalOptions : OptionsBase {
  std::string dir;                      // created if absent
  size_t segment_bytes = 4 * 1024 * 1024;
  SyncPolicy sync_policy = SyncPolicy::kPerCommit;
  TimeNs group_commit_interval = FromMillis(5);
  const Clock* clock = nullptr;         // times group commit; nullptr = RealClock
  // Consulted on Append ({"wal", <instance>, "append"}), fsync ("fsync")
  // and segment retirement ("truncate"). Null = injection off.
  fault::FaultInjector* faults = nullptr;
  metrics::Options metrics;

  Status Validate() const;
};

// Counter snapshot (also exported as nagano_wal_*_total).
struct WalStats {
  uint64_t appends = 0;
  uint64_t fsyncs = 0;
  uint64_t bytes_appended = 0;
  uint64_t checkpoints = 0;
  uint64_t segments_created = 0;
  uint64_t segments_deleted = 0;
  uint64_t torn_tails = 0;        // torn frames truncated at Open
  uint64_t torn_bytes_dropped = 0;
};

struct CheckpointImage {
  uint64_t seqno = 0;  // last applied change covered by the image
  uint64_t lsn = 0;    // last WAL frame covered; replay resumes after it
  std::string image;
};

class WriteAheadLog {
 public:
  // Opens (or creates) the log in options.dir: scans existing segments,
  // truncates any torn tail, and positions appends after the last fully
  // committed frame.
  static Result<std::unique_ptr<WriteAheadLog>> Open(WalOptions options);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Durably appends one record. `seqno` is the database watermark the
  // record carries (monotone non-decreasing). Under kPerCommit the frame
  // is fsynced before returning; under kGroupCommit it is synced when the
  // interval elapses (or on Sync()/rotation/checkpoint). An injected
  // append fault leaves a genuinely torn frame on disk and wedges the log
  // — the in-process stand-in for dying mid-write.
  Status Append(uint64_t seqno, std::string_view payload);

  // Forces an fsync of the active segment (group-commit flush).
  Status Sync();

  // Replays every committed frame with lsn > after_lsn, in LSN order.
  // Stops and returns the callback's first error.
  Status Replay(uint64_t after_lsn,
                const std::function<Status(uint64_t lsn, uint64_t seqno,
                                           std::string_view payload)>& apply);

  // Atomically writes a checkpoint image covering everything appended so
  // far (temp file + rename + dir sync). The recorded LSN is the current
  // last_lsn(): callers serialize their state, then call this, without
  // interleaved appends.
  Status WriteCheckpoint(uint64_t seqno, std::string_view image);

  // Newest checkpoint that parses and passes its CRC; torn or corrupt
  // images are skipped in favour of older ones. kNotFound when none.
  Result<CheckpointImage> ReadLatestCheckpoint();

  // Retires sealed segments whose every record has seqno <= through, and
  // all but the two newest checkpoint images. Returns files deleted.
  Result<size_t> TruncateThrough(uint64_t through_seqno);

  uint64_t last_lsn() const;
  uint64_t last_seqno() const;
  // Bytes dropped from the tail when Open() found a torn frame.
  uint64_t torn_bytes_dropped() const;
  WalStats stats() const;
  // Segment file names currently on disk, oldest first (for tests/statusz).
  std::vector<std::string> SegmentFiles() const;
  const WalOptions& options() const { return options_; }

 private:
  struct Segment {
    std::string path;
    uint64_t first_lsn = 0;   // lsn the segment starts at (== its name)
    uint64_t max_seqno = 0;   // highest watermark it holds
    size_t bytes = 0;
    bool empty = true;
  };

  explicit WriteAheadLog(WalOptions options);

  Status ScanExistingLocked();
  Status OpenActiveLocked();
  Status RotateLocked();
  Status FsyncLocked();
  Status WriteAllLocked(const void* data, size_t n);
  std::string SegmentPath(uint64_t first_lsn) const;
  std::string CheckpointPath(uint64_t seqno) const;

  WalOptions options_;
  const Clock* clock_;
  fault::FaultInjector* faults_;
  std::string instance_;  // fault-injection site name (== metrics label)

  mutable std::mutex mutex_;
  std::vector<Segment> segments_;  // oldest first; back() is active
  int fd_ = -1;                    // active segment
  uint64_t next_lsn_ = 1;
  uint64_t last_seqno_ = 0;
  TimeNs last_sync_ = 0;
  bool dirty_ = false;    // unsynced bytes in the active segment
  bool wedged_ = false;   // torn append injected; reopen to recover
  uint64_t torn_bytes_ = 0;

  metrics::Counter* appends_;
  metrics::Counter* fsyncs_;
  metrics::Counter* bytes_;
  metrics::Counter* checkpoints_;
  metrics::Counter* segments_created_;
  metrics::Counter* segments_deleted_;
  metrics::Counter* torn_tails_;
};

// --- sharded stream set -----------------------------------------------------

// One WAL stream per database shard, opened under a common root:
// <base.dir>/shard-<k>/. Each stream is independent — its own segments,
// checkpoints, fsync schedule, and fault-injection instance
// ("<base instance>/s<k>"), so a torn tail or injected fault wedges one
// shard's stream without touching its siblings.
struct ShardWalSet {
  std::vector<std::unique_ptr<WriteAheadLog>> wals;

  // Borrowed pointers in shard order, shaped for DatabaseOptions.shard_wals.
  std::vector<WriteAheadLog*> pointers() const {
    std::vector<WriteAheadLog*> out;
    out.reserve(wals.size());
    for (const auto& w : wals) out.push_back(w.get());
    return out;
  }
};

Result<ShardWalSet> OpenShardWals(WalOptions base, size_t shards);

}  // namespace nagano::wal
