#include "workload/feed.h"

#include <algorithm>

namespace nagano::workload {
namespace {

using db::Row;
using pagegen::OlympicSite;

int64_t AsInt(const db::Value& v) { return std::get<int64_t>(v); }

}  // namespace

ResultFeed::ResultFeed(db::Database* db, FeedOptions options, uint64_t seed)
    : db_(db), options_(options), rng_(seed) {}

std::vector<FeedUpdate> ResultFeed::BuildDaySchedule(int day) {
  std::vector<FeedUpdate> schedule;

  auto events = db_->Lookup("events", "day", db::Value(int64_t(day)));

  for (const Row& event : events) {
    const int64_t event_id = AsInt(event[0]);
    const int64_t sport_id = AsInt(event[1]);

    // Field: athletes of this sport, shuffled deterministically.
    auto field = db_->Lookup("athletes", "sport_id", db::Value(sport_id));
    if (field.size() < 3) continue;
    for (size_t i = field.size(); i > 1; --i) {
      std::swap(field[i - 1], field[rng_.NextBelow(i)]);
    }
    const int finishers =
        std::min<int>(options_.results_per_event, static_cast<int>(field.size()));

    // The event occupies a window starting at a staggered offset.
    const TimeNs start =
        options_.first_event_offset +
        static_cast<TimeNs>(rng_.NextBelow(8)) * (options_.event_window / 2);

    for (int rank = 1; rank <= finishers; ++rank) {
      FeedUpdate u;
      u.kind = FeedUpdate::Kind::kResult;
      u.at = start + (rank * options_.event_window) / (finishers + 1);
      u.event_id = event_id;
      u.rank = rank;
      u.athlete_id = AsInt(field[static_cast<size_t>(rank - 1)][0]);
      // Descending scores so rank order matches score order.
      u.score = 100.0 - rank + rng_.NextDouble();
      schedule.push_back(std::move(u));
    }

    FeedUpdate done;
    done.kind = FeedUpdate::Kind::kCompleteEvent;
    done.at = start + options_.event_window + kMinute;
    done.event_id = event_id;
    schedule.push_back(std::move(done));

    // The photo desk classifies shots shortly after the finish.
    for (int ph = 0; ph < options_.photos_per_event; ++ph) {
      FeedUpdate photo;
      photo.kind = FeedUpdate::Kind::kPhoto;
      photo.at = done.at + (ph + 1) * 5 * kMinute;
      photo.event_id = event_id;
      photo.photo_id = next_photo_id_++;
      photo.title = "Event " + std::to_string(event_id) + " photo " +
                    std::to_string(ph + 1);
      schedule.push_back(std::move(photo));
    }
  }

  for (int n = 0; n < options_.news_per_day; ++n) {
    FeedUpdate u;
    u.kind = FeedUpdate::Kind::kNews;
    u.at = options_.first_event_offset +
           static_cast<TimeNs>(rng_.NextBelow(10)) * kHour;
    u.article_id = next_article_id_++;
    u.title = "Day " + std::to_string(day) + " report #" + std::to_string(n + 1);
    schedule.push_back(std::move(u));
  }

  std::sort(schedule.begin(), schedule.end(),
            [](const FeedUpdate& a, const FeedUpdate& b) { return a.at < b.at; });
  return schedule;
}

Status ResultFeed::Apply(const FeedUpdate& update) {
  switch (update.kind) {
    case FeedUpdate::Kind::kResult:
      return OlympicSite::RecordResult(db_, update.event_id, update.rank,
                                       update.athlete_id, update.score);
    case FeedUpdate::Kind::kCompleteEvent:
      return OlympicSite::CompleteEvent(db_, update.event_id);
    case FeedUpdate::Kind::kPhoto:
      return OlympicSite::PublishPhoto(
          db_, update.photo_id, update.title, "event",
          std::to_string(update.event_id),
          /*day=*/static_cast<int>(update.at / kDay) + 1);
    case FeedUpdate::Kind::kNews:
      return OlympicSite::PublishNews(
          db_, update.article_id,
          /*day=*/static_cast<int>(update.at / kDay) + 1, update.title,
          "Filed from Nagano: " + update.title, /*sport_id=*/1);
  }
  return InternalError("unknown feed update kind");
}

Result<size_t> ResultFeed::RunDay(int day) {
  size_t applied = 0;
  for (const FeedUpdate& update : BuildDaySchedule(day)) {
    if (Status s = Apply(update); !s.ok()) return s;
    ++applied;
  }
  return applied;
}

}  // namespace nagano::workload
