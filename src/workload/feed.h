// The result feed — scoring-system updates flowing into the master
// database (paper Fig. 4).
//
// For each event scheduled on a day, the feed emits a burst of result rows
// (competitors finishing) over a window, then a CompleteEvent that awards
// medals, flips the event final, and bumps country tallies — the update
// whose DUP fan-out touches day-home, sport, event, athlete, country and
// medal pages at once. Interleaved news publications model the editorial
// desk. The schedule is deterministic from a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "db/database.h"
#include "pagegen/olympic.h"

namespace nagano::workload {

struct FeedUpdate {
  enum class Kind : uint8_t { kResult, kCompleteEvent, kNews, kPhoto };
  TimeNs at = 0;  // offset from the day's start
  Kind kind = Kind::kResult;
  int64_t event_id = 0;
  int64_t rank = 0;
  int64_t athlete_id = 0;
  double score = 0.0;
  int64_t article_id = 0;
  std::string title;
  int64_t photo_id = 0;  // kPhoto: classified to event_id
};

struct FeedOptions {
  // Results per event (the paper's events had fields of 10-70).
  int results_per_event = 10;
  // Window within the day over which an event's results arrive.
  TimeNs event_window = 2 * kHour;
  // News articles published per day.
  int news_per_day = 6;
  // Photographs classified per event (attached shortly after completion).
  int photos_per_event = 2;
  // Events begin after this offset into the day.
  TimeNs first_event_offset = 9 * kHour;
};

class ResultFeed {
 public:
  ResultFeed(db::Database* db, FeedOptions options, uint64_t seed);

  // Builds the deterministic update schedule for `day` from the events
  // table. Times are offsets from the day's start, sorted ascending.
  std::vector<FeedUpdate> BuildDaySchedule(int day);

  // Applies one update to the database (master side).
  Status Apply(const FeedUpdate& update);

  // Convenience: build and apply a whole day's schedule immediately.
  // Returns the number of updates applied.
  Result<size_t> RunDay(int day);

  int64_t next_article_id() const { return next_article_id_; }

 private:
  db::Database* db_;
  FeedOptions options_;
  Rng rng_;
  int64_t next_article_id_ = 1000;  // above the pre-seeded articles
  int64_t next_photo_id_ = 1;
};

}  // namespace nagano::workload
