// Page-popularity sampler over the Olympic site.
//
// §3.1: "over 25% of the users found the information they were looking for
// by examining the home page for the current day"; the hot set is the
// current day's home page, the day's events, the medal standings and the
// latest news, with a long Zipf tail over athletes, countries and archive
// pages. The sampler draws page names for the cache and cluster benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "pagegen/olympic.h"

namespace nagano::workload {

struct SamplerOptions {
  // Category shares; normalized internally. Calibrated to the 1998 design:
  // the day-home page front-loads results/news/medals.
  double day_home = 0.26;
  double event_pages = 0.24;
  double athlete_pages = 0.12;
  double sport_pages = 0.09;
  double country_pages = 0.07;
  double medals_page = 0.07;
  double news_pages = 0.08;
  double schedule_pages = 0.03;
  double welcome_page = 0.04;

  // Zipf skew inside each category (hot events dominate).
  double zipf_skew = 1.1;

  // Bias toward the current day: probability that an event/page pick comes
  // from today's programme rather than the archive.
  double today_bias = 0.7;

  // Share of traffic on the default-language pages; the rest spreads
  // evenly over the other configured languages (the 1998 site served a
  // large Japanese audience on the /ja tree).
  double default_language_share = 0.70;
  // Share of news-page traffic that requests the French edition.
  double french_news_share = 0.05;
};

class PageSampler {
 public:
  // Snapshot of the site's page inventory from the database.
  PageSampler(const pagegen::OlympicConfig& config, const db::Database& db,
              SamplerOptions options = {});

  // Sets the games day (1-based); today's pages become the hot set.
  void SetCurrentDay(int day);
  int current_day() const { return day_; }

  // Draws one page name.
  std::string Sample(Rng& rng) const;

  // True if the page is the current day's home page (used by the transfer
  // model — home fetches pull the full image payload).
  bool IsHomePage(const std::string& page) const;

  size_t TotalPages() const;

 private:
  struct Category {
    double share;
    std::string (PageSampler::*pick)(Rng&) const;
  };

  std::string PickDayHome(Rng& rng) const;
  std::string PickEvent(Rng& rng) const;
  std::string PickAthlete(Rng& rng) const;
  std::string PickSport(Rng& rng) const;
  std::string PickCountry(Rng& rng) const;
  std::string PickMedals(Rng& rng) const;
  std::string PickNews(Rng& rng) const;
  std::string PickSchedule(Rng& rng) const;
  std::string PickWelcome(Rng& rng) const;

  SamplerOptions options_;
  int days_;
  int day_ = 1;
  std::vector<std::string> languages_;  // from the site config
  bool french_news_ = false;

  std::vector<int64_t> event_ids_;                 // all events
  std::vector<std::vector<int64_t>> events_by_day_;  // [day-1] -> ids
  std::vector<int64_t> athlete_ids_;
  std::vector<int64_t> sport_ids_;
  std::vector<std::string> country_codes_;
  std::vector<int64_t> news_ids_;
  size_t num_venues_ = 0;

  ZipfDistribution athlete_zipf_;
  ZipfDistribution event_zipf_;
  std::vector<std::pair<double, std::string (PageSampler::*)(Rng&) const>>
      category_cdf_;
};

}  // namespace nagano::workload
