// Site-structure navigation model (paper §3.1, Figs. 7-12).
//
// 1996 design: a strict hierarchy — home -> section index -> sport ->
// event — with "no direct links to pertinent information in other
// sections"; at least three requests to reach a result page, and the
// intermediate navigation pages were among the most requested.
//
// 1998 design: a per-day home page that front-loads results, medals and
// news ("over 25% of the users found the information they were looking for
// by examining the home page"), with direct links to every section. The
// paper estimates the 1996 design plus the added country/athlete content
// would have produced over 200M hits/day — more than 3x the observed peak.
//
// The model samples a user session with an information goal and returns
// the page-request sequence each design requires to satisfy it.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/sampler.h"

namespace nagano::workload {

enum class SiteDesign { k1996, k1998 };

enum class Goal {
  kEventResult,
  kMedalStandings,
  kNewsStory,
  kAthleteInfo,
  kCountryInfo,
  kBrowseToday,
};

struct Session {
  Goal goal;
  std::vector<std::string> requests;  // page names fetched, in order
  bool satisfied_on_home = false;     // goal met by the (day-)home page alone
};

struct GoalMix {
  double event_result = 0.40;
  double medal_standings = 0.15;
  double news_story = 0.15;
  double athlete_info = 0.12;
  double country_info = 0.08;
  double browse_today = 0.10;
};

class NavigationModel {
 public:
  NavigationModel(const PageSampler* sampler, GoalMix mix = {});

  // Samples one session under the given design for the sampler's current
  // day.
  Session SampleSession(SiteDesign design, Rng& rng) const;

  // Mean requests per session, estimated over n samples.
  double MeanRequestsPerSession(SiteDesign design, Rng& rng, int n) const;

  // Fraction of sessions satisfied by the home page alone.
  double HomeSatisfactionRate(SiteDesign design, Rng& rng, int n) const;

 private:
  Goal SampleGoal(Rng& rng) const;

  const PageSampler* sampler_;
  GoalMix mix_;
};

}  // namespace nagano::workload
