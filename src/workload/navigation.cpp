#include "workload/navigation.h"

#include <cassert>

#include "pagegen/olympic.h"

namespace nagano::workload {
namespace {

using pagegen::OlympicSite;

}  // namespace

NavigationModel::NavigationModel(const PageSampler* sampler, GoalMix mix)
    : sampler_(sampler), mix_(mix) {
  assert(sampler_ != nullptr);
}

Goal NavigationModel::SampleGoal(Rng& rng) const {
  const std::pair<double, Goal> table[] = {
      {mix_.event_result, Goal::kEventResult},
      {mix_.medal_standings, Goal::kMedalStandings},
      {mix_.news_story, Goal::kNewsStory},
      {mix_.athlete_info, Goal::kAthleteInfo},
      {mix_.country_info, Goal::kCountryInfo},
      {mix_.browse_today, Goal::kBrowseToday},
  };
  double total = 0.0;
  for (const auto& [share, _] : table) total += share;
  double u = rng.NextDouble() * total;
  for (const auto& [share, goal] : table) {
    u -= share;
    if (u <= 0.0) return goal;
  }
  return Goal::kBrowseToday;
}

Session NavigationModel::SampleSession(SiteDesign design, Rng& rng) const {
  Session session;
  session.goal = SampleGoal(rng);
  const int day = sampler_->current_day();
  const std::string home = design == SiteDesign::k1998
                               ? OlympicSite::DayHomePage(day)
                               : "/";
  session.requests.push_back(home);

  // A concrete target page for the goal (used by both designs).
  auto target_event = [&] {
    // Re-sample until we get an event page; bounded retries.
    for (int i = 0; i < 16; ++i) {
      const std::string p = sampler_->Sample(rng);
      if (p.starts_with("/event/")) return p;
    }
    return std::string("/event/1");
  };

  switch (design) {
    case SiteDesign::k1996: {
      // Strict hierarchy: every goal needs index pages before the leaf,
      // and cross-section hops restart from an index (Fig. 7: no direct
      // links between sections at the leaves).
      switch (session.goal) {
        case Goal::kEventResult:
          session.requests.push_back("/sports-index");
          session.requests.push_back(
              "/sport/" + std::to_string(rng.NextInt(1, 7)));
          session.requests.push_back(target_event());
          break;
        case Goal::kMedalStandings:
          session.requests.push_back("/results-index");
          session.requests.push_back(OlympicSite::kMedalsPage);
          break;
        case Goal::kNewsStory: {
          // Articles carry no cross-links in the 1996 hierarchy; each
          // additional story read means a round trip through the index.
          const int stories = static_cast<int>(rng.NextInt(1, 2));
          for (int s = 0; s < stories; ++s) {
            session.requests.push_back(OlympicSite::kNewsIndexPage);
            session.requests.push_back(
                OlympicSite::NewsPage(rng.NextInt(1, 20)));
          }
          break;
        }
        case Goal::kAthleteInfo: {
          // 1996 had biographies but no collated results ("results
          // corresponding to a particular country or athlete could not be
          // collated"): after the bio, the user walks sport -> event pages
          // hunting for each of the athlete's results.
          session.requests.push_back("/athletes-index");
          session.requests.push_back(
              OlympicSite::AthletePage(rng.NextInt(1, 100)));
          session.requests.push_back("/sports-index");
          const int events_visited = static_cast<int>(rng.NextInt(1, 3));
          for (int e = 0; e < events_visited; ++e) {
            session.requests.push_back(target_event());
          }
          break;
        }
        case Goal::kCountryInfo: {
          // Same collation gap for countries: medal table plus a hunt
          // through event pages for the delegation's results.
          session.requests.push_back("/countries-index");
          session.requests.push_back(OlympicSite::CountryPage("JPN"));
          session.requests.push_back("/results-index");
          session.requests.push_back(OlympicSite::kMedalsPage);
          const int events_visited = static_cast<int>(rng.NextInt(1, 2));
          for (int e = 0; e < events_visited; ++e) {
            session.requests.push_back(target_event());
          }
          break;
        }
        case Goal::kBrowseToday: {
          // Browsing the day's action across sports: the hierarchy has no
          // cross-links at the leaves (Fig. 10), so every event means a
          // fresh descent through the sports index.
          const int events_browsed = static_cast<int>(rng.NextInt(1, 3));
          for (int e = 0; e < events_browsed; ++e) {
            session.requests.push_back("/sports-index");
            session.requests.push_back(
                "/sport/" + std::to_string(rng.NextInt(1, 7)));
            session.requests.push_back(target_event());
          }
          break;
        }
      }
      break;
    }
    case SiteDesign::k1998: {
      // The day-home page already shows recent results, medal standings,
      // and latest news; >25% of sessions end there, and everything else
      // is one direct link away.
      switch (session.goal) {
        case Goal::kEventResult:
          if (rng.NextBool(0.35)) {  // result was on the home page
            session.satisfied_on_home = true;
          } else {
            session.requests.push_back(target_event());
          }
          break;
        case Goal::kMedalStandings:
          if (rng.NextBool(0.80)) {  // standings fragment is on home
            session.satisfied_on_home = true;
          } else {
            session.requests.push_back(OlympicSite::kMedalsPage);
          }
          break;
        case Goal::kNewsStory:
          if (rng.NextBool(0.30)) {
            session.satisfied_on_home = true;
          } else {
            session.requests.push_back(
                OlympicSite::NewsPage(rng.NextInt(1, 20)));
          }
          break;
        case Goal::kAthleteInfo:
          session.requests.push_back(
              OlympicSite::AthletePage(rng.NextInt(1, 100)));
          break;
        case Goal::kCountryInfo:
          session.requests.push_back(OlympicSite::CountryPage("JPN"));
          break;
        case Goal::kBrowseToday:
          if (rng.NextBool(0.50)) {
            session.satisfied_on_home = true;
          } else {
            session.requests.push_back(target_event());
          }
          break;
      }
      break;
    }
  }
  return session;
}

double NavigationModel::MeanRequestsPerSession(SiteDesign design, Rng& rng,
                                               int n) const {
  assert(n > 0);
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += SampleSession(design, rng).requests.size();
  }
  return static_cast<double>(total) / n;
}

double NavigationModel::HomeSatisfactionRate(SiteDesign design, Rng& rng,
                                             int n) const {
  assert(n > 0);
  int satisfied = 0;
  for (int i = 0; i < n; ++i) {
    if (SampleSession(design, rng).satisfied_on_home) ++satisfied;
  }
  return static_cast<double>(satisfied) / n;
}

}  // namespace nagano::workload
