// Traffic-shape models calibrated to the paper's evaluation section.
//
// The paper reports aggregates — 634.7M requests over 16 days, a 56.8M-hit
// peak day (Day 7), a 110,414-hit peak minute (Day 14), ~10 KB mean
// transfer, a five-to-one peak-to-average provisioning ratio, and the
// hourly/geographic bar charts of Figs. 18 and 23. These profiles encode
// those aggregates as sampling distributions; the figure benches then
// re-derive the paper's series by actually sampling requests through them.
// Where the paper prints a chart without numbers (Figs. 18, 23) the shape
// parameters here are calibrated estimates — flagged as such in
// EXPERIMENTS.md.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace nagano::workload {

constexpr int kGamesDays = 16;

// --- Fig. 20 calibration: hits per day, millions ---
// Constraints from §5: total 634.7M; Day 7 peak 56.8M; every day above the
// 1996 peak of 17M; secondary peaks around Day 10 (Men's Ski Jumping) and
// Day 14 (Women's Figure Skating Free Skating, the record minute).
const std::array<double, kGamesDays>& HitsByDayMillions();
double TotalHitsMillions();  // == 634.7
int PeakDay();               // == 7 (1-based)

// --- Fig. 18 calibration: relative request rate by hour of day (local) ---
// Overnight trough, morning ramp, midday plateau, evening peak.
const std::array<double, 24>& HourlyWeights();  // sums to 1

// Samples an hour-of-day from the diurnal profile.
int SampleHour(Rng& rng);

// --- Fig. 23 calibration: request share by geography ---
struct Region {
  std::string name;
  double share;              // of global requests
  int utc_offset_hours;      // drives per-site local diurnal phase
  std::string home_complex;  // geographically closest serving complex
};
const std::vector<Region>& Regions();
// Samples a region index per the share distribution.
size_t SampleRegion(Rng& rng);

// --- §4 transfer-size model ---
// "each hit would request an average of 10 Kbytes"; home pages with images
// were larger (Tables 1-2 imply ~50 KB for a full home-page fetch over a
// 28.8 Kbps modem).
struct TransferModel {
  double mean_bytes = 10 * 1024;
  double home_page_bytes = 50 * 1024;
};

// Bytes for one hit: page-dependent lognormal-ish spread around the mean.
size_t SampleTransferBytes(Rng& rng, bool is_home_page);

// The four serving complexes (paper §3).
const std::vector<std::string>& Complexes();

}  // namespace nagano::workload
