#include "workload/profiles.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace nagano::workload {

const std::array<double, kGamesDays>& HitsByDayMillions() {
  // Calibrated to §5: sums to 634.7, peaks at Day 7 (56.8), stays above the
  // 17M 1996 peak on every day, with secondary peaks on Days 10 and 14.
  static const std::array<double, kGamesDays> kDays = {
      22.0, 28.0, 33.0, 38.0, 44.0, 50.0, 56.8, 52.0,
      48.0, 50.0, 42.0, 40.0, 38.0, 46.0, 28.0, 18.9,
  };
  return kDays;
}

double TotalHitsMillions() {
  const auto& d = HitsByDayMillions();
  return std::accumulate(d.begin(), d.end(), 0.0);
}

int PeakDay() {
  const auto& d = HitsByDayMillions();
  return static_cast<int>(std::max_element(d.begin(), d.end()) - d.begin()) + 1;
}

const std::array<double, 24>& HourlyWeights() {
  static const std::array<double, 24> kWeights = [] {
    // Fig. 18 shape: overnight trough, steep morning ramp, midday plateau,
    // evening peak around 20:00-21:00 local.
    std::array<double, 24> w = {
        1.6, 1.2, 1.0, 0.9, 1.0, 1.4, 2.2, 3.5, 5.2, 6.4, 7.0, 7.2,
        7.4, 7.0, 6.6, 6.2, 5.8, 5.6, 5.8, 6.4, 6.8, 5.6, 4.0, 2.6,
    };
    const double total = std::accumulate(w.begin(), w.end(), 0.0);
    for (double& x : w) x /= total;
    return w;
  }();
  return kWeights;
}

int SampleHour(Rng& rng) {
  const auto& w = HourlyWeights();
  double u = rng.NextDouble();
  for (int h = 0; h < 24; ++h) {
    u -= w[h];
    if (u <= 0.0) return h;
  }
  return 23;
}

const std::vector<Region>& Regions() {
  // Fig. 23 calibration. The paper prints a pie chart without numbers; the
  // shares below reflect its visual proportions (North America dominant,
  // Japan second — Tokyo alone absorbed 72k of a 98k rpm peak during
  // Japan's daytime) and are flagged as estimates in EXPERIMENTS.md.
  static const std::vector<Region> kRegions = {
      {"United States", 0.42, -6, "Schaumburg"},
      {"Japan", 0.28, +9, "Tokyo"},
      {"Europe", 0.17, +1, "Bethesda"},
      {"Asia-Pacific", 0.08, +10, "Tokyo"},
      {"Other Americas", 0.05, -5, "Columbus"},
  };
  return kRegions;
}

size_t SampleRegion(Rng& rng) {
  const auto& regions = Regions();
  double u = rng.NextDouble();
  for (size_t i = 0; i < regions.size(); ++i) {
    u -= regions[i].share;
    if (u <= 0.0) return i;
  }
  return regions.size() - 1;
}

size_t SampleTransferBytes(Rng& rng, bool is_home_page) {
  const TransferModel model;
  const double mean = is_home_page ? model.home_page_bytes : model.mean_bytes;
  // Lognormal with sigma 0.5 around the mean: right-skewed like real
  // transfer-size distributions, never negative.
  const double sigma = 0.5;
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  const double sample = std::exp(rng.NextGaussian(mu, sigma));
  return static_cast<size_t>(std::max(256.0, sample));
}

const std::vector<std::string>& Complexes() {
  static const std::vector<std::string> kComplexes = {
      "Schaumburg", "Columbus", "Bethesda", "Tokyo"};
  return kComplexes;
}

}  // namespace nagano::workload
