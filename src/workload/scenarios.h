// Adversarial traffic scenarios — the spikes that actually threatened the
// 1998 site, as opposed to the calibrated diurnal/Zipf averages in
// profiles.h.
//
// A medal decision drove 10-100x traffic onto one page within seconds
// (§5's record minute was exactly such an event); an invalidation storm
// turns every one of those requests into a potential redundant re-render.
// Each generator here produces a deterministic, time-sorted request stream
// with a known closed-form rate shape, so the stampede/chaos suites can
// replay the exact same crowd every run and the property tests can check
// the shape against RateAt().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/options.h"
#include "common/result.h"
#include "common/rng.h"
#include "workload/sampler.h"

namespace nagano::workload {

enum class ScenarioKind : uint8_t {
  // Breaking news: near-instant ramp onto one page (a medal decided), then
  // exponential decay as the crowd disperses.
  kBreakingNews,
  // Auction close: interest builds polynomially toward a known closing
  // time, peaks there, and vanishes the moment it passes.
  kAuctionClose,
  // Leaderboard tick: a sustained plateau of hot-page traffic while the
  // scoreboard invalidates the page on a fixed cadence — every tick turns
  // the whole plateau into a same-key miss herd.
  kLeaderboardTick,
  // Slow-client flood: a population of clients that request the hot page
  // but never drain their sockets, riding on normal background traffic.
  kSlowClientFlood,
};

const char* ScenarioName(ScenarioKind kind);

struct ScenarioRequest {
  TimeNs at = 0;             // offset from scenario start
  std::string page;
  bool slow_client = false;  // from the non-draining flood population
};

// One scoreboard tick: the instant the hot page's cache entry is
// invalidated (the harness applies these against the cache under test).
struct InvalidationTick {
  TimeNs at = 0;
  std::string page;
};

struct ScenarioOptions : OptionsBase {
  TimeNs duration = 2 * kMinute;
  // Steady background request rate (requests/s), sampled through the
  // site's normal Zipf popularity model.
  double baseline_rps = 200.0;
  // Peak hot-page rate as a multiple of the baseline — the paper-era flash
  // crowds were 10-100x; the bench drills 50x.
  double spike_multiplier = 50.0;
  TimeNs spike_start = 30 * kSecond;
  // kBreakingNews: 0-to-peak ramp time.
  TimeNs spike_ramp = 5 * kSecond;
  // How long the disturbance lasts (decay constant for breaking news, time
  // to close for the auction, plateau/storm length otherwise).
  TimeNs spike_duration = 30 * kSecond;
  std::string hot_page = "/medals";
  // kLeaderboardTick: invalidate the hot page this often during the storm.
  TimeNs invalidation_interval = 2 * kSecond;
  // kSlowClientFlood: flood intensity as a share of the spike rate.
  double slow_client_share = 0.3;

  Status Validate() const;
};

class ScenarioGenerator {
 public:
  // `sampler` draws the background traffic's pages; not owned, may be null
  // when baseline_rps == 0 (pure-spike streams for the bench).
  ScenarioGenerator(const PageSampler* sampler, ScenarioOptions options,
                    uint64_t seed);

  // Builds the scenario's request stream: background Poisson traffic at
  // baseline_rps plus the shape's hot-page process, merged and
  // time-sorted. Deterministic — the same seed yields a byte-identical
  // stream.
  std::vector<ScenarioRequest> Build(ScenarioKind kind) const;

  // The closed-form hot-page rate (requests/s) at offset `t` — what the
  // spike adds on top of the background. Property tests assert Build()'s
  // empirical density against this.
  double RateAt(ScenarioKind kind, TimeNs t) const;

  // Peak of RateAt over the scenario (the thinning bound).
  double PeakRate(ScenarioKind kind) const;

  // The scoreboard cadence for kLeaderboardTick: one tick per
  // invalidation_interval across the storm window.
  std::vector<InvalidationTick> InvalidationSchedule() const;

  const ScenarioOptions& options() const { return options_; }

 private:
  const PageSampler* sampler_;
  ScenarioOptions options_;
  uint64_t seed_;
};

}  // namespace nagano::workload
