#include "workload/sampler.h"

#include <algorithm>
#include <cassert>

namespace nagano::workload {
namespace {

using db::Row;
using pagegen::OlympicSite;

int64_t AsInt(const db::Value& v) { return std::get<int64_t>(v); }
const std::string& AsString(const db::Value& v) {
  return std::get<std::string>(v);
}

}  // namespace

PageSampler::PageSampler(const pagegen::OlympicConfig& config,
                         const db::Database& db, SamplerOptions options)
    : options_(options),
      days_(config.days),
      languages_(config.languages.empty() ? std::vector<std::string>{"en"}
                                          : config.languages),
      french_news_(config.french_news),
      athlete_zipf_(1, 1.0),  // re-built below once sizes are known
      event_zipf_(1, 1.0) {
  events_by_day_.resize(static_cast<size_t>(days_));
  for (const Row& r : db.ScanAll("events")) {
    const int64_t id = AsInt(r[0]);
    const int day = static_cast<int>(AsInt(r[3]));
    event_ids_.push_back(id);
    if (day >= 1 && day <= days_) {
      events_by_day_[static_cast<size_t>(day - 1)].push_back(id);
    }
  }
  for (const Row& r : db.ScanAll("athletes")) athlete_ids_.push_back(AsInt(r[0]));
  for (const Row& r : db.ScanAll("sports")) sport_ids_.push_back(AsInt(r[0]));
  for (const Row& r : db.ScanAll("countries"))
    country_codes_.push_back(AsString(r[0]));
  for (const Row& r : db.ScanAll("news")) news_ids_.push_back(AsInt(r[0]));
  num_venues_ = db.RowCount("venues");

  athlete_zipf_ = ZipfDistribution(std::max<size_t>(1, athlete_ids_.size()),
                                   options_.zipf_skew);
  event_zipf_ = ZipfDistribution(std::max<size_t>(1, event_ids_.size()),
                                 options_.zipf_skew);

  const std::pair<double, std::string (PageSampler::*)(Rng&) const> raw[] = {
      {options_.day_home, &PageSampler::PickDayHome},
      {options_.event_pages, &PageSampler::PickEvent},
      {options_.athlete_pages, &PageSampler::PickAthlete},
      {options_.sport_pages, &PageSampler::PickSport},
      {options_.country_pages, &PageSampler::PickCountry},
      {options_.medals_page, &PageSampler::PickMedals},
      {options_.news_pages, &PageSampler::PickNews},
      {options_.schedule_pages, &PageSampler::PickSchedule},
      {options_.welcome_page, &PageSampler::PickWelcome},
  };
  double total = 0.0;
  for (const auto& [share, _] : raw) total += share;
  double cum = 0.0;
  for (const auto& [share, pick] : raw) {
    cum += share / total;
    category_cdf_.emplace_back(cum, pick);
  }
  category_cdf_.back().first = 1.0;
}

void PageSampler::SetCurrentDay(int day) {
  day_ = std::clamp(day, 1, days_);
}

std::string PageSampler::Sample(Rng& rng) const {
  std::string page = PickWelcome(rng);
  const double u = rng.NextDouble();
  for (const auto& [cum, pick] : category_cdf_) {
    if (u <= cum) {
      page = (this->*pick)(rng);
      break;
    }
  }
  // Language tier: the base pick is a default-language name; a share of
  // the audience reads the other language trees, and some news traffic
  // requests the French edition.
  const bool is_news = page.starts_with("/news");
  if (french_news_ && is_news && rng.NextBool(options_.french_news_share)) {
    return "/fr" + page;
  }
  if (languages_.size() > 1 &&
      !rng.NextBool(options_.default_language_share)) {
    const size_t alt =
        1 + rng.NextBelow(static_cast<uint64_t>(languages_.size() - 1));
    return "/" + languages_[alt] + page;
  }
  return page;
}

bool PageSampler::IsHomePage(const std::string& page) const {
  std::string_view path(page);
  for (const auto& lang : languages_) {
    const std::string prefix = "/" + lang;
    if (path.starts_with(prefix) && path.size() > prefix.size() &&
        path[prefix.size()] == '/') {
      path.remove_prefix(prefix.size());
      break;
    }
  }
  return path == "/day/" + std::to_string(day_) || path == "/";
}

size_t PageSampler::TotalPages() const {
  const size_t per_language =
      3 +  // "/", "/medals", "/news"
      2 +  // "/nagano", "/fun"
      2 * static_cast<size_t>(days_) + event_ids_.size() +
      athlete_ids_.size() + sport_ids_.size() + country_codes_.size() +
      news_ids_.size() + num_venues_;
  size_t total = per_language * languages_.size();
  const bool fr_listed =
      std::find(languages_.begin(), languages_.end(), "fr") != languages_.end();
  if (french_news_ && !fr_listed) {
    total += 1 + news_ids_.size();  // French news index + articles
  }
  return total;
}

std::string PageSampler::PickDayHome(Rng& rng) const {
  // Mostly today; occasionally an earlier day's archive home page.
  if (day_ == 1 || rng.NextBool(options_.today_bias)) {
    return OlympicSite::DayHomePage(day_);
  }
  return OlympicSite::DayHomePage(
      static_cast<int>(rng.NextInt(1, std::max(1, day_ - 1))));
}

std::string PageSampler::PickEvent(Rng& rng) const {
  const auto& today = events_by_day_[static_cast<size_t>(day_ - 1)];
  if (!today.empty() && rng.NextBool(options_.today_bias)) {
    // Zipf over today's programme: the marquee event dominates.
    ZipfDistribution z(today.size(), options_.zipf_skew);
    return OlympicSite::EventPage(today[z.Sample(rng)]);
  }
  if (event_ids_.empty()) return "/";
  return OlympicSite::EventPage(event_ids_[event_zipf_.Sample(rng)]);
}

std::string PageSampler::PickAthlete(Rng& rng) const {
  if (athlete_ids_.empty()) return "/";
  return OlympicSite::AthletePage(athlete_ids_[athlete_zipf_.Sample(rng)]);
}

std::string PageSampler::PickSport(Rng& rng) const {
  if (sport_ids_.empty()) return "/";
  return OlympicSite::SportPage(
      sport_ids_[rng.NextBelow(sport_ids_.size())]);
}

std::string PageSampler::PickCountry(Rng& rng) const {
  if (country_codes_.empty()) return "/";
  // Mild skew: big delegations get more traffic.
  ZipfDistribution z(country_codes_.size(), 0.7);
  return OlympicSite::CountryPage(country_codes_[z.Sample(rng)]);
}

std::string PageSampler::PickMedals(Rng&) const {
  return OlympicSite::kMedalsPage;
}

std::string PageSampler::PickNews(Rng& rng) const {
  if (news_ids_.empty() || rng.NextBool(0.3)) {
    return OlympicSite::kNewsIndexPage;
  }
  // Recency skew: latest articles are hottest. news_ids_ ascend by id.
  ZipfDistribution z(news_ids_.size(), 1.2);
  const size_t from_newest = z.Sample(rng);
  return OlympicSite::NewsPage(
      news_ids_[news_ids_.size() - 1 - from_newest]);
}

std::string PageSampler::PickSchedule(Rng& rng) const {
  const int day = rng.NextBool(options_.today_bias)
                      ? day_
                      : static_cast<int>(rng.NextInt(1, days_));
  return "/schedule/day/" + std::to_string(day);
}

std::string PageSampler::PickWelcome(Rng&) const { return "/"; }

}  // namespace nagano::workload
