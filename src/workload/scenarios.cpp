#include "workload/scenarios.h"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace nagano::workload {

const char* ScenarioName(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kBreakingNews:
      return "breaking-news";
    case ScenarioKind::kAuctionClose:
      return "auction-close";
    case ScenarioKind::kLeaderboardTick:
      return "leaderboard-tick";
    case ScenarioKind::kSlowClientFlood:
      return "slow-client-flood";
  }
  return "unknown";
}

Status ScenarioOptions::Validate() const {
  if (duration <= 0) {
    return InvalidArgumentError("ScenarioOptions.duration must be > 0");
  }
  if (baseline_rps < 0) {
    return InvalidArgumentError("ScenarioOptions.baseline_rps must be >= 0");
  }
  if (spike_multiplier < 1.0) {
    return InvalidArgumentError(
        "ScenarioOptions.spike_multiplier must be >= 1");
  }
  if (spike_start < 0 || spike_ramp < 0) {
    return InvalidArgumentError(
        "ScenarioOptions spike offsets must be >= 0");
  }
  if (spike_duration <= 0) {
    return InvalidArgumentError("ScenarioOptions.spike_duration must be > 0");
  }
  if (hot_page.empty()) {
    return InvalidArgumentError("ScenarioOptions.hot_page must be set");
  }
  if (invalidation_interval <= 0) {
    return InvalidArgumentError(
        "ScenarioOptions.invalidation_interval must be > 0");
  }
  if (slow_client_share < 0.0 || slow_client_share > 1.0) {
    return InvalidArgumentError(
        "ScenarioOptions.slow_client_share must be in [0, 1]");
  }
  return Status::Ok();
}

ScenarioGenerator::ScenarioGenerator(const PageSampler* sampler,
                                     ScenarioOptions options, uint64_t seed)
    : sampler_(sampler),
      options_((ValidateOrDie(options, "ScenarioOptions"), std::move(options))),
      seed_(seed) {}

double ScenarioGenerator::RateAt(ScenarioKind kind, TimeNs t) const {
  const double peak = options_.baseline_rps * options_.spike_multiplier;
  const double since = static_cast<double>(t - options_.spike_start);
  const double dur = static_cast<double>(options_.spike_duration);
  switch (kind) {
    case ScenarioKind::kBreakingNews: {
      // Linear ramp to the peak, then exponential decay with a time
      // constant of a third of the spike duration — mostly dispersed by
      // the window's end, the way a decided medal empties into the site.
      if (t < options_.spike_start) return 0.0;
      const double ramp = static_cast<double>(options_.spike_ramp);
      if (ramp > 0 && since < ramp) return peak * (since / ramp);
      const double decayed = since - ramp;
      return peak * std::exp(-3.0 * decayed / dur);
    }
    case ScenarioKind::kAuctionClose: {
      // Interest builds quadratically toward the close, peaks there, and
      // drops to nothing the instant it passes.
      if (t < options_.spike_start) return 0.0;
      if (since >= dur) return 0.0;
      const double x = since / dur;
      return peak * x * x;
    }
    case ScenarioKind::kLeaderboardTick:
      // A sustained plateau while the scoreboard ticks; every invalidation
      // turns the whole plateau into a same-key miss herd.
      if (t < options_.spike_start || since >= dur) return 0.0;
      return peak;
    case ScenarioKind::kSlowClientFlood:
      // Flood connections at a share of the spike rate; the damage is in
      // the sockets they never drain, not the request count.
      if (t < options_.spike_start || since >= dur) return 0.0;
      return peak * options_.slow_client_share;
  }
  return 0.0;
}

double ScenarioGenerator::PeakRate(ScenarioKind kind) const {
  const double peak = options_.baseline_rps * options_.spike_multiplier;
  return kind == ScenarioKind::kSlowClientFlood
             ? peak * options_.slow_client_share
             : peak;
}

std::vector<InvalidationTick> ScenarioGenerator::InvalidationSchedule() const {
  std::vector<InvalidationTick> ticks;
  const TimeNs end = options_.spike_start + options_.spike_duration;
  for (TimeNs at = options_.spike_start; at < end;
       at += options_.invalidation_interval) {
    ticks.push_back({at, options_.hot_page});
  }
  return ticks;
}

std::vector<ScenarioRequest> ScenarioGenerator::Build(
    ScenarioKind kind) const {
  std::vector<ScenarioRequest> stream;
  Rng rng(seed_);
  Rng background_rng = rng.Fork();
  Rng spike_rng = rng.Fork();
  Rng page_rng = rng.Fork();

  // Background: homogeneous Poisson over the site's normal popularity
  // model. These are the viewers the flash crowd must not starve.
  if (options_.baseline_rps > 0 && sampler_ != nullptr) {
    const double mean_gap = 1e9 / options_.baseline_rps;
    double t = background_rng.NextExponential(mean_gap);
    while (t < static_cast<double>(options_.duration)) {
      ScenarioRequest req;
      req.at = static_cast<TimeNs>(t);
      req.page = sampler_->Sample(page_rng);
      stream.push_back(std::move(req));
      t += background_rng.NextExponential(mean_gap);
    }
  }

  // Hot-page process: inhomogeneous Poisson with rate RateAt, generated by
  // thinning a homogeneous candidate stream at the peak rate.
  const double bound = PeakRate(kind);
  if (bound > 0) {
    const double mean_gap = 1e9 / bound;
    const bool slow = kind == ScenarioKind::kSlowClientFlood;
    double t = static_cast<double>(options_.spike_start) +
               spike_rng.NextExponential(mean_gap);
    while (t < static_cast<double>(options_.duration)) {
      const double accept = RateAt(kind, static_cast<TimeNs>(t)) / bound;
      if (spike_rng.NextDouble() < accept) {
        ScenarioRequest req;
        req.at = static_cast<TimeNs>(t);
        req.page = options_.hot_page;
        req.slow_client = slow;
        stream.push_back(std::move(req));
      }
      t += spike_rng.NextExponential(mean_gap);
    }
  }

  // Deterministic total order — ties (same-nanosecond arrivals) break on
  // page then population, so equal seeds give byte-identical streams.
  std::sort(stream.begin(), stream.end(),
            [](const ScenarioRequest& a, const ScenarioRequest& b) {
              return std::tie(a.at, a.page, a.slow_client) <
                     std::tie(b.at, b.page, b.slow_client);
            });
  return stream;
}

}  // namespace nagano::workload
