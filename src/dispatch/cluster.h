// DispatcherCluster — a live three-tier topology on real sockets: one
// dispatch::Dispatcher fronting N backend nodes, each a full publishing
// pipeline (core::ServingSite) behind its own HTTP front end
// (server::HttpFrontEnd) with a WAL for crash/upgrade recovery.
//
// This is the deployable shape of the paper's serving site — Network
// Dispatcher in front, SP2 frames behind — and the harness the rolling-
// upgrade drill runs on: RollingRestart(i) announces the drain through the
// backend's own /healthz (ServingSite::SetDraining -> the advisor steers
// new connections away), drains the front tier cleanly (zero aborted
// in-flight requests), warm-restarts the backend from its WAL on the same
// port, waits for catch-up, and reinstates it — while the other backends
// keep answering every request.
//
// Feed discipline: there is no replication tree between the backends; the
// harness itself fans each scoring commit out to every node
// (RecordResultAll). Consequently the feed must be quiet while a node is
// down — RecordResultAll refuses (FailedPrecondition) mid-restart rather
// than silently letting the restarted node diverge.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "core/serving_site.h"
#include "dispatch/dispatcher.h"
#include "pagegen/olympic.h"
#include "server/serving.h"
#include "wal/wal.h"

namespace nagano::dispatch {

struct ClusterOptions : OptionsBase {
  // Content every backend builds and serves (identical across nodes —
  // byte-identical answers are the rolling-upgrade invariant).
  pagegen::OlympicConfig olympic;
  size_t backends = 3;
  // Root for the per-backend WAL directories: <wal_root>/b<k>. Required —
  // warm restart recovers each node from its own log.
  std::string wal_root;
  // Reactors for the dispatcher front end (backends run one reactor each).
  size_t front_reactors = 1;
  // Dispatcher knobs (probe cadence, drain grace, failover budget...). The
  // http options and backend list are filled in by the harness.
  DispatcherOptions dispatch;
  // Injector shared by the dispatcher tier and every backend pipeline.
  fault::FaultInjector* faults = nullptr;
  metrics::Options metrics;

  Status Validate() const;
};

class DispatcherCluster {
 public:
  explicit DispatcherCluster(ClusterOptions options);
  ~DispatcherCluster();

  DispatcherCluster(const DispatcherCluster&) = delete;
  DispatcherCluster& operator=(const DispatcherCluster&) = delete;

  // Builds and starts every backend (site + HTTP front end + /healthz
  // admin surface), then the dispatcher over them.
  Status Start();
  void Stop();

  // The dispatcher's client-facing port.
  uint16_t port() const { return dispatcher_->port(); }
  Dispatcher& dispatcher() { return *dispatcher_; }
  size_t backend_count() const { return nodes_.size(); }
  // The backend's pipeline (null while that node is mid-restart).
  core::ServingSite* site(size_t i) { return nodes_[i]->site.get(); }
  // The backend's stable HTTP port (same across restarts).
  uint16_t backend_port(size_t i) const { return nodes_[i]->port; }

  // Applies one scoring commit to every backend and returns once all have
  // committed it. FailedPrecondition while any node is down (see feed
  // discipline above).
  Status RecordResultAll(int64_t event_id, int64_t rank, int64_t athlete_id,
                         double score);
  // Blocks until every live backend's cache reflects its commits.
  void QuiesceAll();

  // The rolling-upgrade step for one backend:
  //   1. SetDraining(true): its /healthz fails, the advisor steers away.
  //   2. Dispatcher::Drain(i): pinned connections finish, zero aborts.
  //   3. Stop the front end and pipeline; note the WAL watermark.
  //   4. ServingSite::WarmRestart from the WAL, catch up to the watermark,
  //      prefetch, restart the trigger; HTTP front end back on the same
  //      port.
  //   5. Dispatcher::Reinstate(i) + WaitHealthy.
  Status RollingRestart(size_t i);

  // Crash simulation: stop the backend's front end and pipeline with NO
  // drain — in-flight proxied requests fail over, the dispatcher discovers
  // the death through its probes (and connection errors) the way it would
  // a real crash.
  Status KillBackend(size_t i);
  // Warm-restarts a killed backend from its WAL (same port) and reinstates
  // it with the dispatcher; blocks until it is routable again.
  Status ReviveBackend(size_t i);

  uint64_t restarts() const { return restarts_; }

 private:
  struct Node {
    std::unique_ptr<wal::WriteAheadLog> wal;
    std::unique_ptr<core::ServingSite> site;
    std::unique_ptr<server::HttpFrontEnd> front;
    uint16_t port = 0;  // stable across restarts
    std::string name;   // "b<k>"
  };

  wal::WalOptions WalOptionsFor(const Node& node) const;
  core::SiteOptions SiteOptionsFor(const Node& node) const;
  // Builds (or rebuilds, warm=true) one node and brings its front end up.
  Status StartNode(Node& node, bool warm);

  ClusterOptions options_;
  metrics::MetricRegistry* registry_ = nullptr;
  std::string instance_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<Dispatcher> dispatcher_;
  uint64_t restarts_ = 0;
  bool started_ = false;
};

}  // namespace nagano::dispatch
