// dispatch::Dispatcher — the real-socket Network Dispatcher tier (ISSUE 9).
//
// The paper's topology put SP2 serving frames behind IBM Network Dispatchers
// that spread client TCP connections across front ends and steered around
// dead ones; until now that tier existed only inside the discrete-event
// cluster sim. This subsystem is the promotion to live TCP: a standalone
// L4/L7 front process that reuses the multi-reactor epoll core of
// http::HttpServer to accept client connections and proxy each request over
// a real socket to one of N backend HTTP servers.
//
//  * Advisor-driven health. A background advisor thread polls every
//    backend's /healthz each probe_interval and folds in the live per-
//    backend latency/error observations the proxy path records, producing
//    an EWMA-smoothed weight per backend:
//        weight = healthy ? max(0.01, 1 - err_ewma) / (0.5 + lat_ewma_ms)
//               : 0
//    — the Dispatcher analog of the paper's advisor-fed routing tables.
//
//  * Weighted routing. New connections pick a backend by power-of-two-
//    choices over the advisor weights: two weighted draws, and the winner
//    is the candidate with the lower inflight/weight ratio. The chosen
//    backend is pinned to the client connection (an L4-style affinity): the
//    pin lives in the connection's ConnectionContext and carries a
//    dedicated keep-alive HttpClient, so a persistent client costs one
//    backend connect for its whole life.
//
//  * Connection draining. Drain(i) moves a backend kUp -> kDraining (no new
//    assignments; pinned connections keep using it), waits a grace period,
//    then bumps the backend's epoch — the lazy unpin: every pinned lease
//    re-validates per request and re-picks on a stale epoch — waits for
//    in-flight proxied requests to hit zero, and lands at kOut. Client
//    connections are never closed, which is why a clean drain aborts zero
//    in-flight requests.
//
//  * Failover. A proxy error marks the backend unhealthy on the spot (the
//    advisor re-admits it on its next successful probe) and the request
//    retries on a different backend, up to failover_attempts times, before
//    surfacing a 502.
//
// Fault sites (subsystem "dispatch", site "<instance>/<backend-name>"):
//   "connect"      kill establishing the backend connection
//   "proxy_write"  kill the proxied request before it is sent
//   "proxy_read"   kill the proxied response after the backend answered
//   "probe"        drop one advisor health probe
//   "backend"      kWindow rule: the backend is dead while active (both the
//                  proxy path and the advisor see the outage)
//
// Metrics (registry, site label = instance): nagano_dispatch_requests_total,
// _failovers_total, _no_backend_total, _drains_total, _probe_failures_total,
// _backend_bytes_{out,in}_total, and per-backend (extra label backend=<name>)
// _backend_requests_total, _backend_errors_total, _backend_weight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "common/rng.h"
#include "http/client.h"
#include "http/server.h"

namespace nagano::dispatch {

// One backend HTTP server the dispatcher fronts.
struct BackendAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string name;  // label for metrics/fault sites; "b<k>" when empty
};

// Backend lifecycle: kUp serves new and pinned traffic, kDraining serves
// only already-pinned traffic, kOut serves nothing (Reinstate to rejoin).
enum class BackendState : uint8_t { kUp, kDraining, kOut };
std::string_view BackendStateName(BackendState state);

struct DispatcherOptions : OptionsBase {
  // The front end's reactor config (bind address, port, reactors, accept
  // mode, idle sweep...). The dispatcher installs its own ContextHandler.
  http::HttpServer::Options http;

  // Advisor cadence and probe socket bound. A dead backend is detected
  // within one probe_interval; a hung one within probe_timeout.
  TimeNs probe_interval = 25 * kMillisecond;
  TimeNs probe_timeout = 250 * kMillisecond;

  // Socket bounds for the proxy path's backend connections.
  TimeNs connect_timeout = 500 * kMillisecond;
  TimeNs io_timeout = 2 * kSecond;

  // EWMA smoothing for the advisor's latency / error-rate folds.
  double latency_alpha = 0.3;
  double error_alpha = 0.3;

  // Drain(i): grace before the epoch bump unpins keep-alive connections,
  // then bound on waiting for in-flight proxied requests to reach zero.
  TimeNs drain_grace = 200 * kMillisecond;
  TimeNs drain_deadline = 2 * kSecond;

  // Extra backends tried after a proxy failure before answering 502.
  size_t failover_attempts = 2;

  // Seeds the per-thread power-of-two-choices draws.
  uint64_t seed = 0x64697370ULL;  // "disp"

  // Consulted at the sites documented above. Null = injection off.
  fault::FaultInjector* faults = nullptr;
  metrics::Options metrics;

  Status Validate() const;
};

// Point-in-time control-plane view of one backend.
struct BackendSnapshot {
  std::string name;
  std::string host;
  uint16_t port = 0;
  BackendState state = BackendState::kUp;
  bool healthy = false;
  double weight = 0.0;
  double latency_ewma_ms = 0.0;
  double error_ewma = 0.0;
  uint64_t inflight = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
};

struct DispatcherStats {
  uint64_t requests = 0;        // requests entering the proxy path
  uint64_t failovers = 0;       // retries on a different backend
  uint64_t no_backend = 0;      // 503s: no routable backend existed
  uint64_t proxy_errors = 0;    // 502s: every attempt failed
  uint64_t drains = 0;
  uint64_t probe_failures = 0;
  uint64_t bytes_to_backends = 0;
  uint64_t bytes_from_backends = 0;
};

class Dispatcher {
 public:
  Dispatcher(std::vector<BackendAddress> backends, DispatcherOptions options);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // Runs one synchronous probe pass (so weights are live before the first
  // client connects), starts the front end's reactors, then the advisor.
  Status Start();

  // Stops the front end (closing every client connection and releasing
  // every pinned backend lease), then joins the advisor. Idempotent.
  void Stop();

  // The front end's bound port (valid after Start()).
  uint16_t port() const;

  size_t backend_count() const { return backends_.size(); }

  // Clean removal: kUp -> kDraining -> (grace, epoch bump, inflight == 0)
  // -> kOut. Blocks for up to drain_grace + drain_deadline. Returns
  // FailedPrecondition if the backend is not kUp, Unavailable if in-flight
  // requests outlived the deadline (the backend stays kDraining).
  Status Drain(size_t backend);

  // kOut/kDraining -> kUp. The advisor re-admits the backend (weight > 0)
  // on its next successful probe, with EWMA history reset — the backend
  // may be a different process by now.
  Status Reinstate(size_t backend);

  // Blocks until the backend is kUp, probed healthy, and routable
  // (weight > 0), or the timeout passes.
  Status WaitHealthy(size_t backend, TimeNs timeout);

  BackendSnapshot snapshot(size_t backend) const;
  std::vector<BackendSnapshot> snapshots() const;
  DispatcherStats stats() const;

  // The front end, for reactor/keep-alive introspection in tests.
  const http::HttpServer& front() const { return *server_; }

 private:
  struct Backend;
  struct Lease;

  http::HttpResponse Proxy(const http::HttpRequest& request,
                           http::ConnectionContext& ctx);
  Result<http::HttpResponse> Forward(Backend& backend,
                                     http::HttpClient& client,
                                     const http::HttpRequest& request);
  // Weighted power-of-two-choices over routable backends; -1 if none.
  // `exclude` skips the backend a failover just abandoned.
  int PickBackend(Rng& rng, int exclude) const;
  void AdvisorLoop();
  void ProbeAll();
  http::HttpResponse DispatchzPage() const;

  std::vector<std::unique_ptr<Backend>> backends_;
  DispatcherOptions options_;
  std::string instance_;
  std::unique_ptr<http::HttpServer> server_;

  std::thread advisor_;
  std::mutex advisor_mutex_;
  std::condition_variable advisor_cv_;
  bool advisor_stop_ = false;
  std::atomic<bool> running_{false};

  metrics::Counter* requests_;
  metrics::Counter* failovers_;
  metrics::Counter* no_backend_;
  metrics::Counter* proxy_errors_;
  metrics::Counter* drains_;
  metrics::Counter* probe_failures_;
  metrics::Counter* bytes_to_backends_;
  metrics::Counter* bytes_from_backends_;
};

}  // namespace nagano::dispatch
