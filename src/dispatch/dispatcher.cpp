#include "dispatch/dispatcher.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace nagano::dispatch {
namespace {

TimeNs SteadyNow() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepNs(TimeNs ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

}  // namespace

std::string_view BackendStateName(BackendState state) {
  switch (state) {
    case BackendState::kUp:
      return "up";
    case BackendState::kDraining:
      return "draining";
    case BackendState::kOut:
      return "out";
  }
  return "?";
}

Status DispatcherOptions::Validate() const {
  if (Status s = http.Validate(); !s.ok()) return s;
  if (probe_interval <= 0) {
    return InvalidArgumentError("probe_interval must be > 0");
  }
  if (probe_timeout <= 0 || connect_timeout <= 0 || io_timeout <= 0) {
    return InvalidArgumentError("dispatcher socket timeouts must be > 0");
  }
  if (latency_alpha <= 0.0 || latency_alpha > 1.0 || error_alpha <= 0.0 ||
      error_alpha > 1.0) {
    return InvalidArgumentError("EWMA alphas must be in (0, 1]");
  }
  if (drain_grace < 0 || drain_deadline <= 0) {
    return InvalidArgumentError("drain_grace/* deadline */ must be sane");
  }
  return Status::Ok();
}

// Per-backend routing state. Atomics carry everything the reactor threads
// read on the proxy path; the EWMA fold state at the bottom belongs to the
// advisor thread alone (plus the synchronous first pass inside Start(),
// which happens before any reactor exists).
struct Dispatcher::Backend {
  BackendAddress addr;
  std::string site;  // fault site: "<instance>/<name>"

  std::atomic<BackendState> state{BackendState::kUp};
  std::atomic<bool> healthy{false};
  std::atomic<double> weight{0.0};
  // Bumped to lazily invalidate pinned leases (drain, reinstate).
  std::atomic<uint64_t> epoch{0};
  std::atomic<int64_t> inflight{0};
  // Reinstate() -> advisor: forget the previous incarnation's EWMA history.
  std::atomic<bool> reset_ewma{false};

  // Live observations the proxy path deposits and the advisor drains
  // (exchange-to-zero) each probe pass.
  std::atomic<uint64_t> obs_ok{0};
  std::atomic<uint64_t> obs_err{0};
  std::atomic<uint64_t> obs_lat_ns{0};

  // Written only by the advisor (and Start()'s synchronous first pass,
  // before any other thread exists); atomic so snapshot() can read them.
  std::atomic<double> lat_ewma_ms{0.0};
  std::atomic<double> err_ewma{0.0};
  bool ewma_primed = false;  // advisor-only
  std::unique_ptr<http::HttpClient> prober;

  metrics::Counter* requests = nullptr;
  metrics::Counter* errors = nullptr;
  metrics::Gauge* weight_gauge = nullptr;
};

// The per-client-connection pin: which backend this connection rides, under
// which epoch, over which keep-alive socket. Lives in ConnectionContext::user
// and dies with the connection (or earlier, on failover/epoch bump).
struct Dispatcher::Lease {
  size_t backend = 0;
  uint64_t epoch = 0;
  std::unique_ptr<http::HttpClient> client;
};

Dispatcher::Dispatcher(std::vector<BackendAddress> backends,
                       DispatcherOptions options)
    : options_(std::move(options)) {
  ValidateOrDie(options_, "DispatcherOptions");
  if (backends.empty()) {
    DieOnInvalidOptions(InvalidArgumentError("needs at least one backend"),
                        "Dispatcher");
  }

  metrics::Scope scope = metrics::Scope::Resolve(options_.metrics, "dispatch");
  instance_ = scope.labels.empty() ? "dispatch" : scope.labels[0].second;
  options_.http.metrics.registry = scope.registry;
  if (options_.http.metrics.instance.empty()) {
    options_.http.metrics.instance = instance_ + "/front";
  }

  requests_ = scope.GetCounter("nagano_dispatch_requests_total",
                               "requests entering the proxy path");
  failovers_ = scope.GetCounter("nagano_dispatch_failovers_total",
                                "requests retried on another backend");
  no_backend_ = scope.GetCounter("nagano_dispatch_no_backend_total",
                                 "503s served: no routable backend");
  proxy_errors_ = scope.GetCounter("nagano_dispatch_proxy_errors_total",
                                   "502s served: every attempt failed");
  drains_ = scope.GetCounter("nagano_dispatch_drains_total",
                             "backend drains initiated");
  probe_failures_ = scope.GetCounter("nagano_dispatch_probe_failures_total",
                                     "advisor probes that failed");
  bytes_to_backends_ = scope.GetCounter("nagano_dispatch_backend_bytes_out_total",
                                        "request bytes proxied to backends");
  bytes_from_backends_ =
      scope.GetCounter("nagano_dispatch_backend_bytes_in_total",
                       "response bytes proxied from backends");

  backends_.reserve(backends.size());
  for (size_t i = 0; i < backends.size(); ++i) {
    auto b = std::make_unique<Backend>();
    b->addr = std::move(backends[i]);
    if (b->addr.name.empty()) b->addr.name = "b" + std::to_string(i);
    b->site = instance_ + "/" + b->addr.name;
    metrics::Labels labels = scope.With("backend", b->addr.name);
    b->requests = scope.registry->GetCounter(
        "nagano_dispatch_backend_requests_total", labels,
        "requests proxied to this backend");
    b->errors = scope.registry->GetCounter(
        "nagano_dispatch_backend_errors_total", labels,
        "proxy attempts against this backend that failed");
    b->weight_gauge =
        scope.registry->GetGauge("nagano_dispatch_backend_weight", labels,
                                 "advisor-computed routing weight");
    http::HttpClient::Options probe_opts;
    probe_opts.connect_timeout = options_.probe_timeout;
    probe_opts.io_timeout = options_.probe_timeout;
    b->prober = std::make_unique<http::HttpClient>(b->addr.host, b->addr.port,
                                                   probe_opts);
    backends_.push_back(std::move(b));
  }

  server_ = std::make_unique<http::HttpServer>(
      [this](const http::HttpRequest& request, http::ConnectionContext& ctx) {
        return Proxy(request, ctx);
      },
      options_.http);
}

Dispatcher::~Dispatcher() { Stop(); }

Status Dispatcher::Start() {
  if (running_.exchange(true)) return Status::Ok();
  // Prime weights synchronously so the first accepted connection has a
  // routable backend instead of a startup 503.
  ProbeAll();
  if (Status s = server_->Start(); !s.ok()) {
    running_.store(false);
    return s;
  }
  {
    std::lock_guard<std::mutex> lock(advisor_mutex_);
    advisor_stop_ = false;
  }
  advisor_ = std::thread([this] { AdvisorLoop(); });
  return Status::Ok();
}

void Dispatcher::Stop() {
  if (!running_.exchange(false)) return;
  server_->Stop();
  {
    std::lock_guard<std::mutex> lock(advisor_mutex_);
    advisor_stop_ = true;
  }
  advisor_cv_.notify_all();
  if (advisor_.joinable()) advisor_.join();
}

uint16_t Dispatcher::port() const { return server_->port(); }

int Dispatcher::PickBackend(Rng& rng, int exclude) const {
  struct Candidate {
    size_t index;
    double weight;
  };
  Candidate candidates[8];
  size_t n = 0;
  double total = 0.0;
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (static_cast<int>(i) == exclude) continue;
    const Backend& b = *backends_[i];
    if (b.state.load(std::memory_order_relaxed) != BackendState::kUp) continue;
    if (!b.healthy.load(std::memory_order_relaxed)) continue;
    const double w = b.weight.load(std::memory_order_relaxed);
    if (w <= 0.0) continue;
    if (n < std::size(candidates)) {
      candidates[n++] = {i, w};
      total += w;
    }
  }
  if (n == 0) return -1;
  if (n == 1) return static_cast<int>(candidates[0].index);

  auto draw = [&]() -> const Candidate& {
    double r = rng.NextDouble() * total;
    for (size_t i = 0; i < n; ++i) {
      r -= candidates[i].weight;
      if (r < 0.0) return candidates[i];
    }
    return candidates[n - 1];
  };
  const Candidate& a = draw();
  const Candidate& b = draw();
  if (a.index == b.index) return static_cast<int>(a.index);
  // Two weighted draws, then break the tie toward the emptier queue: the
  // power-of-two-choices guard against herding onto one heavy weight.
  const double load_a =
      double(backends_[a.index]->inflight.load(std::memory_order_relaxed)) /
      a.weight;
  const double load_b =
      double(backends_[b.index]->inflight.load(std::memory_order_relaxed)) /
      b.weight;
  return static_cast<int>(load_a <= load_b ? a.index : b.index);
}

Result<http::HttpResponse> Dispatcher::Forward(
    Backend& backend, http::HttpClient& client,
    const http::HttpRequest& request) {
  if (fault::ActiveWindow(options_.faults, "dispatch", backend.site,
                          "backend")) {
    client.Close();
    return UnavailableError(backend.addr.name + " is down (outage window)");
  }
  if (!client.connected()) {
    if (Status s = fault::Check(options_.faults, "dispatch", backend.site,
                                "connect");
        !s.ok()) {
      return s;
    }
  }
  if (Status s =
          fault::Check(options_.faults, "dispatch", backend.site, "proxy_write");
      !s.ok()) {
    client.Close();
    return s;
  }
  Result<http::HttpResponse> result = client.Roundtrip(request);
  if (!result.ok()) return result;
  if (Status s =
          fault::Check(options_.faults, "dispatch", backend.site, "proxy_read");
      !s.ok()) {
    client.Close();
    return s;
  }
  return result;
}

http::HttpResponse Dispatcher::Proxy(const http::HttpRequest& request,
                                     http::ConnectionContext& ctx) {
  requests_->Increment();
  if (request.Path() == "/dispatchz") return DispatchzPage();

  // Per-reactor-thread draw stream; the seed offset keeps threads unrelated.
  static std::atomic<uint64_t> thread_counter{0};
  thread_local Rng rng(options_.seed + 0x9e3779b97f4a7c15ULL *
                                           (1 + thread_counter.fetch_add(1)));

  // The forwarded request: hop-by-hop connection management stays between
  // dispatcher and backend, so the client's Connection header must not leak
  // through (a "Connection: close" would tear down the pooled socket).
  http::HttpRequest forwarded = request;
  forwarded.headers.erase("Connection");
  forwarded.headers.erase("Keep-Alive");

  auto lease = std::static_pointer_cast<Lease>(ctx.user);
  if (lease != nullptr) {
    const Backend& pinned = *backends_[lease->backend];
    if (lease->epoch != pinned.epoch.load(std::memory_order_acquire) ||
        pinned.state.load(std::memory_order_relaxed) == BackendState::kOut ||
        !pinned.healthy.load(std::memory_order_relaxed)) {
      lease = nullptr;
      ctx.user = nullptr;
    }
  }

  int exclude = -1;
  Status last_error = Status::Ok();
  for (size_t attempt = 0; attempt <= options_.failover_attempts; ++attempt) {
    if (lease == nullptr) {
      const int pick = PickBackend(rng, exclude);
      if (pick < 0) {
        no_backend_->Increment();
        return http::HttpResponse::ServiceUnavailable("no routable backend");
      }
      auto fresh = std::make_shared<Lease>();
      fresh->backend = static_cast<size_t>(pick);
      fresh->epoch =
          backends_[pick]->epoch.load(std::memory_order_acquire);
      http::HttpClient::Options copts;
      copts.connect_timeout = options_.connect_timeout;
      copts.io_timeout = options_.io_timeout;
      fresh->client = std::make_unique<http::HttpClient>(
          backends_[pick]->addr.host, backends_[pick]->addr.port, copts);
      lease = fresh;
      ctx.user = fresh;
    }

    Backend& b = *backends_[lease->backend];
    b.inflight.fetch_add(1, std::memory_order_acq_rel);
    const TimeNs t0 = SteadyNow();
    Result<http::HttpResponse> result = Forward(b, *lease->client, forwarded);
    const TimeNs elapsed = SteadyNow() - t0;
    b.inflight.fetch_sub(1, std::memory_order_acq_rel);

    if (result.ok()) {
      b.requests->Increment();
      b.obs_ok.fetch_add(1, std::memory_order_relaxed);
      b.obs_lat_ns.fetch_add(static_cast<uint64_t>(std::max<TimeNs>(elapsed, 0)),
                             std::memory_order_relaxed);
      bytes_to_backends_->Increment(lease->client->last_sent_bytes());
      bytes_from_backends_->Increment(lease->client->last_received_bytes());

      http::HttpResponse response = std::move(result.value());
      // The backend's keep-alive decision is hop-by-hop too; the front end
      // decides the client side from the client's own request.
      response.headers.erase("Connection");
      response.headers["X-Nagano-Backend"] = b.addr.name;
      if (!response.body.empty() && response.body_ref == nullptr &&
          response.body_chunks.empty()) {
        // Hand the body to the reactor's writev path by reference so the
        // front never counts a body copy for proxied pages.
        response.body_ref =
            std::make_shared<const std::string>(std::move(response.body));
        response.body.clear();
      }
      return response;
    }

    // Failed attempt: eject the backend from routing until the advisor's
    // next successful probe re-admits it, drop the pin, try elsewhere.
    last_error = result.status();
    b.errors->Increment();
    b.obs_err.fetch_add(1, std::memory_order_relaxed);
    b.healthy.store(false, std::memory_order_relaxed);
    exclude = static_cast<int>(lease->backend);
    lease = nullptr;
    ctx.user = nullptr;
    if (attempt < options_.failover_attempts) failovers_->Increment();
  }

  proxy_errors_->Increment();
  http::HttpResponse response;
  response.status = 502;
  response.reason = "Bad Gateway";
  response.body = "every backend attempt failed: " + last_error.ToString();
  response.headers["Content-Type"] = "text/plain";
  return response;
}

void Dispatcher::ProbeAll() {
  for (auto& owned : backends_) {
    Backend& b = *owned;
    if (b.reset_ewma.exchange(false, std::memory_order_acq_rel)) {
      b.ewma_primed = false;
      b.lat_ewma_ms.store(0.0, std::memory_order_relaxed);
      b.err_ewma.store(0.0, std::memory_order_relaxed);
    }

    bool probe_ok = false;
    double probe_lat_ms = 0.0;
    if (!fault::Check(options_.faults, "dispatch", b.site, "probe").ok()) {
      probe_failures_->Increment();
    } else if (fault::ActiveWindow(options_.faults, "dispatch", b.site,
                                   "backend")) {
      probe_failures_->Increment();
      b.prober->Close();
    } else {
      const TimeNs t0 = SteadyNow();
      Result<http::HttpResponse> r = b.prober->Get("/healthz");
      probe_ok = r.ok() && r.value().status == 200;
      if (probe_ok) {
        probe_lat_ms = double(SteadyNow() - t0) / double(kMillisecond);
      } else {
        probe_failures_->Increment();
      }
    }

    // Fold the live proxy-path observations since the last pass; the probe
    // itself stands in when the backend carried no traffic.
    const uint64_t ok = b.obs_ok.exchange(0, std::memory_order_acq_rel);
    const uint64_t err = b.obs_err.exchange(0, std::memory_order_acq_rel);
    const uint64_t lat_ns = b.obs_lat_ns.exchange(0, std::memory_order_acq_rel);
    const double err_sample =
        (ok + err) > 0 ? double(err) / double(ok + err) : (probe_ok ? 0.0 : 1.0);
    const double lat_sample =
        ok > 0 ? double(lat_ns) / double(ok) / double(kMillisecond)
               : probe_lat_ms;
    double lat_ewma = b.lat_ewma_ms.load(std::memory_order_relaxed);
    double err_ewma = b.err_ewma.load(std::memory_order_relaxed);
    if (!b.ewma_primed) {
      lat_ewma = lat_sample;
      err_ewma = err_sample;
      b.ewma_primed = probe_ok || (ok + err) > 0;
    } else {
      if (ok > 0 || probe_ok) {
        lat_ewma = options_.latency_alpha * lat_sample +
                   (1.0 - options_.latency_alpha) * lat_ewma;
      }
      err_ewma = options_.error_alpha * err_sample +
                 (1.0 - options_.error_alpha) * err_ewma;
    }
    b.lat_ewma_ms.store(lat_ewma, std::memory_order_relaxed);
    b.err_ewma.store(err_ewma, std::memory_order_relaxed);

    b.healthy.store(probe_ok, std::memory_order_relaxed);
    double weight = 0.0;
    if (probe_ok &&
        b.state.load(std::memory_order_relaxed) == BackendState::kUp) {
      weight = std::max(0.01, 1.0 - err_ewma) / (0.5 + std::max(0.0, lat_ewma));
    }
    b.weight.store(weight, std::memory_order_relaxed);
    b.weight_gauge->Set(weight);
  }
}

void Dispatcher::AdvisorLoop() {
  std::unique_lock<std::mutex> lock(advisor_mutex_);
  while (!advisor_stop_) {
    advisor_cv_.wait_for(lock,
                         std::chrono::nanoseconds(options_.probe_interval),
                         [this] { return advisor_stop_; });
    if (advisor_stop_) break;
    lock.unlock();
    ProbeAll();
    lock.lock();
  }
}

Status Dispatcher::Drain(size_t backend) {
  if (backend >= backends_.size()) {
    return InvalidArgumentError("no such backend");
  }
  Backend& b = *backends_[backend];
  BackendState expected = BackendState::kUp;
  if (!b.state.compare_exchange_strong(expected, BackendState::kDraining)) {
    return FailedPreconditionError(b.addr.name + " is not up (" +
                                   std::string(BackendStateName(expected)) +
                                   ")");
  }
  drains_->Increment();
  // No new assignments from this moment; pinned keep-alive connections keep
  // using the backend through the grace period.
  b.weight.store(0.0, std::memory_order_relaxed);
  b.weight_gauge->Set(0.0);
  if (options_.drain_grace > 0) SleepNs(options_.drain_grace);
  // The lazy unpin: pinned leases see the stale epoch on their next request
  // and re-pick. Client connections are never touched.
  b.epoch.fetch_add(1, std::memory_order_acq_rel);
  const TimeNs deadline = SteadyNow() + options_.drain_deadline;
  while (b.inflight.load(std::memory_order_acquire) > 0) {
    if (SteadyNow() > deadline) {
      return UnavailableError(b.addr.name +
                              " still has in-flight requests at the drain "
                              "deadline");
    }
    SleepNs(kMillisecond);
  }
  b.state.store(BackendState::kOut, std::memory_order_release);
  return Status::Ok();
}

Status Dispatcher::Reinstate(size_t backend) {
  if (backend >= backends_.size()) {
    return InvalidArgumentError("no such backend");
  }
  Backend& b = *backends_[backend];
  // Forget the previous incarnation: stale pins, stale EWMA history, and a
  // possibly half-open probe socket all belong to the process that left.
  b.epoch.fetch_add(1, std::memory_order_acq_rel);
  b.reset_ewma.store(true, std::memory_order_release);
  b.state.store(BackendState::kUp, std::memory_order_release);
  return Status::Ok();
}

Status Dispatcher::WaitHealthy(size_t backend, TimeNs timeout) {
  if (backend >= backends_.size()) {
    return InvalidArgumentError("no such backend");
  }
  const Backend& b = *backends_[backend];
  const TimeNs deadline = SteadyNow() + timeout;
  for (;;) {
    if (b.state.load(std::memory_order_relaxed) == BackendState::kUp &&
        b.healthy.load(std::memory_order_relaxed) &&
        b.weight.load(std::memory_order_relaxed) > 0.0) {
      return Status::Ok();
    }
    if (SteadyNow() > deadline) {
      return UnavailableError(b.addr.name + " not healthy within timeout");
    }
    SleepNs(2 * kMillisecond);
  }
}

BackendSnapshot Dispatcher::snapshot(size_t backend) const {
  const Backend& b = *backends_[backend];
  BackendSnapshot snap;
  snap.name = b.addr.name;
  snap.host = b.addr.host;
  snap.port = b.addr.port;
  snap.state = b.state.load(std::memory_order_relaxed);
  snap.healthy = b.healthy.load(std::memory_order_relaxed);
  snap.weight = b.weight.load(std::memory_order_relaxed);
  snap.latency_ewma_ms = b.lat_ewma_ms.load(std::memory_order_relaxed);
  snap.error_ewma = b.err_ewma.load(std::memory_order_relaxed);
  snap.inflight = static_cast<uint64_t>(
      std::max<int64_t>(0, b.inflight.load(std::memory_order_relaxed)));
  snap.requests = b.requests->value();
  snap.errors = b.errors->value();
  return snap;
}

std::vector<BackendSnapshot> Dispatcher::snapshots() const {
  std::vector<BackendSnapshot> out;
  out.reserve(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) out.push_back(snapshot(i));
  return out;
}

DispatcherStats Dispatcher::stats() const {
  DispatcherStats s;
  s.requests = requests_->value();
  s.failovers = failovers_->value();
  s.no_backend = no_backend_->value();
  s.proxy_errors = proxy_errors_->value();
  s.drains = drains_->value();
  s.probe_failures = probe_failures_->value();
  s.bytes_to_backends = bytes_to_backends_->value();
  s.bytes_from_backends = bytes_from_backends_->value();
  return s;
}

http::HttpResponse Dispatcher::DispatchzPage() const {
  std::string body = "dispatcher " + instance_ + "\n";
  for (const BackendSnapshot& b : snapshots()) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-12s %s:%u state=%-8s healthy=%d weight=%.4f "
                  "lat_ewma=%.3fms err_ewma=%.4f inflight=%" PRIu64
                  " requests=%" PRIu64 " errors=%" PRIu64 "\n",
                  b.name.c_str(), b.host.c_str(), unsigned(b.port),
                  std::string(BackendStateName(b.state)).c_str(),
                  int(b.healthy), b.weight, b.latency_ewma_ms, b.error_ewma,
                  b.inflight, b.requests, b.errors);
    body += line;
  }
  http::HttpResponse response = http::HttpResponse::Ok(std::move(body));
  response.headers["Content-Type"] = "text/plain";
  return response;
}

}  // namespace nagano::dispatch
