#include "dispatch/cluster.h"

#include <chrono>
#include <thread>
#include <utility>

namespace nagano::dispatch {

Status ClusterOptions::Validate() const {
  if (backends == 0) {
    return InvalidArgumentError("cluster needs at least one backend");
  }
  if (wal_root.empty()) {
    return InvalidArgumentError("wal_root is required (warm restart recovers "
                                "each backend from its own log)");
  }
  if (front_reactors == 0) {
    return InvalidArgumentError("front_reactors must be >= 1");
  }
  return Status::Ok();
}

DispatcherCluster::DispatcherCluster(ClusterOptions options)
    : options_(std::move(options)) {
  ValidateOrDie(options_, "ClusterOptions");
  metrics::Scope scope = metrics::Scope::Resolve(options_.metrics, "dcluster");
  registry_ = scope.registry;
  instance_ = scope.labels.empty() ? "dcluster" : scope.labels[0].second;
  nodes_.reserve(options_.backends);
  for (size_t i = 0; i < options_.backends; ++i) {
    auto node = std::make_unique<Node>();
    node->name = "b" + std::to_string(i);
    nodes_.push_back(std::move(node));
  }
}

DispatcherCluster::~DispatcherCluster() { Stop(); }

wal::WalOptions DispatcherCluster::WalOptionsFor(const Node& node) const {
  wal::WalOptions wal_options;
  wal_options.dir = options_.wal_root + "/" + node.name;
  wal_options.faults = options_.faults;
  wal_options.metrics.registry = registry_;
  wal_options.metrics.instance = instance_ + "/" + node.name + "-wal";
  return wal_options;
}

core::SiteOptions DispatcherCluster::SiteOptionsFor(const Node& node) const {
  core::SiteOptions site_options;
  site_options.olympic = options_.olympic;
  site_options.trigger.worker_threads = 1;
  site_options.faults = options_.faults;
  site_options.metrics.registry = registry_;
  site_options.metrics.instance = instance_ + "/" + node.name;
  return site_options;
}

Status DispatcherCluster::StartNode(Node& node, bool warm) {
  auto wal_or = wal::WriteAheadLog::Open(WalOptionsFor(node));
  if (!wal_or.ok()) return wal_or.status();
  node.wal = std::move(wal_or.value());

  core::SiteOptions site_options = SiteOptionsFor(node);
  site_options.wal = node.wal.get();
  auto site_or = warm ? core::ServingSite::WarmRestart(std::move(site_options))
                      : core::ServingSite::Create(std::move(site_options));
  if (!site_or.ok()) return site_or.status();
  node.site = std::move(site_or.value());
  if (warm) {
    // Standalone catch-up: the node's own WAL carried every commit it ever
    // applied, so the recovered watermark is the target.
    node.site->SetCatchUpTarget(node.site->db().LastSeqno());
  }
  if (auto prefetched = node.site->PrefetchAll(); !prefetched.ok()) {
    return prefetched.status();
  }
  node.site->StartTrigger();

  server::FrontEndOptions front_options;
  front_options.http.port = node.port;  // 0 on first launch, pinned after
  front_options.http.metrics.registry = registry_;
  front_options.http.metrics.instance = instance_ + "/" + node.name + "-http";
  auto front = std::make_unique<server::HttpFrontEnd>(&node.site->page_server(),
                                                      std::move(front_options));
  front->EnableAdmin(registry_,
                     [site = node.site.get()] { return site->Health(); });
  if (Status s = front->Start(); !s.ok()) return s;
  node.front = std::move(front);
  node.port = node.front->port();
  return Status::Ok();
}

Status DispatcherCluster::Start() {
  if (started_) return Status::Ok();
  for (auto& node : nodes_) {
    if (Status s = StartNode(*node, /*warm=*/false); !s.ok()) return s;
  }
  std::vector<BackendAddress> addresses;
  addresses.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    addresses.push_back({"127.0.0.1", node->port, node->name});
  }
  DispatcherOptions dispatch_options = options_.dispatch;
  dispatch_options.faults = options_.faults;
  dispatch_options.metrics.registry = registry_;
  dispatch_options.metrics.instance = instance_;
  dispatch_options.http.reactors = options_.front_reactors;
  dispatcher_ =
      std::make_unique<Dispatcher>(std::move(addresses), dispatch_options);
  if (Status s = dispatcher_->Start(); !s.ok()) return s;
  started_ = true;
  return Status::Ok();
}

void DispatcherCluster::Stop() {
  if (!started_) return;
  started_ = false;
  if (dispatcher_ != nullptr) dispatcher_->Stop();
  for (auto& node : nodes_) {
    if (node->front != nullptr) node->front->Stop();
    if (node->site != nullptr) node->site->StopTrigger();
  }
}

Status DispatcherCluster::RecordResultAll(int64_t event_id, int64_t rank,
                                          int64_t athlete_id, double score) {
  for (const auto& node : nodes_) {
    if (node->site == nullptr) {
      return FailedPreconditionError(
          node->name + " is mid-restart; the feed must stay quiet until it "
                       "rejoins (no replication tree in this harness)");
    }
  }
  for (auto& node : nodes_) {
    if (Status s =
            node->site->RecordResult(event_id, rank, athlete_id, score);
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

void DispatcherCluster::QuiesceAll() {
  for (auto& node : nodes_) {
    if (node->site != nullptr) node->site->Quiesce();
  }
}

Status DispatcherCluster::KillBackend(size_t i) {
  if (i >= nodes_.size()) return InvalidArgumentError("no such backend");
  Node& node = *nodes_[i];
  if (node.site == nullptr || node.front == nullptr) {
    return FailedPreconditionError(node.name + " is already down");
  }
  node.front->Stop();
  node.front.reset();
  node.site->StopTrigger();
  node.site.reset();
  node.wal.reset();
  return Status::Ok();
}

Status DispatcherCluster::ReviveBackend(size_t i) {
  if (i >= nodes_.size()) return InvalidArgumentError("no such backend");
  Node& node = *nodes_[i];
  if (node.site != nullptr) {
    return FailedPreconditionError(node.name + " is not down");
  }
  if (Status s = StartNode(node, /*warm=*/true); !s.ok()) return s;
  if (Status s = dispatcher_->Reinstate(i); !s.ok()) return s;
  return dispatcher_->WaitHealthy(i, 5 * kSecond);
}

Status DispatcherCluster::RollingRestart(size_t i) {
  if (i >= nodes_.size()) return InvalidArgumentError("no such backend");
  Node& node = *nodes_[i];
  if (!started_ || node.site == nullptr || node.front == nullptr) {
    return FailedPreconditionError(node.name + " is not serving");
  }

  // 1. Announce: /healthz starts failing, so the advisor stops assigning
  //    new connections within one probe interval.
  node.site->SetDraining(true);
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(2 * options_.dispatch.probe_interval));

  // 2. Clean drain at the front tier — pinned keep-alive connections finish
  //    their in-flight requests; none are aborted.
  if (Status s = dispatcher_->Drain(i); !s.ok()) {
    node.site->SetDraining(false);
    (void)dispatcher_->Reinstate(i);
    return s;
  }

  // 3. Take the node down. The WAL handle closes with the site's pipeline
  //    stopped, leaving a clean (or deliberately torn, under fault
  //    injection) log for recovery.
  node.site->StopTrigger();
  node.front->Stop();
  node.front.reset();
  node.site.reset();
  node.wal.reset();

  // 4. Warm restart from the log, on the same port.
  if (Status s = StartNode(node, /*warm=*/true); !s.ok()) return s;
  if (!node.site->CaughtUp()) {
    return InternalError(node.name + " failed to catch up from its own WAL");
  }

  // 5. Back into rotation.
  if (Status s = dispatcher_->Reinstate(i); !s.ok()) return s;
  if (Status s = dispatcher_->WaitHealthy(i, 5 * kSecond); !s.ok()) return s;
  ++restarts_;
  return Status::Ok();
}

}  // namespace nagano::dispatch
