// Access logging and log analysis.
//
// Every §5 number in the paper came from web logs ("the total number of
// hits ... were both determined by independent organizations which audited
// the Web logs"). This module gives the reproduction the same shape: the
// serving path appends compact per-request records, and LogAnalyzer
// derives the evaluation series — hits by day/hour, bytes, per-page top-N,
// serve-class breakdown, peak minute — from the log rather than from live
// counters, so figures can be rebuilt after the fact and cross-checked.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/intern.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "server/serving.h"

namespace nagano::server {

// One served request. 32 bytes + the interned page id keeps a games-scale
// log (hundreds of millions of records at full scale; millions here)
// cheap.
struct AccessRecord {
  TimeNs at = 0;             // completion time
  uint32_t page_id = 0;      // interned page name
  uint16_t region = 0;       // workload region index (0xffff = unknown)
  ServeClass cls = ServeClass::kNotFound;
  uint32_t bytes = 0;
  uint32_t response_us = 0;  // client-observed response time, microseconds
};

class AccessLog {
 public:
  AccessLog() : AccessLog(metrics::Options{}) {}
  explicit AccessLog(const metrics::Options& metrics_options);

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  // Appends one record. Thread-safe.
  void Append(TimeNs at, std::string_view page, ServeClass cls, size_t bytes,
              TimeNs response_time, uint16_t region = 0xffff);

  size_t size() const;
  // Snapshot of the records (copy; the analyzer works on snapshots).
  std::vector<AccessRecord> Snapshot() const;
  // The page name for a record's page_id.
  std::string_view PageName(uint32_t page_id) const;

  void Clear();

 private:
  mutable std::mutex mutex_;
  StringInterner pages_;
  std::vector<AccessRecord> records_;
  // Records whose fields exceeded their compact-width range and were clamped
  // to the maximum (response_us saturates at ~71.6 minutes). A nonzero count
  // means the audit figures under-report tail latency / bytes.
  metrics::Counter* field_clamps_;
};

// Aggregations over a log snapshot — the §5 audit.
class LogAnalyzer {
 public:
  // `epoch` is the timestamp of Day 1, 00:00; slots are derived from it.
  LogAnalyzer(const AccessLog& log, TimeNs epoch = 0);

  uint64_t TotalHits() const { return records_.size(); }
  uint64_t TotalBytes() const;

  // Hits per games day (day 1 = slot 0).
  TimeSeries HitsByDay(int days) const;
  // Hits per hour-of-day, all days folded together (Fig. 18).
  TimeSeries HitsByHour() const;
  // Bytes per games day (Fig. 21).
  TimeSeries BytesByDay(int days) const;

  // The busiest single minute: (minute index since epoch, hits) — the
  // Guinness-record measurement.
  std::pair<int64_t, uint64_t> PeakMinute() const;

  // Hit/miss/static/etc. counts.
  std::map<ServeClass, uint64_t> ByServeClass() const;
  double DynamicHitRate() const;

  // Top-N pages by hits: (page name, hits), descending.
  std::vector<std::pair<std::string, uint64_t>> TopPages(size_t n) const;

  // Response-time distribution in seconds, optionally one region only.
  Histogram ResponseSeconds(int region = -1) const;

 private:
  const AccessLog& log_;
  TimeNs epoch_;
  std::vector<AccessRecord> records_;
};

}  // namespace nagano::server
