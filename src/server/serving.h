// The dynamic-page serving path (paper §2, Fig. 6).
//
// "When a request for a dynamic page is received, the server program
// invoked to satisfy the request first determines if the page is cached.
// If so, the cached page is returned. Otherwise, the program must generate
// the page in order to satisfy the request [and] decide whether or not to
// cache the newly generated page."
//
// DynamicPageServer is that server program, invoked through an in-process
// FastCGI-like interface rather than CGI (the paper rejects CGI for its
// per-request process overhead). It is transport-independent: HttpFrontEnd
// adapts it to the real epoll HTTP server, and the cluster simulator calls
// Serve() directly with simulated time.
//
// Cost model (paper §2): a static page costs 2-10 ms of CPU; an uncached
// dynamic page "several orders of magnitude more"; a cached dynamic page is
// served "at roughly the same rate as static pages". Serve() reports the
// modeled CPU cost of each request so the simulator can charge it to a
// node, and the THRU bench measures the real cost too.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/object_cache.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "http/message.h"
#include "http/server.h"
#include "pagegen/renderer.h"

namespace nagano::server {

struct CostModel {
  TimeNs static_page = FromMillis(5);          // 2-10 ms in the paper
  TimeNs cached_dynamic = FromMillis(5);       // ≈ static
  TimeNs generate_dynamic = FromMillis(500);   // ~2 orders of magnitude more
  TimeNs not_found = FromMillis(1);
};

enum class ServeClass : uint8_t {
  kStatic,
  kCacheHit,
  kCacheMissGenerated,
  // Generation failed (or the cache path was down) and the last-known-good
  // cached copy was served instead — §4.2's elegant degradation applied to
  // content freshness. HTTP layer marks these X-Cache: STALE plus an
  // X-Nagano-Stale age header.
  kDegradedStale,
  kNotFound,
  kError,
  // Shed by admission control: the render queue was full (or the deadline
  // already spent) and no last-known-good copy existed to degrade to. HTTP
  // layer answers 503 with a Retry-After hint.
  kRejected,
};

struct ServeOutcome {
  ServeClass cls = ServeClass::kNotFound;
  TimeNs cpu_cost = 0;    // modeled CPU charge
  size_t bytes = 0;       // response body size
  // Owned body copy. Cached sources (static/hit/stale) fill it only when
  // include_body was requested — the zero-copy HTTP path reads body_ref
  // instead. Freshly generated pages always land here (moving them is
  // free; there is no shared copy to reference).
  std::string body;
  // Zero-copy handles into the page's backing store, set whenever the
  // source is ref-counted (static pages, cache hits, degraded stale):
  // the entity bytes and the pre-serialized "Content-Length/..." header
  // prefix. They alias the cached object, so the page stays alive until
  // the last holder (e.g. an in-flight socket write) drops it.
  std::shared_ptr<const std::string> body_ref;
  // Scatter-gather alternative to body_ref, set when the cached source is a
  // composition plan: one ref per chunk (static text aliasing the plan
  // object, fragment bytes aliasing the pinned fragment snapshot), in body
  // order. The HTTP layer splices them straight into the socket write queue
  // — a composed page is served with zero body copies, same as a flat one.
  // Mutually exclusive with body_ref.
  std::vector<std::shared_ptr<const std::string>> body_chunks;
  std::shared_ptr<const std::string> entity_headers;
  uint32_t retries = 0;   // transparent retry attempts beyond the first
  TimeNs stale_age = 0;   // kDegradedStale: age of the copy served
  Status error;           // kError / kDegradedStale / kRejected: what failed
  // This request joined another request's in-flight render instead of
  // running its own (single-flight coalescing). The body_ref it carries is
  // the same ref-counted object every other participant got.
  bool coalesced = false;
  // kRejected: how long the client should back off before retrying —
  // roughly one render's worth of queue drain. HttpFrontEnd rounds it up
  // into the Retry-After header.
  TimeNs retry_after = 0;
};

struct ServeStats {
  uint64_t static_hits = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t not_found = 0;
  uint64_t errors = 0;
  uint64_t stale_serves = 0;        // degraded last-known-good responses
  uint64_t retries = 0;             // backoff retries taken
  uint64_t deadline_exceeded = 0;   // retry budgets cut short by a deadline
  uint64_t coalesced = 0;           // requests that joined an in-flight render
  uint64_t coalesce_timeouts = 0;   // waiters whose own deadline expired first
  uint64_t shed = 0;                // kRejected responses (admission control)
  uint64_t shed_softened = 0;       // sheds answered stale instead of 503
  uint64_t renders_cancelled = 0;   // renders abandoned: every waiter expired

  uint64_t total() const {
    return static_hits + cache_hits + cache_misses + not_found + errors +
           stale_serves + shed;
  }
  double CacheHitRate() const {
    const uint64_t dynamic = cache_hits + cache_misses;
    return dynamic == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(dynamic);
  }
};

// Bounded retry with exponential backoff + jitter, applied to transient
// (IsTransient) generation failures. Backoff sleeps are real only when
// sleep_on_backoff is set; under SimClock the schedule is still consulted
// for deadline math but nothing blocks.
struct RetryOptions : OptionsBase {
  uint32_t max_attempts = 3;            // total tries, including the first
  TimeNs initial_backoff = FromMillis(10);
  double multiplier = 2.0;
  TimeNs max_backoff = FromMillis(200);
  double jitter = 0.2;                  // backoff scaled by U[1-j, 1+j]

  Status Validate() const;
};

class DynamicPageServer {
 public:
  struct Options : OptionsBase {
    CostModel costs;
    // Pages the program declines to cache (per-request personalization in a
    // real deployment). Prefix match; empty = cache everything.
    std::vector<std::string> never_cache_prefixes;

    // Retry policy for transient generation failures.
    RetryOptions retry;
    // Deadline budget applied when Serve() is called without an explicit
    // deadline. 0 = unbounded.
    TimeNs default_deadline = 0;
    // When generation fails outright (retries exhausted or deadline hit),
    // serve the cache's last-known-good copy as kDegradedStale instead of
    // kError. Needs the cache constructed with retain_stale to also cover
    // invalidated entries.
    bool serve_stale_on_error = true;
    // Single-flight render coalescing: when N requests miss on the same
    // cacheable key concurrently, one render runs and every participant
    // shares the resulting ref-counted body. Never applies to
    // never_cache_prefixes pages (each one is personalized by definition).
    bool coalesce_renders = true;
    // Admission control: maximum renders in flight at once (coalesced
    // flights count once, however many waiters share them). A miss that
    // cannot start a render is shed — preferably softened to the
    // last-known-good stale copy, else kRejected (HTTP 503 + Retry-After).
    // 0 = unbounded (admission control off).
    size_t max_concurrent_renders = 0;
    // Actually sleep the backoff schedule (live deployments). Off by
    // default so simulations and tests never block.
    bool sleep_on_backoff = false;
    // Deadline + staleness clock. nullptr = RealClock.
    const Clock* clock = nullptr;
    // Seed for the backoff jitter stream (deterministic per server).
    uint64_t backoff_seed = 0x7365727665ULL;  // "serve"

    // Registry + instance label for the nagano_serve_* metrics.
    metrics::Options metrics;

    Status Validate() const;
  };

  DynamicPageServer(cache::ObjectCache* cache, pagegen::PageRenderer* renderer)
      : DynamicPageServer(cache, renderer, Options()) {}
  DynamicPageServer(cache::ObjectCache* cache, pagegen::PageRenderer* renderer,
                    Options options);

  // Registers an in-memory static file (the paper's file-system pages).
  void AddStaticPage(std::string path, std::string body);

  // Attaches an access log (see access_log.h); every Serve() appends one
  // record stamped with `clock`. Pass nullptr to detach. Not owned.
  void SetAccessLog(class AccessLog* log, const Clock* clock = nullptr);

  // Serves one page. `include_body` false lets the simulator skip the body
  // copy on its hot path. `deadline` is an absolute time on the server's
  // clock bounding retries (0 = apply default_deadline, if any); it is the
  // propagation target for HttpFrontEnd's per-request budget.
  ServeOutcome Serve(std::string_view path, bool include_body = true,
                     TimeNs deadline = 0);

  ServeStats stats() const;
  const CostModel& costs() const { return options_.costs; }

 private:
  // One in-flight render that concurrent same-key misses attach to. The
  // leader (the request that created the flight) renders; waiters block on
  // `cv` and adopt the published outcome, whose body travels by body_ref so
  // the whole fan-out shares one ref-counted copy.
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    ServeOutcome outcome;  // published by the leader; body via body_ref only
    // Deadline horizon: the latest deadline across every participant. When
    // the clock passes it (and no participant is unbounded) the leader
    // abandons the render — nobody is left who could use the result.
    TimeNs horizon = 0;
    bool unbounded = false;  // some participant has no deadline
  };

  ServeOutcome ServeInternal(std::string_view path, bool include_body,
                             TimeNs deadline);
  bool ShouldCache(std::string_view path) const;
  // Generation with bounded retry; fills retries on the outcome. When
  // `flight` is set, the retry schedule is bounded by the flight's deadline
  // horizon (which waiters may extend) instead of the leader's own deadline.
  Result<std::string> GenerateWithRetry(std::string_view path, TimeNs deadline,
                                        uint32_t* retries,
                                        Flight* flight = nullptr);
  // The degraded fallback: last-known-good copy, or kError when there is
  // none (or the policy is off).
  ServeOutcome DegradeToStale(std::string_view path, bool include_body,
                              Status error);
  // Admission-controlled render of a cacheable page: join an in-flight
  // render as a waiter, or lead a new one. Returns the final outcome for
  // this request (generated / degraded / rejected).
  ServeOutcome RenderCoalesced(std::string_view path, bool include_body,
                               TimeNs deadline);
  // Leads one render (admission slot already held) and publishes the
  // outcome to `flight` if non-null.
  ServeOutcome LeadRender(std::string_view path, bool include_body,
                          TimeNs deadline, Flight* flight);
  // Blocks until the flight publishes, or this waiter's own deadline
  // expires; adopts the shared outcome.
  ServeOutcome AwaitFlight(const std::shared_ptr<Flight>& flight,
                           std::string_view path, bool include_body,
                           TimeNs deadline);
  // Admission control: reserve/release one of max_concurrent_renders slots.
  bool TryAdmitRender();
  void ReleaseRender();
  // Shed one request: soften to the last-known-good stale copy when
  // possible, else kRejected with a Retry-After hint.
  ServeOutcome Shed(std::string_view path, bool include_body, Status why);
  // Bump the per-class counter for an outcome adopted from a flight (the
  // leader's own counters were bumped when the outcome was produced).
  void CountAdopted(const ServeOutcome& outcome);

  cache::ObjectCache* cache_;
  pagegen::PageRenderer* renderer_;
  Options options_;
  const Clock* clock_;
  class AccessLog* access_log_ = nullptr;
  const Clock* log_clock_ = nullptr;

  // Static pages are stored as ref-counted CachedObjects (body + the same
  // pre-serialized entity-header prefix the cache builds) so the serving
  // path hands them out by reference exactly like a cache hit.
  std::mutex static_mutex_;
  std::map<std::string, std::shared_ptr<const cache::CachedObject>,
           std::less<>>
      static_pages_;

  std::mutex backoff_mutex_;
  Rng backoff_rng_;

  // In-flight renders by page key. Entries are removed before the outcome
  // is published, so a request arriving after completion starts fresh (and
  // normally just hits the cache).
  std::mutex flights_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  // Renders currently running (leaders + uncoalesced), for admission.
  std::atomic<size_t> active_renders_{0};

  // Registry cells behind the legacy stats() view.
  metrics::Counter* static_hits_;
  metrics::Counter* cache_hits_;
  metrics::Counter* cache_misses_;
  metrics::Counter* not_found_;
  metrics::Counter* errors_;
  metrics::Counter* stale_serves_;
  metrics::Counter* retries_;
  metrics::Counter* deadline_exceeded_;
  metrics::Counter* coalesced_;
  metrics::Counter* coalesce_timeouts_;
  metrics::Counter* shed_;
  metrics::Counter* shed_softened_;
  metrics::Counter* renders_cancelled_;
  metrics::Histogram* coalesce_wait_ms_;
};

// One site-health verdict for /healthz: overall up/down plus the reasons a
// probe failed (empty when healthy).
struct HealthReport {
  bool ok = true;
  std::vector<std::string> problems;
};

using HealthCheck = std::function<HealthReport()>;

struct FrontEndOptions : OptionsBase {
  http::HttpServer::Options http;
  // Per-request serving budget, propagated as an absolute deadline into
  // DynamicPageServer::Serve (bounding its retry schedule). 0 = unbounded.
  TimeNs request_deadline = 0;
  // Clock the deadline is computed against. nullptr = RealClock.
  const Clock* clock = nullptr;

  Status Validate() const;
};

// Adapts a DynamicPageServer to the epoll HTTP server, and optionally
// exposes the live admin surface:
//   /metrics  Prometheus text exposition (format 0.0.4)
//   /healthz  200 "ok" / 503 with one problem per line
//   /statusz  human-readable per-subsystem snapshot
class HttpFrontEnd {
 public:
  explicit HttpFrontEnd(DynamicPageServer* program,
                        FrontEndOptions options = {});

  // Turns on /metrics, /healthz and /statusz, served from `registry`
  // (nullptr = the process-wide Default()). `health` backs /healthz; with no
  // probe the endpoint always answers 200. Call before Start() — the admin
  // paths shadow any same-named cached page.
  void EnableAdmin(metrics::MetricRegistry* registry = nullptr,
                   HealthCheck health = nullptr);

  Status Start();
  void Stop();
  uint16_t port() const { return server_->port(); }
  http::ServerStats http_stats() const { return server_->stats(); }
  // Per-reactor request totals — the load-balance view (see
  // HttpServer::reactor_requests).
  std::vector<uint64_t> reactor_requests() const {
    return server_->reactor_requests();
  }

 private:
  http::HttpResponse Handle(const http::HttpRequest& request);
  http::HttpResponse HandleAdmin(std::string_view path);

  DynamicPageServer* program_;
  TimeNs request_deadline_;
  const Clock* clock_;
  metrics::MetricRegistry* admin_registry_ = nullptr;  // null = admin off
  HealthCheck health_;
  std::unique_ptr<http::HttpServer> server_;
};

}  // namespace nagano::server
