#include "server/serving.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <thread>

#include "server/access_log.h"

namespace nagano::server {
namespace {

// Copies the shared entity bytes into out.body (include_body callers only):
// one string copy from body_ref, or the chunk concatenation for plans.
void CopySharedBody(ServeOutcome& out) {
  if (out.body_ref != nullptr) {
    out.body = *out.body_ref;
    return;
  }
  if (out.body_chunks.empty()) return;
  size_t total = 0;
  for (const auto& chunk : out.body_chunks) total += chunk->size();
  out.body.reserve(total);
  for (const auto& chunk : out.body_chunks) out.body += *chunk;
}

// Fills the zero-copy handles of `out` from a cached object: flat entries
// travel as a single body_ref, composition plans as one ref per chunk.
void FillCachedEntity(ServeOutcome& out,
                      const std::shared_ptr<const cache::CachedObject>& obj,
                      bool include_body) {
  out.bytes = obj->entity_size();
  out.entity_headers = cache::EntityHeadersRef(obj);
  if (obj->is_plan()) {
    out.body_chunks = cache::BodyChunkRefs(obj);
  } else {
    out.body_ref = cache::BodyRef(obj);
  }
  if (include_body) CopySharedBody(out);
}

}  // namespace

Status RetryOptions::Validate() const {
  if (max_attempts == 0) {
    return InvalidArgumentError("RetryOptions.max_attempts must be >= 1");
  }
  if (initial_backoff < 0 || max_backoff < 0) {
    return InvalidArgumentError("RetryOptions backoffs must be >= 0");
  }
  if (multiplier < 1.0) {
    return InvalidArgumentError("RetryOptions.multiplier must be >= 1");
  }
  if (jitter < 0.0 || jitter > 1.0) {
    return InvalidArgumentError("RetryOptions.jitter must be in [0, 1]");
  }
  return Status::Ok();
}

Status DynamicPageServer::Options::Validate() const {
  if (Status s = retry.Validate(); !s.ok()) return s;
  if (default_deadline < 0) {
    return InvalidArgumentError(
        "DynamicPageServer::Options.default_deadline must be >= 0");
  }
  return Status::Ok();
}

DynamicPageServer::DynamicPageServer(cache::ObjectCache* cache,
                                     pagegen::PageRenderer* renderer,
                                     Options options)
    : cache_(cache),
      renderer_(renderer),
      options_((ValidateOrDie(options, "DynamicPageServer::Options"),
                std::move(options))),
      clock_(options_.clock ? options_.clock : &RealClock::Instance()),
      backoff_rng_(options_.backoff_seed) {
  assert(cache_ && renderer_);
  const auto scope = metrics::Scope::Resolve(options_.metrics, "serve");
  static_hits_ = scope.GetCounter("nagano_serve_static_hits_total",
                                  "requests answered from the static file set");
  cache_hits_ = scope.GetCounter("nagano_serve_cache_hits_total",
                                 "dynamic requests answered from cache");
  cache_misses_ = scope.GetCounter("nagano_serve_cache_misses_total",
                                   "dynamic requests that forced generation");
  not_found_ =
      scope.GetCounter("nagano_serve_not_found_total", "requests with no page");
  errors_ =
      scope.GetCounter("nagano_serve_errors_total", "requests that failed");
  stale_serves_ = scope.GetCounter(
      "nagano_serve_stale_total",
      "degraded responses served from the last-known-good cached copy");
  retries_ = scope.GetCounter("nagano_serve_retries_total",
                              "transient generation failures retried");
  deadline_exceeded_ =
      scope.GetCounter("nagano_serve_deadline_exceeded_total",
                       "retry budgets cut short by the request deadline");
  coalesced_ = scope.GetCounter(
      "nagano_serve_coalesced_total",
      "requests that joined another request's in-flight render");
  coalesce_timeouts_ = scope.GetCounter(
      "nagano_serve_coalesce_timeout_total",
      "coalesced waiters whose own deadline expired before the render");
  shed_ = scope.GetCounter(
      "nagano_serve_shed_total",
      "requests rejected by admission control (no stale copy to soften to)");
  shed_softened_ = scope.GetCounter(
      "nagano_serve_shed_softened_total",
      "admission-control sheds answered with the last-known-good stale copy");
  renders_cancelled_ = scope.GetCounter(
      "nagano_serve_renders_cancelled_total",
      "coalesced renders abandoned after every participant's deadline expired");
  coalesce_wait_ms_ = scope.GetHistogram(
      "nagano_serve_coalesce_wait_ms",
      "time a coalesced waiter spent blocked on the shared render");
}

void DynamicPageServer::AddStaticPage(std::string path, std::string body) {
  auto obj = std::make_shared<cache::CachedObject>();
  obj->body = std::move(body);
  obj->entity_headers =
      "Content-Length: " + std::to_string(obj->body.size()) + "\r\n";
  std::lock_guard<std::mutex> lock(static_mutex_);
  static_pages_[std::move(path)] = std::move(obj);
}

bool DynamicPageServer::ShouldCache(std::string_view path) const {
  for (const auto& prefix : options_.never_cache_prefixes) {
    if (path.starts_with(prefix)) return false;
  }
  return true;
}

void DynamicPageServer::SetAccessLog(AccessLog* log, const Clock* clock) {
  access_log_ = log;
  log_clock_ = clock ? clock : &RealClock::Instance();
}

ServeOutcome DynamicPageServer::Serve(std::string_view path, bool include_body,
                                      TimeNs deadline) {
  if (deadline == 0 && options_.default_deadline > 0) {
    deadline = clock_->Now() + options_.default_deadline;
  }
  ServeOutcome out = ServeInternal(path, include_body, deadline);
  if (access_log_ != nullptr) {
    access_log_->Append(log_clock_->Now(), path, out.cls, out.bytes,
                        out.cpu_cost);
  }
  return out;
}

Result<std::string> DynamicPageServer::GenerateWithRetry(std::string_view path,
                                                         TimeNs deadline,
                                                         uint32_t* retries,
                                                         Flight* flight) {
  const RetryOptions& retry = options_.retry;
  TimeNs backoff = retry.initial_backoff;
  Status last = InternalError("no attempt made");
  for (uint32_t attempt = 0; attempt < retry.max_attempts; ++attempt) {
    auto body = ShouldCache(path) ? renderer_->RenderAndCache(path)
                                  : renderer_->RenderOnly(path);
    if (body.ok()) return body;
    last = body.status();
    // kNotFound is a stable answer and anything non-transient is a bug or
    // a hard failure: retrying either just burns the deadline.
    if (!IsTransient(last)) return last;
    if (attempt + 1 >= retry.max_attempts) break;

    TimeNs pause = backoff;
    if (retry.jitter > 0.0 && pause > 0) {
      std::lock_guard<std::mutex> lock(backoff_mutex_);
      const double scale =
          1.0 - retry.jitter + 2.0 * retry.jitter * backoff_rng_.NextDouble();
      pause = static_cast<TimeNs>(static_cast<double>(pause) * scale);
    }
    // A coalesced flight's horizon may have grown since the last attempt
    // (new waiters joined) — refresh it before deciding whether to go on.
    // When the horizon has passed, every participant's deadline has
    // expired: the render is abandoned, not just this request's budget.
    TimeNs effective = deadline;
    if (flight != nullptr) {
      std::lock_guard<std::mutex> lock(flight->mutex);
      effective = flight->unbounded ? 0 : flight->horizon;
    }
    if (effective != 0 && clock_->Now() + pause >= effective) {
      deadline_exceeded_->Increment();
      if (flight != nullptr) renders_cancelled_->Increment();
      break;
    }
    if (options_.sleep_on_backoff && pause > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(pause));
    }
    backoff = std::min<TimeNs>(
        retry.max_backoff,
        static_cast<TimeNs>(static_cast<double>(backoff) * retry.multiplier));
    ++*retries;
    retries_->Increment();
  }
  return last;
}

ServeOutcome DynamicPageServer::DegradeToStale(std::string_view path,
                                               bool include_body,
                                               Status error) {
  ServeOutcome out;
  out.error = error;
  if (options_.serve_stale_on_error) {
    if (auto stale = cache_->LookupStale(path)) {
      stale_serves_->Increment();
      out.cls = ServeClass::kDegradedStale;
      out.cpu_cost = options_.costs.cached_dynamic;
      out.stale_age = std::max<TimeNs>(0, clock_->Now() - stale->stored_at);
      FillCachedEntity(out, stale, include_body);
      return out;
    }
  }
  errors_->Increment();
  out.cls = ServeClass::kError;
  out.cpu_cost = options_.costs.not_found;
  return out;
}

bool DynamicPageServer::TryAdmitRender() {
  const size_t limit = options_.max_concurrent_renders;
  if (limit == 0) {
    active_renders_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  size_t current = active_renders_.load(std::memory_order_relaxed);
  while (current < limit) {
    if (active_renders_.compare_exchange_weak(current, current + 1,
                                              std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void DynamicPageServer::ReleaseRender() {
  active_renders_.fetch_sub(1, std::memory_order_relaxed);
}

ServeOutcome DynamicPageServer::Shed(std::string_view path, bool include_body,
                                     Status why) {
  ServeOutcome out;
  // Stale-if-error beats rejection: a viewer with a slightly old page is
  // better off than a viewer with a 503 (the paper's availability-first
  // stance, extended to overload).
  if (options_.serve_stale_on_error) {
    if (auto stale = cache_->LookupStale(path)) {
      stale_serves_->Increment();
      shed_softened_->Increment();
      out.cls = ServeClass::kDegradedStale;
      out.cpu_cost = options_.costs.cached_dynamic;
      out.stale_age = std::max<TimeNs>(0, clock_->Now() - stale->stored_at);
      out.error = std::move(why);
      FillCachedEntity(out, stale, include_body);
      return out;
    }
  }
  shed_->Increment();
  out.cls = ServeClass::kRejected;
  out.cpu_cost = options_.costs.not_found;
  out.error = std::move(why);
  // Retry after roughly one render's worth of queue drain.
  out.retry_after = options_.costs.generate_dynamic;
  return out;
}

void DynamicPageServer::CountAdopted(const ServeOutcome& outcome) {
  switch (outcome.cls) {
    case ServeClass::kStatic:
      static_hits_->Increment();
      break;
    case ServeClass::kCacheHit:
      cache_hits_->Increment();
      break;
    case ServeClass::kCacheMissGenerated:
      cache_misses_->Increment();
      break;
    case ServeClass::kDegradedStale:
      stale_serves_->Increment();
      break;
    case ServeClass::kNotFound:
      not_found_->Increment();
      break;
    case ServeClass::kError:
      errors_->Increment();
      break;
    case ServeClass::kRejected:
      shed_->Increment();
      break;
  }
}

ServeOutcome DynamicPageServer::RenderCoalesced(std::string_view path,
                                                bool include_body,
                                                TimeNs deadline) {
  std::string key(path);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      // Join the in-flight render; our deadline extends its horizon.
      flight = it->second;
      std::lock_guard<std::mutex> flight_lock(flight->mutex);
      if (deadline == 0) {
        flight->unbounded = true;
      } else {
        flight->horizon = std::max(flight->horizon, deadline);
      }
    } else if (TryAdmitRender()) {
      flight = std::make_shared<Flight>();
      if (deadline == 0) {
        flight->unbounded = true;
      } else {
        flight->horizon = deadline;
      }
      flights_.emplace(std::move(key), flight);
      leader = true;
    }
  }
  if (flight == nullptr) {
    return Shed(path, include_body,
                ResourceExhaustedError("render queue full"));
  }
  if (leader) return LeadRender(path, include_body, deadline, flight.get());
  return AwaitFlight(flight, path, include_body, deadline);
}

ServeOutcome DynamicPageServer::LeadRender(std::string_view path,
                                           bool include_body, TimeNs deadline,
                                           Flight* flight) {
  ServeOutcome out;
  auto body = GenerateWithRetry(path, deadline, &out.retries, flight);
  ReleaseRender();
  if (body.ok()) {
    cache_misses_->Increment();
    out.cls = ServeClass::kCacheMissGenerated;
    out.cpu_cost = options_.costs.generate_dynamic;
    out.bytes = body.value().size();
    // Serve by reference: RenderAndCache just stored the page, so alias the
    // cached object and the whole fan-out — leader, waiters, and the HTTP
    // write path — shares one ref-counted copy (misses are zero-copy too).
    // A composed page arrives as per-chunk refs, same as a cache hit.
    if (auto cached = cache_->Peek(path)) {
      FillCachedEntity(out, cached, /*include_body=*/false);
    } else {
      // A concurrent invalidation dropped the entry between store and
      // publish: wrap the rendered body so the fan-out still shares refs.
      auto owned =
          std::make_shared<const std::string>(std::move(body).value());
      auto headers = std::make_shared<const std::string>(
          "Content-Length: " + std::to_string(owned->size()) + "\r\n");
      out.body_ref = std::move(owned);
      out.entity_headers = std::move(headers);
    }
  } else if (body.status().code() == ErrorCode::kNotFound) {
    not_found_->Increment();
    out.cls = ServeClass::kNotFound;
    out.cpu_cost = options_.costs.not_found;
  } else {
    const uint32_t retries = out.retries;
    out = DegradeToStale(path, include_body, body.status());
    out.retries = retries;
  }
  // Publish: drop the map entry first so post-completion arrivals start
  // fresh (they normally just hit the cache), then wake the waiters.
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    flights_.erase(std::string(path));
  }
  {
    std::lock_guard<std::mutex> flight_lock(flight->mutex);
    ServeOutcome shared = out;
    shared.body.clear();  // waiters copy from body_ref only if asked to
    flight->outcome = std::move(shared);
    flight->done = true;
  }
  flight->cv.notify_all();
  if (include_body && out.body.empty()) CopySharedBody(out);
  return out;
}

ServeOutcome DynamicPageServer::AwaitFlight(
    const std::shared_ptr<Flight>& flight, std::string_view path,
    bool include_body, TimeNs deadline) {
  coalesced_->Increment();
  const TimeNs wait_start = clock_->Now();
  bool timed_out = false;
  std::unique_lock<std::mutex> lock(flight->mutex);
  while (!flight->done) {
    if (deadline != 0 && clock_->Now() >= deadline) {
      timed_out = true;
      break;
    }
    // Slice the wait so a deadline (possibly on a clock nobody notifies
    // about) is noticed promptly; publication wakes us via notify_all.
    flight->cv.wait_for(lock, std::chrono::milliseconds(5));
  }
  ServeOutcome out;
  if (!timed_out) {
    out = flight->outcome;  // body empty; the refs are shared
    lock.unlock();
    CountAdopted(out);
    if (include_body) CopySharedBody(out);
  } else {
    lock.unlock();
    coalesce_timeouts_->Increment();
    out = DegradeToStale(
        path, include_body,
        UnavailableError("coalesced render missed the request deadline"));
  }
  out.coalesced = true;
  coalesce_wait_ms_->Observe(
      static_cast<double>(clock_->Now() - wait_start) / 1e6);
  return out;
}

ServeOutcome DynamicPageServer::ServeInternal(std::string_view path,
                                              bool include_body,
                                              TimeNs deadline) {
  ServeOutcome out;

  // 1. Static file system.
  {
    std::lock_guard<std::mutex> lock(static_mutex_);
    auto it = static_pages_.find(path);
    if (it != static_pages_.end()) {
      static_hits_->Increment();
      out.cls = ServeClass::kStatic;
      out.cpu_cost = options_.costs.static_page;
      FillCachedEntity(out, it->second, include_body);
      return out;
    }
  }

  // 2. Dynamic page cache. A transient lookup error (the cache path is
  // down) is NOT a miss: fall through to generation, which may still work.
  if (ShouldCache(path)) {
    auto cached = cache_->TryLookup(path);
    if (cached.ok()) {
      cache_hits_->Increment();
      out.cls = ServeClass::kCacheHit;
      out.cpu_cost = options_.costs.cached_dynamic;
      FillCachedEntity(out, cached.value(), include_body);
      return out;
    }
  }

  // 3. Generate (and usually cache) the page, retrying transient failures
  // within the deadline.
  if (renderer_->CanGenerate(path)) {
    // Deadline-aware early rejection: when admission control is on and the
    // budget is already spent, shed now instead of burning a render slot on
    // a response nobody can use.
    if (options_.max_concurrent_renders > 0 && deadline != 0 &&
        clock_->Now() >= deadline) {
      return Shed(path, include_body,
                  UnavailableError("deadline spent before render started"));
    }
    if (options_.coalesce_renders && ShouldCache(path)) {
      return RenderCoalesced(path, include_body, deadline);
    }
    // Uncoalesced render (coalescing off, or a personalized never-cache
    // page): every request renders for itself but still holds a slot.
    if (!TryAdmitRender()) {
      return Shed(path, include_body,
                  ResourceExhaustedError("render queue full"));
    }
    auto body = GenerateWithRetry(path, deadline, &out.retries);
    ReleaseRender();
    if (body.ok()) {
      cache_misses_->Increment();
      out.cls = ServeClass::kCacheMissGenerated;
      out.cpu_cost = options_.costs.generate_dynamic;
      out.bytes = body.value().size();
      // The freshly rendered page is ours to give away — moving it is free,
      // so the body travels regardless of include_body (there is no shared
      // copy the caller could reference instead).
      out.body = std::move(body).value();
      return out;
    }
    if (body.status().code() != ErrorCode::kNotFound) {
      // 4. Retries exhausted: elegant degradation — last-known-good copy
      // over a 500.
      const uint32_t retries = out.retries;
      out = DegradeToStale(path, include_body, body.status());
      out.retries = retries;
      return out;
    }
  }

  not_found_->Increment();
  out.cls = ServeClass::kNotFound;
  out.cpu_cost = options_.costs.not_found;
  return out;
}

ServeStats DynamicPageServer::stats() const {
  ServeStats s;
  s.static_hits = static_hits_->value();
  s.cache_hits = cache_hits_->value();
  s.cache_misses = cache_misses_->value();
  s.not_found = not_found_->value();
  s.errors = errors_->value();
  s.stale_serves = stale_serves_->value();
  s.retries = retries_->value();
  s.deadline_exceeded = deadline_exceeded_->value();
  s.coalesced = coalesced_->value();
  s.coalesce_timeouts = coalesce_timeouts_->value();
  s.shed = shed_->value();
  s.shed_softened = shed_softened_->value();
  s.renders_cancelled = renders_cancelled_->value();
  return s;
}

Status FrontEndOptions::Validate() const {
  if (Status s = http.Validate(); !s.ok()) return s;
  if (request_deadline < 0) {
    return InvalidArgumentError("FrontEndOptions.request_deadline must be >= 0");
  }
  return Status::Ok();
}

HttpFrontEnd::HttpFrontEnd(DynamicPageServer* program, FrontEndOptions options)
    : program_(program),
      request_deadline_((ValidateOrDie(options, "FrontEndOptions"),
                         options.request_deadline)),
      clock_(options.clock ? options.clock : &RealClock::Instance()),
      server_(std::make_unique<http::HttpServer>(
          [this](const http::HttpRequest& request) { return Handle(request); },
          std::move(options.http))) {
  assert(program_);
}

void HttpFrontEnd::EnableAdmin(metrics::MetricRegistry* registry,
                               HealthCheck health) {
  admin_registry_ = registry ? registry : &metrics::MetricRegistry::Default();
  health_ = std::move(health);
}

Status HttpFrontEnd::Start() { return server_->Start(); }
void HttpFrontEnd::Stop() { server_->Stop(); }

http::HttpResponse HttpFrontEnd::HandleAdmin(std::string_view path) {
  http::HttpResponse r;
  if (path == "/metrics") {
    r.status = 200;
    r.reason = "OK";
    r.headers["Content-Type"] = "text/plain; version=0.0.4; charset=utf-8";
    r.body = admin_registry_->RenderPrometheus();
    return r;
  }
  if (path == "/healthz") {
    HealthReport report = health_ ? health_() : HealthReport{};
    r.status = report.ok ? 200 : 503;
    r.reason = report.ok ? "OK" : "Service Unavailable";
    r.headers["Content-Type"] = "text/plain; charset=utf-8";
    if (report.ok) {
      r.body = "ok\n";
    } else {
      for (const std::string& problem : report.problems) {
        r.body += problem;
        r.body += '\n';
      }
      if (r.body.empty()) r.body = "unhealthy\n";
    }
    return r;
  }
  // /statusz
  r.status = 200;
  r.reason = "OK";
  r.headers["Content-Type"] = "text/plain; charset=utf-8";
  r.body = admin_registry_->RenderStatusz();
  return r;
}

http::HttpResponse HttpFrontEnd::Handle(const http::HttpRequest& request) {
  if (request.method != "GET" && request.method != "HEAD") {
    http::HttpResponse r;
    r.status = 405;
    r.reason = "Method Not Allowed";
    return r;
  }
  const std::string path = request.Path();  // Path() returns by value
  if (admin_registry_ != nullptr &&
      (path == "/metrics" || path == "/healthz" || path == "/statusz")) {
    http::HttpResponse r = HandleAdmin(path);
    if (request.method == "HEAD") r.body.clear();
    return r;
  }
  const TimeNs deadline =
      request_deadline_ > 0 ? clock_->Now() + request_deadline_ : 0;
  // include_body=false: cached sources answer with body_ref/entity_headers
  // aliased into the cached object (the zero-copy hit path); generated
  // pages arrive moved into outcome.body either way.
  ServeOutcome outcome =
      program_->Serve(request.Path(), /*include_body=*/false, deadline);
  const auto fill_entity = [&request, &outcome](http::HttpResponse& r) {
    if (request.method == "HEAD") return;  // keep Content-Length: 0
    if (outcome.body_ref != nullptr || !outcome.body_chunks.empty()) {
      r.body_ref = std::move(outcome.body_ref);
      r.body_chunks = std::move(outcome.body_chunks);
      r.header_ref = std::move(outcome.entity_headers);
    } else {
      r.body = std::move(outcome.body);
    }
  };
  switch (outcome.cls) {
    case ServeClass::kStatic:
    case ServeClass::kCacheHit:
    case ServeClass::kCacheMissGenerated: {
      auto r = http::HttpResponse::Ok(std::string());
      fill_entity(r);
      r.headers["X-Cache"] =
          outcome.cls == ServeClass::kCacheHit ? "HIT"
          : outcome.cls == ServeClass::kStatic ? "STATIC"
                                               : "MISS";
      if (outcome.coalesced) r.headers["X-Nagano-Coalesced"] = "1";
      return r;
    }
    case ServeClass::kDegradedStale: {
      // Last-known-good copy: still a 200 (the viewer gets a page, per the
      // paper's availability-first stance) but labeled so clients and tests
      // can tell.
      auto r = http::HttpResponse::Ok(std::string());
      fill_entity(r);
      r.headers["X-Cache"] = "STALE";
      char age[32];
      std::snprintf(age, sizeof(age), "%.3f",
                    static_cast<double>(outcome.stale_age) / 1e9);
      r.headers["X-Nagano-Stale"] = age;
      if (outcome.coalesced) r.headers["X-Nagano-Coalesced"] = "1";
      return r;
    }
    case ServeClass::kNotFound:
      return http::HttpResponse::NotFound();
    case ServeClass::kError:
      return http::HttpResponse::ServerError();
    case ServeClass::kRejected: {
      // Shed by admission control: tell the client when the render queue
      // should have drained enough to be worth another try.
      auto r = http::HttpResponse::ServiceUnavailable("overloaded\n");
      const TimeNs hint = std::max<TimeNs>(outcome.retry_after, 1);
      r.headers["Retry-After"] =
          std::to_string((hint + kSecond - 1) / kSecond);
      return r;
    }
  }
  return http::HttpResponse::ServerError("unreachable");
}

}  // namespace nagano::server
