#include "server/serving.h"

#include <cassert>

#include "server/access_log.h"

namespace nagano::server {

DynamicPageServer::DynamicPageServer(cache::ObjectCache* cache,
                                     pagegen::PageRenderer* renderer,
                                     Options options)
    : cache_(cache), renderer_(renderer), options_(std::move(options)) {
  assert(cache_ && renderer_);
  const auto scope = metrics::Scope::Resolve(options_.metrics, "serve");
  static_hits_ = scope.GetCounter("nagano_serve_static_hits_total",
                                  "requests answered from the static file set");
  cache_hits_ = scope.GetCounter("nagano_serve_cache_hits_total",
                                 "dynamic requests answered from cache");
  cache_misses_ = scope.GetCounter("nagano_serve_cache_misses_total",
                                   "dynamic requests that forced generation");
  not_found_ =
      scope.GetCounter("nagano_serve_not_found_total", "requests with no page");
  errors_ =
      scope.GetCounter("nagano_serve_errors_total", "requests that failed");
}

void DynamicPageServer::AddStaticPage(std::string path, std::string body) {
  std::lock_guard<std::mutex> lock(static_mutex_);
  static_pages_[std::move(path)] = std::move(body);
}

bool DynamicPageServer::ShouldCache(std::string_view path) const {
  for (const auto& prefix : options_.never_cache_prefixes) {
    if (path.starts_with(prefix)) return false;
  }
  return true;
}

void DynamicPageServer::SetAccessLog(AccessLog* log, const Clock* clock) {
  access_log_ = log;
  log_clock_ = clock ? clock : &RealClock::Instance();
}

ServeOutcome DynamicPageServer::Serve(std::string_view path,
                                      bool include_body) {
  ServeOutcome out = ServeInternal(path, include_body);
  if (access_log_ != nullptr) {
    access_log_->Append(log_clock_->Now(), path, out.cls, out.bytes,
                        out.cpu_cost);
  }
  return out;
}

ServeOutcome DynamicPageServer::ServeInternal(std::string_view path,
                                              bool include_body) {
  ServeOutcome out;

  // 1. Static file system.
  {
    std::lock_guard<std::mutex> lock(static_mutex_);
    auto it = static_pages_.find(path);
    if (it != static_pages_.end()) {
      static_hits_->Increment();
      out.cls = ServeClass::kStatic;
      out.cpu_cost = options_.costs.static_page;
      out.bytes = it->second.size();
      if (include_body) out.body = it->second;
      return out;
    }
  }

  // 2. Dynamic page cache.
  if (ShouldCache(path)) {
    if (auto cached = cache_->Lookup(path)) {
      cache_hits_->Increment();
      out.cls = ServeClass::kCacheHit;
      out.cpu_cost = options_.costs.cached_dynamic;
      out.bytes = cached->body.size();
      if (include_body) out.body = cached->body;
      return out;
    }
  }

  // 3. Generate (and usually cache) the page.
  if (renderer_->CanGenerate(path)) {
    auto body = ShouldCache(path) ? renderer_->RenderAndCache(path)
                                  : renderer_->RenderOnly(path);
    if (body.ok()) {
      cache_misses_->Increment();
      out.cls = ServeClass::kCacheMissGenerated;
      out.cpu_cost = options_.costs.generate_dynamic;
      out.bytes = body.value().size();
      if (include_body) out.body = std::move(body).value();
      return out;
    }
    if (body.status().code() != ErrorCode::kNotFound) {
      errors_->Increment();
      out.cls = ServeClass::kError;
      out.cpu_cost = options_.costs.not_found;
      return out;
    }
  }

  not_found_->Increment();
  out.cls = ServeClass::kNotFound;
  out.cpu_cost = options_.costs.not_found;
  return out;
}

ServeStats DynamicPageServer::stats() const {
  ServeStats s;
  s.static_hits = static_hits_->value();
  s.cache_hits = cache_hits_->value();
  s.cache_misses = cache_misses_->value();
  s.not_found = not_found_->value();
  s.errors = errors_->value();
  return s;
}

HttpFrontEnd::HttpFrontEnd(DynamicPageServer* program,
                           http::HttpServer::Options options)
    : program_(program),
      server_(std::make_unique<http::HttpServer>(
          [this](const http::HttpRequest& request) { return Handle(request); },
          std::move(options))) {
  assert(program_);
}

void HttpFrontEnd::EnableAdmin(metrics::MetricRegistry* registry,
                               HealthCheck health) {
  admin_registry_ = registry ? registry : &metrics::MetricRegistry::Default();
  health_ = std::move(health);
}

Status HttpFrontEnd::Start() { return server_->Start(); }
void HttpFrontEnd::Stop() { server_->Stop(); }

http::HttpResponse HttpFrontEnd::HandleAdmin(std::string_view path) {
  http::HttpResponse r;
  if (path == "/metrics") {
    r.status = 200;
    r.reason = "OK";
    r.headers["Content-Type"] = "text/plain; version=0.0.4; charset=utf-8";
    r.body = admin_registry_->RenderPrometheus();
    return r;
  }
  if (path == "/healthz") {
    HealthReport report = health_ ? health_() : HealthReport{};
    r.status = report.ok ? 200 : 503;
    r.reason = report.ok ? "OK" : "Service Unavailable";
    r.headers["Content-Type"] = "text/plain; charset=utf-8";
    if (report.ok) {
      r.body = "ok\n";
    } else {
      for (const std::string& problem : report.problems) {
        r.body += problem;
        r.body += '\n';
      }
      if (r.body.empty()) r.body = "unhealthy\n";
    }
    return r;
  }
  // /statusz
  r.status = 200;
  r.reason = "OK";
  r.headers["Content-Type"] = "text/plain; charset=utf-8";
  r.body = admin_registry_->RenderStatusz();
  return r;
}

http::HttpResponse HttpFrontEnd::Handle(const http::HttpRequest& request) {
  if (request.method != "GET" && request.method != "HEAD") {
    http::HttpResponse r;
    r.status = 405;
    r.reason = "Method Not Allowed";
    return r;
  }
  const std::string path = request.Path();  // Path() returns by value
  if (admin_registry_ != nullptr &&
      (path == "/metrics" || path == "/healthz" || path == "/statusz")) {
    http::HttpResponse r = HandleAdmin(path);
    if (request.method == "HEAD") r.body.clear();
    return r;
  }
  ServeOutcome outcome = program_->Serve(request.Path(), /*include_body=*/true);
  switch (outcome.cls) {
    case ServeClass::kStatic:
    case ServeClass::kCacheHit:
    case ServeClass::kCacheMissGenerated: {
      auto r = http::HttpResponse::Ok(request.method == "HEAD"
                                          ? std::string()
                                          : std::move(outcome.body));
      r.headers["X-Cache"] =
          outcome.cls == ServeClass::kCacheHit ? "HIT"
          : outcome.cls == ServeClass::kStatic ? "STATIC"
                                               : "MISS";
      return r;
    }
    case ServeClass::kNotFound:
      return http::HttpResponse::NotFound();
    case ServeClass::kError:
      return http::HttpResponse::ServerError();
  }
  return http::HttpResponse::ServerError("unreachable");
}

}  // namespace nagano::server
