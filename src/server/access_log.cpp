#include "server/access_log.h"

#include <algorithm>

namespace nagano::server {

AccessLog::AccessLog(const metrics::Options& metrics_options) {
  const auto scope = metrics::Scope::Resolve(metrics_options, "access_log");
  field_clamps_ = scope.GetCounter(
      "nagano_access_log_field_clamps_total",
      "records whose bytes/response_us saturated their 32-bit field");
}

void AccessLog::Append(TimeNs at, std::string_view page, ServeClass cls,
                       size_t bytes, TimeNs response_time, uint16_t region) {
  AccessRecord record;
  record.at = at;
  record.page_id = pages_.Intern(page);
  record.region = region;
  record.cls = cls;
  bool clamped = false;
  if (bytes > UINT32_MAX) {
    bytes = UINT32_MAX;
    clamped = true;
  }
  record.bytes = static_cast<uint32_t>(bytes);
  // Saturate instead of wrapping: a response slower than ~71.6 minutes (or a
  // negative duration from a misbehaving clock, pinned to 0) must not alias
  // to a fast one in the audit log.
  TimeNs response_us = response_time / kMicrosecond;
  if (response_us < 0) {
    response_us = 0;
    clamped = true;
  } else if (response_us > static_cast<TimeNs>(UINT32_MAX)) {
    response_us = static_cast<TimeNs>(UINT32_MAX);
    clamped = true;
  }
  record.response_us = static_cast<uint32_t>(response_us);
  if (clamped) field_clamps_->Increment();
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(record);
}

size_t AccessLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::vector<AccessRecord> AccessLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::string_view AccessLog::PageName(uint32_t page_id) const {
  return pages_.Name(page_id);
}

void AccessLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

LogAnalyzer::LogAnalyzer(const AccessLog& log, TimeNs epoch)
    : log_(log), epoch_(epoch), records_(log.Snapshot()) {}

uint64_t LogAnalyzer::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& r : records_) total += r.bytes;
  return total;
}

TimeSeries LogAnalyzer::HitsByDay(int days) const {
  TimeSeries series(static_cast<size_t>(days));
  for (const auto& r : records_) {
    if (r.at < epoch_) continue;  // pre-epoch records are out of scope
    series.Add(static_cast<size_t>((r.at - epoch_) / kDay));
  }
  return series;
}

TimeSeries LogAnalyzer::HitsByHour() const {
  TimeSeries series(24);
  for (const auto& r : records_) {
    if (r.at < epoch_) continue;
    series.Add(static_cast<size_t>(((r.at - epoch_) / kHour) % 24));
  }
  return series;
}

TimeSeries LogAnalyzer::BytesByDay(int days) const {
  TimeSeries series(static_cast<size_t>(days));
  for (const auto& r : records_) {
    if (r.at < epoch_) continue;
    series.Add(static_cast<size_t>((r.at - epoch_) / kDay), r.bytes);
  }
  return series;
}

std::pair<int64_t, uint64_t> LogAnalyzer::PeakMinute() const {
  std::map<int64_t, uint64_t> minutes;
  for (const auto& r : records_) {
    if (r.at < epoch_) continue;
    ++minutes[(r.at - epoch_) / kMinute];
  }
  std::pair<int64_t, uint64_t> best{-1, 0};
  for (const auto& [minute, hits] : minutes) {
    if (hits > best.second) best = {minute, hits};
  }
  return best;
}

std::map<ServeClass, uint64_t> LogAnalyzer::ByServeClass() const {
  std::map<ServeClass, uint64_t> counts;
  for (const auto& r : records_) ++counts[r.cls];
  return counts;
}

double LogAnalyzer::DynamicHitRate() const {
  uint64_t hits = 0, misses = 0;
  for (const auto& r : records_) {
    if (r.cls == ServeClass::kCacheHit) ++hits;
    if (r.cls == ServeClass::kCacheMissGenerated) ++misses;
  }
  const uint64_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

std::vector<std::pair<std::string, uint64_t>> LogAnalyzer::TopPages(
    size_t n) const {
  std::map<uint32_t, uint64_t> counts;
  for (const auto& r : records_) ++counts[r.page_id];
  std::vector<std::pair<std::string, uint64_t>> pages;
  pages.reserve(counts.size());
  for (const auto& [page_id, hits] : counts) {
    pages.emplace_back(std::string(log_.PageName(page_id)), hits);
  }
  std::sort(pages.begin(), pages.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (pages.size() > n) pages.resize(n);
  return pages;
}

Histogram LogAnalyzer::ResponseSeconds(int region) const {
  Histogram histogram;
  for (const auto& r : records_) {
    if (region >= 0 && r.region != region) continue;
    histogram.Add(static_cast<double>(r.response_us) / 1e6);
  }
  return histogram;
}

}  // namespace nagano::server
