#include "core/serving_site.h"

#include <algorithm>
#include <chrono>

namespace nagano::core {

Status SiteOptions::Validate() const {
  if (cache_shards < 1) {
    return InvalidArgumentError("SiteOptions.cache_shards must be >= 1");
  }
  if (db_shards < 1) {
    return InvalidArgumentError("SiteOptions.db_shards must be >= 1");
  }
  if (!shard_wals.empty() && shard_wals.size() != db_shards) {
    return InvalidArgumentError(
        "SiteOptions.shard_wals must be empty or carry one stream per "
        "db shard");
  }
  if (wal != nullptr && !shard_wals.empty()) {
    return InvalidArgumentError(
        "SiteOptions: set wal or shard_wals, not both");
  }
  if (wal != nullptr && db_shards != 1) {
    return InvalidArgumentError(
        "SiteOptions: a sharded database takes shard_wals, not wal");
  }
  if (Status s = trigger.Validate(); !s.ok()) return s;
  if (Status s = retry.Validate(); !s.ok()) return s;
  if (default_deadline < 0) {
    return InvalidArgumentError("SiteOptions.default_deadline must be >= 0");
  }
  return Status::Ok();
}

ServingSite::ServingSite(SiteOptions options)
    : options_(std::move(options)),
      clock_(options_.clock ? options_.clock : &RealClock::Instance()) {}

namespace {

db::DatabaseOptions DbOptionsFor(const SiteOptions& options) {
  db::DatabaseOptions db_options;
  db_options.clock = options.clock ? options.clock : &RealClock::Instance();
  db_options.faults = options.faults;
  db_options.metrics = options.metrics;
  db_options.wal = options.wal;
  db_options.shards = options.db_shards;
  db_options.shard_wals = options.shard_wals;
  db_options.change_log_retention = options.change_log_retention;
  return db_options;
}

}  // namespace

Result<std::unique_ptr<ServingSite>> ServingSite::Create(SiteOptions options) {
  if (Status s = options.Validate(); !s.ok()) return s;
  auto database = std::make_unique<db::Database>(DbOptionsFor(options));
  if (Status s = pagegen::OlympicSite::Build(options.olympic, database.get());
      !s.ok()) {
    return s;
  }
  return CreateAround(std::move(options), std::move(database));
}

Result<std::unique_ptr<ServingSite>> ServingSite::WarmRestart(
    SiteOptions options) {
  if (options.wal == nullptr && options.shard_wals.empty()) {
    return InvalidArgumentError(
        "WarmRestart: SiteOptions.wal (or shard_wals) is required");
  }
  if (Status s = options.Validate(); !s.ok()) return s;
  auto database = std::make_unique<db::Database>(DbOptionsFor(options));
  if (Status s = database->Recover(); !s.ok()) return s;
  auto site = CreateAround(std::move(options), std::move(database));
  if (!site.ok()) return site;
  // The recovered state is only as fresh as the WAL; the site stays
  // not-ready until the caller raises the target to the live master's
  // seqno, catches up through replication, and repopulates the cache.
  site.value()->recovering_.store(true, std::memory_order_release);
  site.value()->catch_up_target_.store(site.value()->db_->LastSeqno(),
                                       std::memory_order_release);
  return site;
}

Result<std::unique_ptr<ServingSite>> ServingSite::CreateAround(
    SiteOptions options, std::unique_ptr<db::Database> database) {
  if (Status s = options.Validate(); !s.ok()) return s;
  if (database == nullptr) {
    return InvalidArgumentError("CreateAround: null database");
  }
  if (!database->HasTable("events")) {
    return FailedPreconditionError(
        "CreateAround: database lacks the Olympic schema");
  }
  std::unique_ptr<ServingSite> site(new ServingSite(std::move(options)));
  site->db_ = std::move(database);

  // Every subsystem registers into the same registry under the same site
  // label (auto-assignment stays per subsystem when the label is empty).
  const metrics::Options& site_metrics = site->options_.metrics;
  site->registry_ = site_metrics.registry ? site_metrics.registry
                                          : &metrics::MetricRegistry::Default();

  site->graph_ = std::make_unique<odg::ObjectDependenceGraph>(site_metrics);

  cache::ObjectCache::Options cache_options;
  cache_options.shards = site->options_.cache_shards;
  cache_options.capacity_bytes = site->options_.cache_capacity_bytes;
  cache_options.retain_stale = site->options_.retain_stale;
  cache_options.clock = site->clock_;
  cache_options.faults = site->options_.faults;
  cache_options.metrics = site_metrics;
  site->cache_ = std::make_unique<cache::ObjectCache>(cache_options);

  pagegen::RendererOptions renderer_options;
  renderer_options.compose_pages = site->options_.compose_pages;
  renderer_options.metrics = site_metrics;
  site->renderer_ = std::make_unique<pagegen::PageRenderer>(
      site->graph_.get(), site->cache_.get(), renderer_options);
  pagegen::OlympicSite::RegisterGenerators(site->options_.olympic,
                                           site->db_.get(),
                                           site->renderer_.get());

  if (site->options_.serving_nodes > 0) {
    cache::ObjectCache::Options node_options;
    node_options.shards = site->options_.cache_shards;
    node_options.clock = site->clock_;
    node_options.metrics = site_metrics;  // fleet appends "/nodeN"
    site->fleet_ = std::make_unique<cache::CacheFleet>(
        site->options_.serving_nodes, node_options);
    site->options_.trigger.fleet = site->fleet_.get();
  }

  db::Database* db_ptr = site->db_.get();
  site->options_.trigger.metrics = site_metrics;
  site->options_.trigger.clock = site->clock_;
  site->options_.trigger.faults = site->options_.faults;
  site->trigger_ = std::make_unique<trigger::TriggerMonitor>(
      db_ptr, site->graph_.get(), site->cache_.get(), site->renderer_.get(),
      [db_ptr](const db::ChangeRecord& change) {
        return pagegen::OlympicSite::MapChangeToDataNodes(change, *db_ptr);
      },
      site->options_.trigger);

  server::DynamicPageServer::Options serve_options;
  serve_options.costs = site->options_.costs;
  serve_options.retry = site->options_.retry;
  serve_options.default_deadline = site->options_.default_deadline;
  serve_options.serve_stale_on_error = site->options_.serve_stale_on_error;
  serve_options.coalesce_renders = site->options_.coalesce_renders;
  serve_options.max_concurrent_renders = site->options_.max_concurrent_renders;
  serve_options.clock = site->clock_;
  serve_options.metrics = site_metrics;
  site->page_server_ = std::make_unique<server::DynamicPageServer>(
      site->cache_.get(), site->renderer_.get(), serve_options);
  if (site->fleet_ != nullptr) {
    server::DynamicPageServer::Options node_serve_options = serve_options;
    for (size_t n = 0; n < site->fleet_->size(); ++n) {
      if (!site_metrics.instance.empty()) {
        node_serve_options.metrics.instance =
            site_metrics.instance + "/node" + std::to_string(n);
      }
      site->node_servers_.push_back(std::make_unique<server::DynamicPageServer>(
          &site->fleet_->node(n), site->renderer_.get(), node_serve_options));
    }
  }

  return site;
}

server::HealthReport ServingSite::Health() const {
  server::HealthReport report;
  if (!trigger_->running()) {
    report.problems.push_back("trigger monitor not running");
  }
  if (cache_->size() == 0) {
    report.problems.push_back("cache empty (site not prefetched)");
  }
  // Quiesce lag: a backlog far past the coalescing window means the trigger
  // monitor is falling behind the feed.
  const uint64_t backlog_bound =
      100 * std::max<uint64_t>(1, options_.trigger.batch_max);
  const uint64_t backlog = trigger_->backlog();
  if (backlog > backlog_bound) {
    report.problems.push_back("trigger backlog " + std::to_string(backlog) +
                              " changes exceeds bound " +
                              std::to_string(backlog_bound));
  }
  // The paper's freshness promise: updates visible within sixty seconds.
  const Histogram propagation = trigger_->stats().propagation_latency_ms;
  if (propagation.count() > 0 && propagation.Percentile(0.99) > 60'000.0) {
    report.problems.push_back("propagation p99 above the 60 s freshness bound");
  }
  // An administratively draining site fails /healthz so the dispatcher
  // advisor stops assigning it new connections ahead of a restart.
  if (draining()) {
    report.problems.push_back("draining: administratively removed from "
                              "rotation");
  }
  // A warm-restarted site is alive but not ready: it must not take traffic
  // (or pass /healthz) until it has caught up to the fleet.
  if (!CaughtUp()) {
    report.problems.push_back(
        "warm restart in progress: recovered seqno " +
        std::to_string(db_->LastSeqno()) + " behind catch-up target " +
        std::to_string(catch_up_target_.load(std::memory_order_acquire)));
  }
  report.ok = report.problems.empty();
  return report;
}

void ServingSite::SetCatchUpTarget(uint64_t seqno) {
  uint64_t prev = catch_up_target_.load(std::memory_order_relaxed);
  while (prev < seqno && !catch_up_target_.compare_exchange_weak(
                             prev, seqno, std::memory_order_release)) {
  }
}

bool ServingSite::CaughtUp() const {
  if (!recovering_.load(std::memory_order_acquire)) return true;
  if (db_->LastSeqno() < catch_up_target_.load(std::memory_order_acquire)) {
    return false;
  }
  if (cache_->size() == 0) return false;  // not yet re-prefetched
  recovering_.store(false, std::memory_order_release);
  return true;
}

ServingSite::~ServingSite() {
  if (trigger_) trigger_->Stop();
}

Result<size_t> ServingSite::PrefetchAll() {
  size_t cached = 0;
  auto prefetch = [&](const std::string& object) -> Status {
    auto body = renderer_->RenderAndCache(object);
    if (!body.ok()) return body.status();
    // Fleet mode: distribute the freshly composed copy to every serving
    // node, as the SMP did to the eight UPs.
    if (fleet_ != nullptr) fleet_->PutAll(object, body.value());
    ++cached;
    return Status::Ok();
  };
  // Fragments first so page renders splice them from the cache.
  for (const std::string& fragment : pagegen::OlympicSite::AllFragmentNames(
           options_.olympic, *db_)) {
    if (Status s = prefetch(fragment); !s.ok()) return s;
  }
  for (const std::string& page :
       pagegen::OlympicSite::AllPageNames(options_.olympic, *db_)) {
    if (Status s = prefetch(page); !s.ok()) return s;
  }
  return cached;
}

void ServingSite::Quiesce() {
  // Capture the seqno before waiting: everything committed before this
  // point is guaranteed applied once the trigger quiesces. Later commits
  // may also land, but this is the bound we can promise.
  const uint64_t committed = db_->LastSeqno();
  trigger_->Quiesce();
  uint64_t prev = last_quiesced_seqno_.load(std::memory_order_relaxed);
  while (prev < committed && !last_quiesced_seqno_.compare_exchange_weak(
                                 prev, committed, std::memory_order_release)) {
  }
}

Result<size_t> ServingSite::VerifyCacheConsistency() {
  size_t checked = 0;
  auto verify_one = [&](const std::string& key,
                        const cache::CachedObject& object) -> Status {
    // The pre-serialized entity prefix travels to clients verbatim on the
    // zero-copy hit path, so it must agree with the entity it rides with —
    // for a composition plan, with the summed chunk lengths.
    const std::string expected_headers =
        "Content-Length: " + std::to_string(object.entity_size()) +
        "\r\nX-Nagano-Version: " + std::to_string(object.version) + "\r\n";
    if (object.entity_headers != expected_headers) {
      return InternalError("entity headers out of sync for: " + key);
    }
    if (object.is_plan()) {
      size_t summed = 0;
      for (const cache::PlanChunk& chunk : object.plan) {
        if (chunk.is_fragment()) {
          if (chunk.source == nullptr) {
            return InternalError("plan for " + key +
                                 " has a fragment chunk with no snapshot: " +
                                 chunk.fragment);
          }
          if (chunk.source->is_plan()) {
            return InternalError("plan for " + key +
                                 " pins a non-flat fragment: " + chunk.fragment);
          }
          // At quiescence no plan may serve a retired snapshot: the chunk
          // must pin the very object the fragment's live entry holds.
          if (cache_->Peek(chunk.fragment) != chunk.source) {
            return InternalError("plan for " + key +
                                 " references a retired snapshot of " +
                                 chunk.fragment);
          }
        }
        summed += chunk.bytes().size();
      }
      if (summed != object.plan_bytes) {
        return InternalError("plan_bytes out of sync for: " + key);
      }
    }
    if (!renderer_->CanGenerate(key)) return Status::Ok();  // foreign entry
    auto fresh = renderer_->RenderOnly(key);
    if (!fresh.ok()) return fresh.status();
    if (fresh.value() != object.Materialize()) {
      return InternalError("stale cache entry: " + key);
    }
    ++checked;
    return Status::Ok();
  };
  // A page's fresh render splices fragments from the cache, so a stale
  // fragment could mask itself in a page comparison — but the fragment's
  // own entry is compared against a direct render too, so any staleness
  // surfaces somewhere in the sweep.
  for (const auto& [key, object] : cache_->Snapshot()) {
    if (Status s = verify_one(key, *object); !s.ok()) return s;
  }
  if (fleet_ != nullptr) {
    if (!fleet_->AllNodesIdentical()) {
      return InternalError("fleet nodes diverged");
    }
    for (const auto& [key, object] : fleet_->node(0).Snapshot()) {
      if (Status s = verify_one(key, *object); !s.ok()) return s;
    }
  }
  return checked;
}

Result<double> ServingSite::MeasureUpdateLatencyMs(int64_t event_id,
                                                   int64_t rank,
                                                   int64_t athlete_id,
                                                   double score) {
  const std::string page = pagegen::OlympicSite::EventPage(event_id);
  auto before = cache_->Peek(page);
  if (before == nullptr) {
    return FailedPreconditionError("event page not cached; prefetch first");
  }
  const uint64_t version_before = before->version;

  const auto start = std::chrono::steady_clock::now();
  if (Status s = RecordResult(event_id, rank, athlete_id, score); !s.ok()) {
    return s;
  }
  Quiesce();
  const auto end = std::chrono::steady_clock::now();

  auto after = cache_->Peek(page);
  if (after == nullptr || after->version <= version_before) {
    return InternalError("event page was not refreshed by the trigger monitor");
  }
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace nagano::core
