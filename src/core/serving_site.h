// ServingSite — the assembled publishing pipeline of paper Fig. 6:
//
//   scoring feed -> database -> trigger monitor -> DUP over the ODG ->
//   page renderer -> object cache -> server program -> clients
//
// One ServingSite models one SP2's triggering/caching/rendering SMP plus
// its cache contents; the cluster simulation replicates its serving
// behaviour across complexes, and HttpFrontEnd (src/server) exposes it
// over real HTTP.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/fleet.h"
#include "cache/object_cache.h"
#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "db/database.h"
#include "odg/graph.h"
#include "pagegen/olympic.h"
#include "pagegen/renderer.h"
#include "server/serving.h"
#include "trigger/trigger_monitor.h"

namespace nagano::core {

struct SiteOptions : OptionsBase {
  pagegen::OlympicConfig olympic;
  trigger::TriggerOptions trigger;
  server::CostModel costs;
  size_t cache_shards = 16;
  size_t cache_capacity_bytes = 0;  // 0 = unbounded, the paper configuration
  // Per-node serving caches behind the composing cache (Fig. 6: eight
  // serving UPs per SP2). 0 = single-cache mode; the trigger monitor then
  // maintains only the composition cache.
  size_t serving_nodes = 0;
  const Clock* clock = nullptr;     // defaults to RealClock
  // Fault injector threaded into every subsystem this site builds (db
  // commit/changes, cache lookup, trigger notify). Null = injection off.
  fault::FaultInjector* faults = nullptr;
  // Durability: when set, the site's database write-ahead-logs every commit
  // into it, and WarmRestart() can rebuild the site from it after a crash.
  // Not owned; must outlive the site. Single-stream convenience; a sharded
  // site (db_shards > 1) uses shard_wals instead.
  wal::WriteAheadLog* wal = nullptr;
  // Storage-tier sharding (db::DatabaseOptions::shards): partitions the
  // site's database into this many independent shards, each with its own
  // change-log sequence — and, when shard_wals is set (one stream per
  // shard, e.g. from wal::OpenShardWals), its own WAL stream and
  // checkpoint image, recovered in parallel by WarmRestart().
  size_t db_shards = 1;
  std::vector<wal::WriteAheadLog*> shard_wals;
  // In-memory change-log retention after checkpoints (db::DatabaseOptions::
  // change_log_retention; 0 = unbounded).
  size_t change_log_retention = 0;
  // Keep invalidated cache entries reachable for degraded serving
  // (ObjectCache retain_stale); pairs with serve_stale_on_error below.
  bool retain_stale = false;
  // Serving-path resilience: bounded retry on transient generation
  // failures, per-request deadline budget, last-known-good fallback.
  server::RetryOptions retry;
  TimeNs default_deadline = 0;      // 0 = unbounded
  bool serve_stale_on_error = true;
  // Stampede defenses (server/serving.h): single-flight coalescing of
  // concurrent same-key misses, and a bound on renders in flight (0 = no
  // admission control).
  bool coalesce_renders = true;
  size_t max_concurrent_renders = 0;
  // Fragment-first composition (pagegen::RendererOptions::compose_pages):
  // pages embedding fragments are cached as composition plans — static
  // chunks + pinned fragment refs — so a fragment commit patches every
  // embedding page in place instead of re-rendering it. Off = whole-page
  // mode, the pre-plan baseline the update bench compares against.
  bool compose_pages = true;
  // Registry + "site" label shared by every subsystem this site builds
  // (cache, trigger, renderer, serving path, ODG, database, access log).
  // An empty instance label keeps auto-assignment per subsystem, so test
  // fixtures never alias; fleet nodes get "<instance>/nodeN".
  metrics::Options metrics;

  Status Validate() const;
};

class ServingSite {
 public:
  // Builds the database content, registers generators, and constructs the
  // trigger monitor (not yet started).
  static Result<std::unique_ptr<ServingSite>> Create(SiteOptions options);

  // Wraps an existing database — a replica fed by the replication tree
  // (paper Fig. 5: each complex ran the pipeline against its own copy).
  // The database must already carry the Olympic schema; content arrives
  // through the replicated change log, and this site's trigger monitor
  // reacts to replicated commits exactly as the master's does to local
  // ones.
  static Result<std::unique_ptr<ServingSite>> CreateAround(
      SiteOptions options, std::unique_ptr<db::Database> database);

  // The crash-recovery path (paper §3: a failed complex catches up from the
  // database and rejoins serving). Requires options.wal: recovers a fresh
  // database from the newest checkpoint plus the WAL tail, then assembles
  // the pipeline around it. The site comes up in "recovering" state —
  // Health() reports not-ready (gating /healthz) until the caller pulls the
  // post-checkpoint delta through replication, repopulates the cache
  // (PrefetchAll), and CaughtUp() turns true.
  static Result<std::unique_ptr<ServingSite>> WarmRestart(SiteOptions options);

  ~ServingSite();

  ServingSite(const ServingSite&) = delete;
  ServingSite& operator=(const ServingSite&) = delete;

  // --- lifecycle -----------------------------------------------------------
  void StartTrigger() { trigger_->Start(); }
  void StopTrigger() { trigger_->Stop(); }
  // Wait for every committed change to be reflected in the cache. On
  // return, last_quiesced_seqno() covers at least every change committed
  // before the call.
  void Quiesce();

  // The highest change seqno known to be fully applied to the cache —
  // the freshness bound of DESIGN §6 ("after quiescence no cache read is
  // older than the last committed DB change").
  uint64_t last_quiesced_seqno() const {
    return last_quiesced_seqno_.load(std::memory_order_acquire);
  }

  // Verifies the §6 invariant directly: every cached object (composition
  // cache, plus every fleet node when in fleet mode) is byte-identical to a
  // fresh render against current database state. Returns the number of
  // objects checked, or an error naming the first stale object. Call at
  // quiescence; concurrent feed activity makes "fresh" a moving target.
  Result<size_t> VerifyCacheConsistency();

  // Prefetch (§2): render and cache every fragment then every page, so the
  // steady state starts warm — "such pages were never invalidated from the
  // cache. Consequently, there were no cache misses for these pages."
  // Returns the number of objects cached.
  Result<size_t> PrefetchAll();

  // --- serving ---------------------------------------------------------------
  server::ServeOutcome Serve(std::string_view page, bool include_body = false) {
    return page_server_->Serve(page, include_body);
  }

  // Serves from a specific node's cache (fleet mode). Node misses fall
  // back to generation exactly like the single-cache path.
  server::ServeOutcome ServeFromNode(size_t node, std::string_view page,
                                     bool include_body = false) {
    return node_servers_.at(node)->Serve(page, include_body);
  }
  size_t serving_nodes() const { return node_servers_.size(); }
  cache::CacheFleet* fleet() { return fleet_.get(); }

  // --- the scoring feed --------------------------------------------------------
  Status RecordResult(int64_t event_id, int64_t rank, int64_t athlete_id,
                      double score) {
    return pagegen::OlympicSite::RecordResult(db_.get(), event_id, rank,
                                              athlete_id, score);
  }
  Status CompleteEvent(int64_t event_id) {
    return pagegen::OlympicSite::CompleteEvent(db_.get(), event_id);
  }
  Status PublishNews(int64_t article_id, int day, std::string_view title,
                     std::string_view body, int64_t sport_id = 1) {
    return pagegen::OlympicSite::PublishNews(db_.get(), article_id, day, title,
                                             body, sport_id);
  }

  // End-to-end freshness probe: commit one result for `event_id`, block
  // until the trigger monitor quiesces, and verify the cached event page
  // changed. Returns the wall-clock milliseconds from commit to cache
  // consistency (the paper's "within seconds" / "maximum of sixty seconds").
  Result<double> MeasureUpdateLatencyMs(int64_t event_id, int64_t rank,
                                        int64_t athlete_id, double score);

  // Live /healthz verdict: trigger running, cache populated, trigger
  // backlog bounded, propagation p99 inside the paper's 60 s freshness
  // bound, and — after a WarmRestart — post-restart catch-up complete.
  // Wire into HttpFrontEnd::EnableAdmin.
  server::HealthReport Health() const;

  // --- warm-restart catch-up -----------------------------------------------
  // Raises the seqno this recovered site must reach (typically the master's
  // LastSeqno at rejoin time) before it reports ready.
  void SetCatchUpTarget(uint64_t seqno);
  // True once the recovered database has applied the catch-up target and
  // the cache is repopulated; latches (a site that caught up stays caught
  // up). Sites that never went through WarmRestart are always caught up.
  bool CaughtUp() const;
  bool recovering() const {
    return recovering_.load(std::memory_order_acquire);
  }

  // --- administrative drain --------------------------------------------------
  // Drain flag: while set, Health() reports "draining" (so a
  // /healthz-polling dispatcher advisor steers new traffic away) even
  // though the site itself keeps serving whatever still arrives. This is
  // how a rolling upgrade announces intent before the front tier's
  // connection drain starts.
  void SetDraining(bool draining) {
    draining_.store(draining, std::memory_order_release);
  }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // --- components -----------------------------------------------------------------
  db::Database& db() { return *db_; }
  odg::ObjectDependenceGraph& graph() { return *graph_; }
  cache::ObjectCache& cache() { return *cache_; }
  pagegen::PageRenderer& renderer() { return *renderer_; }
  trigger::TriggerMonitor& trigger_monitor() { return *trigger_; }
  server::DynamicPageServer& page_server() { return *page_server_; }
  const pagegen::OlympicConfig& olympic_config() const { return options_.olympic; }
  const Clock& clock() const { return *clock_; }
  // The registry every subsystem of this site registers into (the
  // process-wide Default() unless SiteOptions.metrics said otherwise).
  metrics::MetricRegistry& metrics_registry() { return *registry_; }

 private:
  explicit ServingSite(SiteOptions options);

  std::atomic<uint64_t> last_quiesced_seqno_{0};
  // Warm-restart state: CaughtUp() clears recovering_ once the target is
  // reached, so the const Health() path can latch it.
  mutable std::atomic<bool> recovering_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> catch_up_target_{0};
  SiteOptions options_;
  const Clock* clock_;
  metrics::MetricRegistry* registry_ = nullptr;
  std::unique_ptr<db::Database> db_;
  std::unique_ptr<odg::ObjectDependenceGraph> graph_;
  std::unique_ptr<cache::ObjectCache> cache_;
  std::unique_ptr<cache::CacheFleet> fleet_;  // only in fleet mode
  std::unique_ptr<pagegen::PageRenderer> renderer_;
  std::unique_ptr<trigger::TriggerMonitor> trigger_;
  std::unique_ptr<server::DynamicPageServer> page_server_;
  std::vector<std::unique_ptr<server::DynamicPageServer>> node_servers_;
};

}  // namespace nagano::core
