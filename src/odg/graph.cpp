#include "odg/graph.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace nagano::odg {
namespace {

// Widening lattice: data + object = both.
NodeKind WidenKind(NodeKind a, NodeKind b) {
  if (a == b) return a;
  return NodeKind::kBoth;
}

}  // namespace

ObjectDependenceGraph::ObjectDependenceGraph(
    const metrics::Options& metrics_options) {
  const auto scope = metrics::Scope::Resolve(metrics_options, "odg");
  nodes_gauge_ = scope.GetGauge("nagano_odg_nodes", "ODG vertices");
  edges_gauge_ = scope.GetGauge("nagano_odg_edges", "ODG dependence edges");
  mutations_ =
      scope.GetCounter("nagano_odg_mutations_total", "graph version bumps");
}

void ObjectDependenceGraph::BumpVersionLocked() {
  ++version_;
  mutations_->Increment();
  nodes_gauge_->Set(static_cast<double>(kinds_.size()));
  edges_gauge_->Set(static_cast<double>(edge_count_));
}

NodeId ObjectDependenceGraph::EnsureNode(std::string_view node_name,
                                         NodeKind node_kind) {
  {
    // Steady-state fast path: the node already exists with a kind at least
    // as wide as requested. Re-renders resolve every dependency through
    // here, so parallel workers must not serialize on the write lock.
    std::shared_lock lock(mutex_);
    const InternId existing = names_.Lookup(node_name);
    if (existing != kInvalidInternId && existing < kinds_.size() &&
        WidenKind(kinds_[existing], node_kind) == kinds_[existing]) {
      return existing;
    }
  }
  std::unique_lock lock(mutex_);
  const InternId id = names_.Intern(node_name);
  if (id >= kinds_.size()) {
    kinds_.resize(id + 1, node_kind);
    out_.resize(id + 1);
    in_.resize(id + 1);
    BumpVersionLocked();
  } else {
    const NodeKind widened = WidenKind(kinds_[id], node_kind);
    if (widened != kinds_[id]) {
      kinds_[id] = widened;
      BumpVersionLocked();
    }
  }
  return id;
}

NodeId ObjectDependenceGraph::Find(std::string_view node_name) const {
  std::shared_lock lock(mutex_);
  const InternId id = names_.Lookup(node_name);
  return id == kInvalidInternId ? kInvalidNode : id;
}

Status ObjectDependenceGraph::AddDependence(NodeId from, NodeId to,
                                            double weight) {
  std::unique_lock lock(mutex_);
  if (from >= kinds_.size() || to >= kinds_.size()) {
    return InvalidArgumentError("AddDependence: unknown node id");
  }
  if (from == to) {
    return InvalidArgumentError("AddDependence: self-dependence rejected");
  }
  if (weight <= 0.0) {
    return InvalidArgumentError("AddDependence: weight must be positive");
  }
  for (Edge& e : out_[from]) {
    if (e.to == to) {  // re-weight existing edge
      if (e.weight != weight) {
        e.weight = weight;
        for (Edge& r : in_[to]) {
          if (r.to == from) r.weight = weight;
        }
        if (weight != 1.0) has_custom_weights_ = true;
        BumpVersionLocked();
      }
      return Status::Ok();
    }
  }
  out_[from].push_back(Edge{to, weight});
  in_[to].push_back(Edge{from, weight});
  ++edge_count_;
  BumpVersionLocked();
  if (weight != 1.0) has_custom_weights_ = true;
  return Status::Ok();
}

Status ObjectDependenceGraph::RemoveDependence(NodeId from, NodeId to) {
  std::unique_lock lock(mutex_);
  if (from >= kinds_.size() || to >= kinds_.size()) {
    return InvalidArgumentError("RemoveDependence: unknown node id");
  }
  auto& edges = out_[from];
  auto it = std::find_if(edges.begin(), edges.end(),
                         [to](const Edge& e) { return e.to == to; });
  if (it == edges.end()) {
    return NotFoundError("RemoveDependence: edge absent");
  }
  edges.erase(it);
  auto& rev = in_[to];
  rev.erase(std::find_if(rev.begin(), rev.end(),
                         [from](const Edge& e) { return e.to == from; }));
  --edge_count_;
  BumpVersionLocked();
  return Status::Ok();
}

void ObjectDependenceGraph::ClearInEdges(NodeId of) {
  std::unique_lock lock(mutex_);
  if (of >= kinds_.size()) return;
  for (const Edge& e : in_[of]) {
    auto& edges = out_[e.to];
    edges.erase(std::find_if(edges.begin(), edges.end(),
                             [of](const Edge& o) { return o.to == of; }));
    --edge_count_;
  }
  const bool changed = !in_[of].empty();
  in_[of].clear();
  if (changed) BumpVersionLocked();
}

bool ObjectDependenceGraph::InEdgesEqualLocked(
    NodeId of, const std::vector<Edge>& sorted_sources) const {
  const auto& current = in_[of];
  if (current.size() != sorted_sources.size()) return false;
  std::vector<Edge> cur = current;
  std::sort(cur.begin(), cur.end(),
            [](const Edge& a, const Edge& b) { return a.to < b.to; });
  for (size_t i = 0; i < cur.size(); ++i) {
    if (cur[i].to != sorted_sources[i].to ||
        cur[i].weight != sorted_sources[i].weight) {
      return false;
    }
  }
  return true;
}

void ObjectDependenceGraph::SetInEdges(NodeId of, std::vector<Edge> sources) {
  // Dedup keeping the last occurrence's weight; drop self-edges and
  // non-positive weights. Dependency lists are tens of entries, so the
  // quadratic scan beats hashing.
  std::vector<Edge> desired;
  desired.reserve(sources.size());
  for (auto it = sources.rbegin(); it != sources.rend(); ++it) {
    if (it->to == of || it->weight <= 0.0) continue;
    const NodeId src = it->to;
    const bool seen = std::any_of(
        desired.begin(), desired.end(),
        [src](const Edge& e) { return e.to == src; });
    if (!seen) desired.push_back(*it);
  }
  std::sort(desired.begin(), desired.end(),
            [](const Edge& a, const Edge& b) { return a.to < b.to; });

  {
    std::shared_lock lock(mutex_);
    if (of >= kinds_.size()) return;
    if (InEdgesEqualLocked(of, desired)) return;
  }

  std::unique_lock lock(mutex_);
  if (of >= kinds_.size()) return;
  if (InEdgesEqualLocked(of, desired)) return;  // raced with an equal writer
  for (const Edge& e : in_[of]) {
    auto& edges = out_[e.to];
    edges.erase(std::find_if(edges.begin(), edges.end(),
                             [of](const Edge& o) { return o.to == of; }));
    --edge_count_;
  }
  in_[of].clear();
  for (const Edge& e : desired) {
    if (e.to >= kinds_.size()) continue;
    out_[e.to].push_back(Edge{of, e.weight});
    in_[of].push_back(e);
    ++edge_count_;
    if (e.weight != 1.0) has_custom_weights_ = true;
  }
  BumpVersionLocked();
}

bool ObjectDependenceGraph::HasEdgeLocked(NodeId from, NodeId to) const {
  if (from >= out_.size()) return false;
  return std::any_of(out_[from].begin(), out_[from].end(),
                     [to](const Edge& e) { return e.to == to; });
}

bool ObjectDependenceGraph::HasEdge(NodeId from, NodeId to) const {
  std::shared_lock lock(mutex_);
  return HasEdgeLocked(from, to);
}

NodeKind ObjectDependenceGraph::kind(NodeId id) const {
  std::shared_lock lock(mutex_);
  assert(id < kinds_.size());
  return kinds_[id];
}

std::string_view ObjectDependenceGraph::name(NodeId id) const {
  // StringInterner is internally synchronized and storage is stable.
  return names_.Name(id);
}

size_t ObjectDependenceGraph::node_count() const {
  std::shared_lock lock(mutex_);
  return kinds_.size();
}

size_t ObjectDependenceGraph::edge_count() const {
  std::shared_lock lock(mutex_);
  return edge_count_;
}

GraphStats ObjectDependenceGraph::stats() const {
  std::shared_lock lock(mutex_);
  return GraphStats{kinds_.size(), edge_count_, version_};
}

std::vector<Edge> ObjectDependenceGraph::OutEdges(NodeId id) const {
  std::shared_lock lock(mutex_);
  assert(id < out_.size());
  return out_[id];
}

std::vector<Edge> ObjectDependenceGraph::InEdges(NodeId id) const {
  std::shared_lock lock(mutex_);
  assert(id < in_.size());
  return in_[id];
}

bool ObjectDependenceGraph::IsSimple() const {
  std::shared_lock lock(mutex_);
  if (has_custom_weights_) return false;
  for (NodeId v = 0; v < kinds_.size(); ++v) {
    switch (kinds_[v]) {
      case NodeKind::kUnderlyingData:
        if (!in_[v].empty()) return false;
        break;
      case NodeKind::kObject:
        if (!out_[v].empty()) return false;
        break;
      case NodeKind::kBoth:
        // An intermediate vertex: the graph is not simple per Fig. 2.
        if (!in_[v].empty() && !out_[v].empty()) return false;
        break;
    }
  }
  return true;
}

}  // namespace nagano::odg
