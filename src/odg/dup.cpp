#include "odg/dup.h"

#include <algorithm>
#include <cassert>

namespace nagano::odg {
namespace {

bool IsCacheable(NodeKind k) {
  return k == NodeKind::kObject || k == NodeKind::kBoth;
}

using Adjacency = std::vector<std::vector<Edge>>;

// Iterative Tarjan restricted to the reachable set. Fills comp[v] with a
// component index; components are numbered in *reverse* topological order
// (a component's successors always receive smaller indices).
class TarjanScc {
 public:
  TarjanScc(const Adjacency& out, const std::vector<char>& reachable)
      : out_(out),
        reachable_(reachable),
        index_(out.size(), kUnvisited),
        low_(out.size(), 0),
        on_stack_(out.size(), 0),
        comp_(out.size(), kNoComp) {}

  void Run() {
    for (NodeId v = 0; v < out_.size(); ++v) {
      if (reachable_[v] && index_[v] == kUnvisited) Visit(v);
    }
  }

  uint32_t comp(NodeId v) const { return comp_[v]; }
  uint32_t num_components() const { return next_comp_; }

 private:
  static constexpr uint32_t kUnvisited = UINT32_MAX;
  static constexpr uint32_t kNoComp = UINT32_MAX;

  struct Frame {
    NodeId v;
    size_t edge = 0;
  };

  void Visit(NodeId root) {
    std::vector<Frame> frames{{root, 0}};
    index_[root] = low_[root] = next_index_++;
    stack_.push_back(root);
    on_stack_[root] = 1;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& edges = out_[f.v];
      bool descended = false;
      while (f.edge < edges.size()) {
        const NodeId w = edges[f.edge].to;
        ++f.edge;
        if (!reachable_[w]) continue;
        if (index_[w] == kUnvisited) {
          index_[w] = low_[w] = next_index_++;
          stack_.push_back(w);
          on_stack_[w] = 1;
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack_[w]) low_[f.v] = std::min(low_[f.v], index_[w]);
      }
      if (descended) continue;

      // f.v is finished: pop its component if it is a root.
      const NodeId v = f.v;
      if (low_[v] == index_[v]) {
        for (;;) {
          const NodeId w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = 0;
          comp_[w] = next_comp_;
          if (w == v) break;
        }
        ++next_comp_;
      }
      frames.pop_back();
      if (!frames.empty()) {
        low_[frames.back().v] = std::min(low_[frames.back().v], low_[v]);
      }
    }
  }

  const Adjacency& out_;
  const std::vector<char>& reachable_;
  std::vector<uint32_t> index_, low_;
  std::vector<char> on_stack_;
  std::vector<uint32_t> comp_;
  std::vector<NodeId> stack_;
  uint32_t next_index_ = 0;
  uint32_t next_comp_ = 0;
};

}  // namespace

DupResult DupEngine::ComputeAffected(const ObjectDependenceGraph& graph,
                                     std::span<const NodeId> changed,
                                     const DupOptions& options) {
  const bool simple = options.enable_simple_fast_path && graph.IsSimple();

  return graph.WithSnapshot([&](const Adjacency& out, const Adjacency& in,
                                const std::vector<NodeKind>& kinds) {
    DupResult result;
    const size_t n = kinds.size();

    std::vector<char> is_changed(n, 0);
    for (NodeId c : changed) {
      if (c < n) is_changed[c] = 1;
    }

    if (simple) {
      // Bipartite fast path: the affected objects are exactly the
      // out-neighbours of the changed vertices.
      result.used_simple_path = true;
      std::vector<char> emitted(n, 0);
      for (NodeId c = 0; c < n; ++c) {
        if (!is_changed[c]) continue;
        ++result.visited;
        for (const Edge& e : out[c]) {
          if (emitted[e.to] || is_changed[e.to]) continue;
          emitted[e.to] = 1;
          ++result.visited;
          if (IsCacheable(kinds[e.to]) && 1.0 > options.obsolescence_threshold) {
            // Bipartite: every affected object is a sink — one stage.
            result.affected.push_back(AffectedObject{e.to, 1.0, 0});
          }
        }
      }
      std::sort(result.affected.begin(), result.affected.end(),
                [](const AffectedObject& a, const AffectedObject& b) {
                  return a.id < b.id;
                });
      result.num_levels = result.affected.empty() ? 0 : 1;
      // Bipartite closure = changed inputs + their out-neighbours.
      for (NodeId v = 0; v < n; ++v) {
        if (is_changed[v] || emitted[v]) result.obsolete.push_back(v);
      }
      return result;
    }

    // --- General path ---
    // 1. Forward reachability from the changed set.
    std::vector<char> reachable(n, 0);
    std::vector<NodeId> frontier;
    for (NodeId c = 0; c < n; ++c) {
      if (is_changed[c]) {
        reachable[c] = 1;
        frontier.push_back(c);
      }
    }
    while (!frontier.empty()) {
      const NodeId v = frontier.back();
      frontier.pop_back();
      for (const Edge& e : out[v]) {
        if (!reachable[e.to]) {
          reachable[e.to] = 1;
          frontier.push_back(e.to);
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      result.visited += reachable[v];
      if (reachable[v]) result.obsolete.push_back(v);
    }

    // 2. Condense cycles among reachable vertices.
    TarjanScc scc(out, reachable);
    scc.Run();
    const uint32_t num_comps = scc.num_components();

    // Tarjan emits components in reverse topological order; iterating
    // component index descending processes dependency sources first.
    std::vector<std::vector<NodeId>> members(num_comps);
    for (NodeId v = 0; v < n; ++v) {
      if (reachable[v]) members[scc.comp(v)].push_back(v);
    }

    std::vector<double> obs(n, 0.0);
    std::vector<double> comp_score(num_comps, 0.0);
    // Longest-path stage of each component within the closure; members of a
    // component share it. Computed alongside obsolescence since components
    // already stream by in topological order.
    std::vector<uint32_t> comp_level(num_comps, 0);
    std::vector<uint32_t> level(n, 0);

    for (uint32_t ci = num_comps; ci-- > 0;) {
      uint32_t stage = 0;
      for (const NodeId v : members[ci]) {
        for (const Edge& e : in[v]) {
          if (reachable[e.to] && scc.comp(e.to) != ci) {
            stage = std::max(stage, comp_level[scc.comp(e.to)] + 1);
          }
        }
      }
      comp_level[ci] = stage;
      for (const NodeId v : members[ci]) level[v] = stage;

      double score = 0.0;
      for (const NodeId v : members[ci]) {
        if (is_changed[v]) {
          score = 1.0;
          break;
        }
        // Total incoming weight over *all* edges (changed or not) — the
        // denominator that makes weights express relative importance.
        double total_in = 0.0;
        double changed_in = 0.0;
        for (const Edge& e : in[v]) {
          total_in += e.weight;
          if (reachable[e.to] && scc.comp(e.to) != ci) {
            changed_in += e.weight * obs[e.to];
          }
        }
        if (total_in > 0.0) {
          score = std::max(score, std::min(1.0, changed_in / total_in));
        }
      }
      comp_score[ci] = score;
      for (const NodeId v : members[ci]) obs[v] = score;
    }

    // 3. Emit cacheable, sufficiently obsolete vertices in dependency
    // order (sources first), excluding the changed inputs themselves.
    for (uint32_t ci = num_comps; ci-- > 0;) {
      std::vector<NodeId> sorted = members[ci];
      std::sort(sorted.begin(), sorted.end());
      for (const NodeId v : sorted) {
        if (is_changed[v]) continue;
        if (!IsCacheable(kinds[v])) continue;
        if (obs[v] > options.obsolescence_threshold) {
          result.affected.push_back(AffectedObject{v, obs[v], level[v]});
        }
      }
    }
    // Compact the emitted levels to a dense 0..k range: intermediate
    // underlying-data hops inflate the raw longest-path values, and each
    // distinct level costs the re-render pipeline a barrier.
    if (!result.affected.empty()) {
      std::vector<uint32_t> seen;
      seen.reserve(result.affected.size());
      for (const auto& a : result.affected) seen.push_back(a.level);
      std::sort(seen.begin(), seen.end());
      seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
      for (auto& a : result.affected) {
        a.level = static_cast<uint32_t>(
            std::lower_bound(seen.begin(), seen.end(), a.level) -
            seen.begin());
      }
      result.num_levels = static_cast<uint32_t>(seen.size());
    }
    return result;
  });
}

}  // namespace nagano::odg
