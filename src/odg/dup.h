// Data Update Propagation (DUP) — the paper's core algorithm.
//
// Given a set of underlying-data vertices that just changed, DUP determines
// via graph traversal which cached objects are now obsolete, and how
// obsolete (when edges carry weights). The caller — the trigger monitor —
// then either regenerates those objects and updates them in place, or
// invalidates them, per the configured cache policy.
//
// Two paths, as in the paper/tech report:
//  * Simple ODGs (bipartite data->object, unweighted): affected objects are
//    exactly the out-neighbours of the changed vertices; one adjacency scan.
//  * General ODGs: reachability from the changed set, with quantitative
//    obsolescence propagated along weighted edges. Cycles are handled by
//    condensing strongly connected components (Tarjan) — members of an SCC
//    are mutually dependent and share the component's obsolescence.
//
// Obsolescence model: a changed vertex has obsolescence 1. For any other
// vertex v, obsolescence(v) = min(1, Σ_{u->v} w(u,v)·obs(u) / W_in(v)),
// where W_in(v) is the total incoming weight of v. With unit weights and a
// single changed ancestor this degrades to plain reachability (every
// reachable object scores > 0); the weighted form reproduces the paper's
// Fig. 1 example where the go1->go5 dependence (weight 5) matters five
// times more than go2->go5 (weight 1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "odg/graph.h"

namespace nagano::odg {

struct AffectedObject {
  NodeId id = kInvalidNode;
  double obsolescence = 0.0;
  // Topological stage within the propagation closure: 0 for objects with no
  // dependence on any other vertex of the closure, else 1 + the maximum
  // level of the closure vertices feeding it. Any dependence path strictly
  // increases the level, so objects sharing a level are mutually
  // independent and safe to regenerate concurrently; processing levels in
  // ascending order respects every ODG constraint (fragments before the
  // pages embedding them). Members of one SCC share a level.
  uint32_t level = 0;
};

struct DupResult {
  // Cacheable vertices (kObject / kBoth) whose obsolescence exceeds the
  // threshold, in dependency order: if fragment f feeds page p, f precedes
  // p, so regeneration can proceed front-to-back.
  std::vector<AffectedObject> affected;

  // All reachable vertices (including pure underlying-data intermediates);
  // size of the traversal frontier, for the DUPSCALE bench.
  size_t visited = 0;

  // Every vertex of the propagation closure — the changed inputs plus
  // everything reachable from them (affected objects, sub-threshold
  // objects, and pure-data intermediates), sorted by NodeId. The trigger
  // monitor's plan-patch decision reads this: a page's composition plan can
  // be patched in place iff every obsolete in-edge source is a fragment the
  // plan embeds; any obsolete non-fragment input means the page's static
  // skeleton may have changed and a full re-render is required.
  std::vector<NodeId> obsolete;

  // 1 + the largest AffectedObject::level (0 when nothing is affected).
  // The parallel re-render pipeline runs this many barrier-separated stages.
  uint32_t num_levels = 0;

  bool used_simple_path = false;
};

struct DupOptions {
  // Objects with obsolescence <= threshold stay in the cache untouched —
  // the paper's "save considerable CPU cycles by allowing pages to remain
  // in the cache which are only slightly obsolete". 0 means any obsolete
  // object is reported.
  double obsolescence_threshold = 0.0;

  // Allow the bipartite fast path when the graph is simple. Disabled by the
  // ablation bench to quantify the fast path's benefit.
  bool enable_simple_fast_path = true;
};

class DupEngine {
 public:
  // Runs DUP over `graph` for the given changed underlying-data vertices.
  // Unknown ids are ignored. Thread-safe with respect to concurrent graph
  // mutation (takes the graph's read lock for the duration).
  static DupResult ComputeAffected(const ObjectDependenceGraph& graph,
                                   std::span<const NodeId> changed,
                                   const DupOptions& options = {});
};

}  // namespace nagano::odg
