// Object Dependence Graph (ODG) — Section 2 of the paper.
//
// Vertices are either *underlying data* (database rows/tables that change),
// *objects* (cacheable items: pages, fragments), or both (a fragment is an
// object and also underlying data for the pages embedding it). A directed
// edge v -> u means "a change to v also affects u". Edges carry optional
// weights expressing the importance of the dependence; weights drive the
// quantitative-obsolescence policy (see dup.h).
//
// The graph is mutated concurrently by the renderer (dependency recording
// during page generation) and read by the trigger monitor (DUP traversals),
// so all public methods are thread-safe via a reader/writer lock.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/intern.h"
#include "common/metrics.h"
#include "common/result.h"

namespace nagano::odg {

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = UINT32_MAX;

enum class NodeKind : uint8_t {
  kUnderlyingData,  // changes originate here (DB rows, editorial files)
  kObject,          // cacheable leaf (a full page)
  kBoth,            // cacheable and depended-upon (a page fragment)
};

struct Edge {
  NodeId to = kInvalidNode;
  double weight = 1.0;
};

// Counters exposed for the DUPSCALE bench and monitoring.
struct GraphStats {
  size_t nodes = 0;
  size_t edges = 0;
  uint64_t version = 0;  // bumped on every mutation
};

class ObjectDependenceGraph {
 public:
  ObjectDependenceGraph() : ObjectDependenceGraph(metrics::Options{}) {}
  explicit ObjectDependenceGraph(const metrics::Options& metrics_options);

  ObjectDependenceGraph(const ObjectDependenceGraph&) = delete;
  ObjectDependenceGraph& operator=(const ObjectDependenceGraph&) = delete;

  // Returns the node named `name`, creating it with `kind` if absent. If the
  // node exists with a narrower kind, the kind is widened (e.g. an existing
  // kObject later used as a dependency source becomes kBoth).
  NodeId EnsureNode(std::string_view name, NodeKind kind);

  // kInvalidNode if the name has never been added.
  NodeId Find(std::string_view name) const;

  // Adds (or re-weights) the dependence edge from -> to: "a change to `from`
  // affects `to`". Self-edges are rejected.
  Status AddDependence(NodeId from, NodeId to, double weight = 1.0);
  Status RemoveDependence(NodeId from, NodeId to);

  // Drops every outgoing dependence of `from`. The renderer calls this
  // before re-recording a page's dependencies, keeping the ODG in sync with
  // the current template structure.
  void ClearInEdges(NodeId of);

  // Replaces the in-edge set of `of` with `sources` (Edge::to = source id;
  // among duplicate sources the last weight wins, matching repeated
  // AddDependence calls). When the requested set already matches, this
  // returns after a shared-lock comparison without writing — re-renders
  // that leave a page's dependencies unchanged (the steady state of the
  // parallel re-render pipeline) then never serialize on the write lock.
  void SetInEdges(NodeId of, std::vector<Edge> sources);

  bool HasEdge(NodeId from, NodeId to) const;

  NodeKind kind(NodeId id) const;
  std::string_view name(NodeId id) const;
  size_t node_count() const;
  size_t edge_count() const;
  GraphStats stats() const;

  // Copy of the outgoing edges of `id` (a copy so the caller holds no lock).
  std::vector<Edge> OutEdges(NodeId id) const;
  // Copy of the incoming edges of `id` (sources and weights).
  std::vector<Edge> InEdges(NodeId id) const;

  // A *simple* ODG (paper Fig. 2): every underlying-data vertex has no
  // incoming edge, every object vertex has no outgoing edge, and no edge
  // carries a non-default weight. DUP has a fast path for this shape.
  bool IsSimple() const;

  // Runs `fn(adjacency_out, adjacency_in, kinds)` under the read lock. Used
  // by the DUP engine to traverse without copying the whole graph.
  template <typename Fn>
  auto WithSnapshot(Fn&& fn) const {
    std::shared_lock lock(mutex_);
    return fn(out_, in_, kinds_);
  }

 private:
  // Unlocked internals; callers hold mutex_.
  // Bumps version_ and mirrors nodes/edges/version into the registry cells.
  void BumpVersionLocked();
  bool HasEdgeLocked(NodeId from, NodeId to) const;
  // `sorted_sources` must be sorted by Edge::to.
  bool InEdgesEqualLocked(NodeId of, const std::vector<Edge>& sorted_sources) const;

  mutable std::shared_mutex mutex_;
  StringInterner names_;
  std::vector<NodeKind> kinds_;          // indexed by NodeId
  std::vector<std::vector<Edge>> out_;   // out_[v] = edges v -> u
  std::vector<std::vector<Edge>> in_;    // in_[u]  = edges v -> u (to = source)
  size_t edge_count_ = 0;
  uint64_t version_ = 0;
  bool has_custom_weights_ = false;

  // Registry mirrors of the lock-guarded counters above; stats() reads the
  // internals (exact), /metrics reads these.
  metrics::Gauge* nodes_gauge_;
  metrics::Gauge* edges_gauge_;
  metrics::Counter* mutations_;
};

}  // namespace nagano::odg
