#include "common/clock.h"

namespace nagano {

RealClock& RealClock::Instance() {
  static RealClock clock;
  return clock;
}

}  // namespace nagano
