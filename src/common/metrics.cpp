#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace nagano::metrics {
namespace {

// Stable per-thread shard assignment: round-robin at first use, so N
// writer threads spread across the counter cells instead of hashing onto
// the same line.
std::atomic<size_t> g_next_thread_shard{0};

void AppendEscaped(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

// {k="v",k2="v2"} with `extra` appended last; empty label sets render as
// nothing.
std::string RenderLabels(const Labels& labels,
                         const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::string& k, const std::string& v) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    AppendEscaped(&out, v);
    out += "\"";
  };
  for (const auto& [k, v] : labels) append(k, v);
  if (extra != nullptr) append(extra->first, extra->second);
  out += "}";
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest %g that round-trips, so 0.99 renders as "0.99" rather than
  // the 17-digit binary expansion.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

constexpr double kSummaryQuantiles[] = {0.5, 0.9, 0.95, 0.99};

}  // namespace

size_t Counter::ShardIndex() {
  thread_local const size_t index =
      g_next_thread_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();  // leaked by design
  return *registry;
}

MetricRegistry::Entry* MetricRegistry::FindOrCreateLocked(
    std::string_view name, Labels labels, std::string_view help,
    MetricType type) {
  std::sort(labels.begin(), labels.end());
  // Identity key: name + type + sorted labels. Registration happens at
  // subsystem construction, but test binaries construct thousands of
  // subsystems, so lookups are indexed rather than scanned.
  std::string key(name);
  key += '\x01';
  key += static_cast<char>('0' + static_cast<int>(type));
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  if (auto it = index_.find(key); it != index_.end()) return it->second;

  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = std::move(labels);
  entry->type = type;
  entry->help = std::string(help);
  switch (type) {
    case MetricType::kCounter: entry->counter = std::make_unique<Counter>(); break;
    case MetricType::kGauge: entry->gauge = std::make_unique<Gauge>(); break;
    case MetricType::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  index_.emplace(std::move(key), entries_.back().get());
  return entries_.back().get();
}

Counter* MetricRegistry::GetCounter(std::string_view name, Labels labels,
                                    std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreateLocked(name, std::move(labels), help,
                            MetricType::kCounter)
      ->counter.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name, Labels labels,
                                std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreateLocked(name, std::move(labels), help, MetricType::kGauge)
      ->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name, Labels labels,
                                        std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FindOrCreateLocked(name, std::move(labels), help,
                            MetricType::kHistogram)
      ->histogram.get();
}

std::string MetricRegistry::AutoInstance(std::string_view prefix) {
  const uint64_t n = next_instance_.fetch_add(1, std::memory_order_relaxed) + 1;
  return std::string(prefix) + std::to_string(n);
}

size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<Sample> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    Sample s;
    s.name = entry->name;
    s.labels = entry->labels;
    s.type = entry->type;
    s.help = entry->help;
    switch (entry->type) {
      case MetricType::kCounter:
        s.value = static_cast<double>(entry->counter->value());
        break;
      case MetricType::kGauge:
        s.value = entry->gauge->value();
        break;
      case MetricType::kHistogram:
        s.histogram = entry->histogram->snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricRegistry::RenderPrometheus() const {
  const std::vector<Sample> samples = Snapshot();

  // Group by name so # HELP / # TYPE appear once per family, with the
  // family's series kept together (required by the exposition format).
  std::map<std::string, std::vector<const Sample*>> families;
  std::vector<const std::string*> order;  // first-seen name order
  for (const Sample& s : samples) {
    auto [it, inserted] = families.try_emplace(s.name);
    if (inserted) order.push_back(&it->first);
    it->second.push_back(&s);
  }

  std::string out;
  for (const std::string* name : order) {
    const auto& family = families[*name];
    const Sample& head = *family.front();
    if (!head.help.empty()) {
      out += "# HELP " + *name + " ";
      AppendEscaped(&out, head.help);
      out += "\n";
    }
    out += "# TYPE " + *name + " ";
    switch (head.type) {
      case MetricType::kCounter: out += "counter\n"; break;
      case MetricType::kGauge: out += "gauge\n"; break;
      case MetricType::kHistogram: out += "summary\n"; break;
    }
    for (const Sample* s : family) {
      if (s->type != MetricType::kHistogram) {
        out += *name + RenderLabels(s->labels, nullptr) + " " +
               FormatDouble(s->value) + "\n";
        continue;
      }
      for (double q : kSummaryQuantiles) {
        const std::pair<std::string, std::string> quantile{"quantile",
                                                           FormatDouble(q)};
        out += *name + RenderLabels(s->labels, &quantile) + " " +
               FormatDouble(s->histogram.Percentile(q)) + "\n";
      }
      const std::string labels = RenderLabels(s->labels, nullptr);
      out += *name + "_sum" + labels + " " +
             FormatDouble(s->histogram.mean() *
                          static_cast<double>(s->histogram.count())) +
             "\n";
      out += *name + "_count" + labels + " " +
             FormatDouble(static_cast<double>(s->histogram.count())) + "\n";
    }
  }
  return out;
}

std::string MetricRegistry::RenderStatusz() const {
  const std::vector<Sample> samples = Snapshot();

  // Subsystem = the segment after the "nagano_" prefix ("nagano_cache_..."
  // -> "cache"); anything else groups under its full first segment.
  auto subsystem_of = [](const std::string& name) {
    std::string_view v = name;
    if (v.starts_with("nagano_")) v.remove_prefix(7);
    return std::string(v.substr(0, v.find('_')));
  };

  std::map<std::string, std::string> sections;
  for (const Sample& s : samples) {
    std::string& section = sections[subsystem_of(s.name)];
    section += "  " + s.name + RenderLabels(s.labels, nullptr) + " ";
    if (s.type == MetricType::kHistogram) {
      section += s.histogram.Summary();
    } else {
      section += FormatDouble(s.value);
    }
    section += "\n";
  }

  std::string out;
  for (const auto& [subsystem, body] : sections) {
    out += "== " + subsystem + " ==\n" + body;
  }
  return out;
}

Scope Scope::Resolve(const Options& options, std::string_view auto_prefix) {
  Scope scope;
  scope.registry =
      options.registry != nullptr ? options.registry : &MetricRegistry::Default();
  const std::string instance = options.instance.empty()
                                   ? scope.registry->AutoInstance(auto_prefix)
                                   : options.instance;
  scope.labels = {{"site", instance}};
  return scope;
}

Labels Scope::With(std::string_view key, std::string_view value) const {
  Labels out = labels;
  out.emplace_back(std::string(key), std::string(value));
  return out;
}

}  // namespace nagano::metrics
