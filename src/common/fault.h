// nagano::fault — seed-deterministic fault injection (ISSUE 3 tentpole).
//
// The paper's availability claims (§4.2 "elegant degradation", the §3
// replication recovery path) are only trustworthy if partial failure can be
// provoked on demand. This module makes failure a first-class input: a
// FaultPlan scripts *where* ({subsystem, site, operation}), *when* (a sim-
// or wall-clock window), and *how* (error, extra latency, duplicated
// delivery, or a window outage) faults strike, and a FaultInjector answers
// the per-operation question "does this call fail?" deterministically from
// a single seed.
//
// Injection points wired through the stack (each consults the injector it
// was handed in its Options; a null injector costs one pointer compare):
//
//   subsystem      site                 operations
//   "db"           metrics instance     "commit", "changes"
//   "wal"          metrics instance     "append" (torn-tail crash),
//                                       "fsync", "truncate"
//   "replication"  child node name      "pull", "pull-from:<feed>", "gap"
//   "fabric"       complex name         "complex", "frame:<i>",
//                                       "dispatcher:<i>", "node:<f>.<n>"
//                                       (kWindow outage rules)
//   "trigger"      metrics instance     "notify" (drop / duplicate)
//   "http"         metrics instance     "accept", "read", "write"
//                  (with reactors > 1 the site is "<instance>/r<k>", one
//                  per reactor, so a drill can kill a single event loop's
//                  sockets; empty-site rules wildcard across all of them)
//   "cache"        metrics instance     "lookup"
//
// Every fire is appended to a timeline (Timeline()/TimelineString()) so
// examples and the chaos suite can print the injected-fault history next to
// the availability numbers, and counted in nagano_fault_injected_total.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "common/rng.h"

namespace nagano::fault {

enum class FaultKind : uint8_t {
  kError,      // fail the matching operation with `error`
  kDelay,      // slow the matching operation by `delay`
  kDuplicate,  // deliver the operation's effect `duplicates` extra times
  kWindow,     // target is dead while the rule's window is active (queried
               // via ActiveWindow — the fabric kill-schedule mechanism)
};

std::string_view FaultKindName(FaultKind kind);

// One scripted or probabilistic injection rule. Empty subsystem/site/
// operation strings are wildcards. `from`/`until` bound the rule in the
// injector's clock domain (sim time under SimClock); `probability`,
// `skip_first` and `max_fires` script partial failure deterministically.
struct FaultRule {
  std::string subsystem;
  std::string site;
  std::string operation;

  FaultKind kind = FaultKind::kError;
  ErrorCode error = ErrorCode::kUnavailable;
  std::string message;          // optional detail for the injected Status
  TimeNs delay = 0;             // kDelay: extra latency to charge
  uint32_t duplicates = 1;      // kDuplicate: extra deliveries

  TimeNs from = 0;              // active window [from, until)
  TimeNs until = std::numeric_limits<TimeNs>::max();
  double probability = 1.0;     // chance a matching call fires (per call;
                                // kWindow: decided once per window entry)
  uint64_t skip_first = 0;      // matching calls to let through first
  uint64_t max_fires = std::numeric_limits<uint64_t>::max();
};

// The full injection schedule: seed + rules. Immutable once handed to a
// FaultInjector.
struct FaultPlan : OptionsBase {
  uint64_t seed = 0x6e6167616e6fULL;  // "nagano"
  std::vector<FaultRule> rules;
  metrics::Options metrics;

  Status Validate() const;
};

// One injected fault, in fire order — the timeline the drills print.
struct FaultEvent {
  TimeNs at = 0;
  std::string subsystem;
  std::string site;
  std::string operation;
  FaultKind kind = FaultKind::kError;
  ErrorCode error = ErrorCode::kOk;
  TimeNs delay = 0;
  bool onset = true;  // kWindow rules log both edges; onset=false is recovery
};

// What a single Decide() resolved to. status.ok() means the operation
// proceeds; delay and duplicates may still apply.
struct FaultAction {
  Status status;
  TimeNs delay = 0;
  uint32_t duplicates = 0;

  bool injected() const {
    return !status.ok() || delay > 0 || duplicates > 0;
  }
};

// Thread-safe. Decisions are deterministic given the plan's seed and, per
// injection site, the order of calls against it (single-driver simulations
// replay byte-identically).
class FaultInjector {
 public:
  // `clock` times the rule windows and the timeline (nullptr = RealClock).
  explicit FaultInjector(FaultPlan plan, const Clock* clock = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Resolves every matching kError/kDelay/kDuplicate rule for one call of
  // {subsystem, site, operation}. The first firing error rule wins; delays
  // and duplicates accumulate across firing rules.
  FaultAction Decide(std::string_view subsystem, std::string_view site,
                     std::string_view operation);

  // Convenience: just the error half of Decide().
  Status Check(std::string_view subsystem, std::string_view site,
               std::string_view operation) {
    return Decide(subsystem, site, operation).status;
  }

  // True while any matching kWindow rule is active at the injector clock's
  // now. Both edges of each rule's activity are recorded on the timeline.
  bool ActiveWindow(std::string_view subsystem, std::string_view site,
                    std::string_view operation);

  // Window rules matching `subsystem` — components (the fabric) use this to
  // precompute which targets their plan can ever touch.
  std::vector<const FaultRule*> WindowRules(std::string_view subsystem) const;

  std::vector<FaultEvent> Timeline() const;
  // "  t=  12.000s fabric/Tokyo/complex WINDOW begin" — one line per event.
  std::string TimelineString() const;

  uint64_t injected_total() const { return injected_->value(); }
  const FaultPlan& plan() const { return plan_; }

 private:
  struct RuleState {
    uint64_t matched = 0;     // calls that matched this rule
    uint64_t fired = 0;
    Rng rng;                  // per-rule stream: thread interleavings of
                              // *other* sites cannot perturb this rule
    bool window_active = false;
    bool window_decided = false;  // probability roll done for this entry
    bool window_fires = false;
  };

  bool Matches(const FaultRule& rule, std::string_view subsystem,
               std::string_view site, std::string_view operation) const;
  void Record(const FaultRule& rule, TimeNs now, bool onset)
      /* REQUIRES(mutex_) */;

  const FaultPlan plan_;
  const Clock* clock_;
  mutable std::mutex mutex_;
  std::vector<RuleState> states_;
  std::vector<FaultEvent> timeline_;
  metrics::Counter* injected_;
};

// Null-safe wrappers: subsystems hold a FaultInjector* that is almost
// always null in production; these keep the hot-path cost to one compare.
inline FaultAction Decide(FaultInjector* injector, std::string_view subsystem,
                          std::string_view site, std::string_view operation) {
  if (injector == nullptr) return FaultAction{};
  return injector->Decide(subsystem, site, operation);
}
inline Status Check(FaultInjector* injector, std::string_view subsystem,
                    std::string_view site, std::string_view operation) {
  if (injector == nullptr) return Status::Ok();
  return injector->Check(subsystem, site, operation);
}
inline bool ActiveWindow(FaultInjector* injector, std::string_view subsystem,
                         std::string_view site, std::string_view operation) {
  return injector != nullptr &&
         injector->ActiveWindow(subsystem, site, operation);
}

}  // namespace nagano::fault
