#include "common/thread_pool.h"

#include <cassert>

namespace nagano {

ThreadPool::ThreadPool(size_t num_threads) {
  assert(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.Push(std::move(task))) {
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  wait_cv_.wait(lock, [&] {
    return completed_.load(std::memory_order_acquire) ==
           submitted_.load(std::memory_order_acquire);
  });
}

void ThreadPool::Shutdown() {
  // Drain-then-join: Close() lets workers finish everything already queued
  // before Pop() returns nullopt, so no submitted task is ever dropped.
  // The lock makes concurrent Shutdown() calls (destructor racing an
  // explicit call) safe — join() on an already-joined thread is UB.
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  queue_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (auto task = queue_.Pop()) {
    try {
      (*task)();
    } catch (...) {
      // A throwing task must still count as completed or Wait() would hang
      // and the worker thread would terminate the process.
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    completed_.fetch_add(1, std::memory_order_acq_rel);
    {
      // Pair with Wait()'s predicate re-check.
      std::lock_guard<std::mutex> lock(wait_mutex_);
    }
    wait_cv_.notify_all();
  }
}

}  // namespace nagano
