// Time abstraction. Production components take a Clock& so the same code
// runs against wall time (examples, live server) and simulated time (the
// cluster simulator and every deterministic test).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace nagano {

// Nanoseconds since an arbitrary epoch.
using TimeNs = int64_t;

constexpr TimeNs kMicrosecond = 1'000;
constexpr TimeNs kMillisecond = 1'000'000;
constexpr TimeNs kSecond = 1'000'000'000;
constexpr TimeNs kMinute = 60 * kSecond;
constexpr TimeNs kHour = 60 * kMinute;
constexpr TimeNs kDay = 24 * kHour;

inline double ToSeconds(TimeNs t) { return static_cast<double>(t) / 1e9; }
inline double ToMillis(TimeNs t) { return static_cast<double>(t) / 1e6; }
inline TimeNs FromSeconds(double s) { return static_cast<TimeNs>(s * 1e9); }
inline TimeNs FromMillis(double ms) { return static_cast<TimeNs>(ms * 1e6); }

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeNs Now() const = 0;
};

// Monotonic wall clock.
class RealClock final : public Clock {
 public:
  TimeNs Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  static RealClock& Instance();
};

// Manually advanced clock; thread-safe so serving threads can read it while
// a driver advances it.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimeNs start = 0) : now_(start) {}

  TimeNs Now() const override { return now_.load(std::memory_order_acquire); }

  void AdvanceTo(TimeNs t) { now_.store(t, std::memory_order_release); }
  void Advance(TimeNs dt) { now_.fetch_add(dt, std::memory_order_acq_rel); }

 private:
  std::atomic<TimeNs> now_;
};

}  // namespace nagano
