// Deterministic random number generation for simulations and workload
// synthesis. Every stochastic component in nagano takes an explicit Rng so
// experiments are reproducible from a single seed.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace nagano {

// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
// Seeded through SplitMix64 so that nearby seeds give unrelated streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, n). n must be > 0. Uses rejection to avoid modulo bias.
  uint64_t NextBelow(uint64_t n);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Exponentially distributed with the given mean (> 0); used for
  // inter-arrival times in the result-feed and request processes.
  double NextExponential(double mean);

  // Normally distributed (Box-Muller), for timing jitter.
  double NextGaussian(double mean, double stddev);

  // Derive an independent child stream (for per-component determinism).
  Rng Fork();

 private:
  uint64_t s_[4];
};

// Zipf-distributed ranks in [0, n). Used for page popularity: the Olympic
// site's traffic was dominated by a small hot set (day-home page, current
// events), which a Zipf with s ~ 0.8-1.1 models well.
//
// Precomputes the CDF once (O(n)); each sample is a binary search.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }
  double skew() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace nagano
