// Minimal leveled logger. Printf-style, single global sink, mutex-guarded.
// Benches set the level to kWarn so measurement loops stay quiet.
#pragma once

#include <cstdarg>

namespace nagano {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Core entry point; prefer the LOG_* macros below.
void LogV(LogLevel level, const char* file, int line, const char* fmt,
          va_list args);
void Log(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace nagano

#define NAGANO_LOG(level, ...) \
  ::nagano::Log((level), __FILE__, __LINE__, __VA_ARGS__)
#define LOG_DEBUG(...) NAGANO_LOG(::nagano::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) NAGANO_LOG(::nagano::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) NAGANO_LOG(::nagano::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) NAGANO_LOG(::nagano::LogLevel::kError, __VA_ARGS__)
