// Measurement primitives: counters, mean/variance accumulators, and a
// log-bucketed histogram with percentile queries. The bench harness builds
// every figure/table from these.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace nagano {

// Online mean / variance (Welford). Not thread-safe; aggregate per-thread
// instances with Merge().
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Histogram over non-negative values with geometrically growing buckets
// (HdrHistogram-style, base-2 with linear sub-buckets). Percentile error is
// bounded by the sub-bucket resolution (~1.6%).
class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double max() const { return max_; }
  double min() const { return count_ ? min_ : 0.0; }

  // q in [0, 1]; returns an upper bound of the bucket containing the
  // q-quantile. Percentile(0.5) == median.
  double Percentile(double q) const;

  // "count=... mean=... p50=... p95=... p99=... max=..."
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 linear sub-buckets / octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 40;       // covers up to ~2^40

  static size_t BucketFor(double value);
  static double BucketUpperBound(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Monotonically increasing thread-safe counter.
class Counter {
 public:
  void Increment(uint64_t by = 1) { v_.fetch_add(by, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Fixed-width time-series accumulator: value[i] accumulates everything
// reported for slot i. Used for "hits by hour" / "hits by day" figures.
// Out-of-range slots are not silently dropped: they land in overflow(), so
// the figure benches can assert that a series lost nothing.
class TimeSeries {
 public:
  explicit TimeSeries(size_t slots) : v_(slots, 0.0) {}

  void Add(size_t slot, double amount = 1.0) {
    if (slot < v_.size()) {
      v_[slot] += amount;
    } else {
      ++overflow_;
    }
  }
  double at(size_t slot) const { return v_[slot]; }
  size_t slots() const { return v_.size(); }
  // Number of Add() calls that fell outside [0, slots).
  uint64_t overflow() const { return overflow_; }
  double total() const;
  size_t PeakSlot() const;

 private:
  std::vector<double> v_;
  uint64_t overflow_ = 0;
};

// Renders a horizontal ASCII bar chart (one row per slot) — used by the
// figure benches to print paper-style bar graphs.
std::string AsciiBarChart(const TimeSeries& series,
                          const std::vector<std::string>& labels,
                          int width = 50);

}  // namespace nagano
