#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace nagano {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

Histogram::Histogram() : buckets_(static_cast<size_t>(kOctaves) * kSubBuckets, 0) {}

size_t Histogram::BucketFor(double value) {
  if (value <= 0.0) return 0;
  // Octave = floor(log2(value)) clamped to [0, kOctaves); sub-bucket is the
  // linear position within the octave.
  int exp = 0;
  const double mant = std::frexp(value, &exp);  // value = mant * 2^exp, mant in [0.5,1)
  int octave = exp - 1;                         // floor(log2(value))
  if (octave < 0) octave = 0;
  if (octave >= kOctaves) octave = kOctaves - 1;
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((mant - 0.5) * 2.0 * kSubBuckets));
  return static_cast<size_t>(octave) * kSubBuckets + static_cast<size_t>(sub);
}

double Histogram::BucketUpperBound(size_t index) {
  const size_t octave = index / kSubBuckets;
  const size_t sub = index % kSubBuckets;
  const double base = std::ldexp(1.0, static_cast<int>(octave));  // 2^octave
  return base * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
}

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), mean(), Percentile(0.50),
                Percentile(0.95), Percentile(0.99), max_);
  return buf;
}

double TimeSeries::total() const {
  double t = 0.0;
  for (double x : v_) t += x;
  return t;
}

size_t TimeSeries::PeakSlot() const {
  size_t best = 0;
  for (size_t i = 1; i < v_.size(); ++i) {
    if (v_[i] > v_[best]) best = i;
  }
  return best;
}

std::string AsciiBarChart(const TimeSeries& series,
                          const std::vector<std::string>& labels, int width) {
  assert(labels.size() == series.slots());
  double peak = 0.0;
  for (size_t i = 0; i < series.slots(); ++i) peak = std::max(peak, series.at(i));
  if (peak <= 0.0) peak = 1.0;

  std::string out;
  for (size_t i = 0; i < series.slots(); ++i) {
    const int bar = static_cast<int>(series.at(i) / peak * width + 0.5);
    char line[512];
    std::snprintf(line, sizeof(line), "%12s | %-*s %.3g\n", labels[i].c_str(), width,
                  std::string(static_cast<size_t>(bar), '#').c_str(), series.at(i));
    out += line;
  }
  return out;
}

}  // namespace nagano
