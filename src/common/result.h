// Lightweight status / result types used across the nagano libraries.
//
// C++20 has no std::expected, and exceptions are kept off the hot serving
// path, so fallible APIs return Status (void results) or Result<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace nagano {

// Error categories, deliberately coarse: callers branch on category, the
// message carries the detail for logs.
//
// Error-category contract — every fallible nagano API picks its code from
// this table, so retry/degradation logic can branch uniformly:
//
//   kNotFound            The named thing does not exist. NOT a failure of
//                        the operation itself: a cache miss, an unknown
//                        page, an absent record. Never retry — repeat calls
//                        return the same answer until someone creates it.
//   kAlreadyExists       Create-style call collided with an existing name.
//   kInvalidArgument     The request itself is malformed (bad Options
//                        field, scheduling an event in the past). Fix the
//                        caller; retrying is a bug.
//   kFailedPrecondition  The request is well-formed but the system is in
//                        the wrong state for it (Start() twice, feed not
//                        attached). Caller must change the state first.
//   kUnavailable         TRANSIENT: node down, link down, queue closed,
//                        injected outage. The canonical retry-with-backoff
//                        code; the serving path degrades to a stale cached
//                        page when retries exhaust (see server/serving.h).
//   kResourceExhausted   TRANSIENT: out of queue slots / budget. Retryable
//                        after backoff, same as kUnavailable.
//   kDataLoss            A gap or corruption was detected (replication
//                        seqno gap, corrupt message). Not retryable as-is;
//                        recovery means resynchronising from the feed.
//   kInternal            Invariant violation — a bug, not an environment
//                        condition.
//
// IsTransient() encodes the retryable subset; everything else is either a
// stable answer (kNotFound), a caller bug, or requires explicit recovery.
enum class ErrorCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kUnavailable,     // transient: node down, link down, queue closed
  kResourceExhausted,
  kDataLoss,        // replication gap, corrupt message
  kInternal,
};

std::string_view ErrorCodeName(ErrorCode code);

// True for the codes a caller may retry with backoff (kUnavailable,
// kResourceExhausted). kNotFound is deliberately excluded: a miss is a
// stable answer, not a fault.
constexpr bool IsTransient(ErrorCode code) {
  return code == ErrorCode::kUnavailable ||
         code == ErrorCode::kResourceExhausted;
}

// A success-or-error value. Cheap to copy on success (one enum); the error
// message is only allocated on failure.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status::Ok() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "NOT_FOUND: no such page" — for logs and test failure output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline bool IsTransient(const Status& status) {
  return IsTransient(status.code());
}

inline Status NotFoundError(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status InvalidArgumentError(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(ErrorCode::kUnavailable, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status DataLossError(std::string msg) {
  return Status(ErrorCode::kDataLoss, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}

// A value or an error. Accessing value() on an error aborts in debug
// builds; check ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(rep_).ok() &&
           "cannot construct Result<T> from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  // The error; returns OK if the result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(rep_) : fallback;
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace nagano
