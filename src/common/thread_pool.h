// Fixed-size worker pool. The trigger monitor renders affected pages on
// this pool — the paper's "updates performed on different processors from
// the ones serving pages".
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/queue.h"

namespace nagano {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Returns false after Shutdown().
  bool Submit(std::function<void()> task);

  // Block until every task submitted so far has finished executing. A task
  // that throws still counts as finished (and as failed), so Wait() cannot
  // hang on an exceptional task.
  void Wait();

  // Stop accepting tasks, drain the queue (every task already submitted
  // still runs), join workers. Idempotent and safe to call from multiple
  // threads; called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  uint64_t tasks_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  // Tasks whose exception was swallowed by the worker loop.
  uint64_t tasks_failed() const {
    return failed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
  std::mutex shutdown_mutex_;  // serializes concurrent Shutdown() calls
};

}  // namespace nagano
