#include "common/rng.h"

#include <cmath>

namespace nagano {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling over the largest multiple of n below 2^64.
  const uint64_t threshold = -n % n;  // == (2^64 - n) mod n
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  // 53 high-quality bits → [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng(NextU64()); }

ZipfDistribution::ZipfDistribution(size_t n, double s) : s_(s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // First index whose CDF exceeds u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace nagano
