// Unified metrics substrate — one process-wide registry of named,
// label-tagged counters, gauges, and histograms that every subsystem
// (cache, trigger monitor, renderer, serving path, HTTP server, fabric,
// ODG, database) registers into at construction.
//
// The paper's §5 evaluation was driven entirely by audited logs and live
// operator monitoring; this module is the reproduction's equivalent spine:
// the same cells back the legacy per-subsystem stats() accessors (thin
// snapshot views), the /metrics·/healthz·/statusz admin surface of the
// HTTP front end, and the figure benches.
//
// Concurrency contract:
//  * Counter is a sharded-atomic monotone counter — hot-path increments
//    touch one cache line per thread shard and never block, and reading is
//    a lock-free sum over the shards.
//  * Gauge is a single atomic double (Set/Add).
//  * Histogram wraps the common log-bucketed nagano::Histogram behind a
//    per-histogram mutex; Observe() happens on cold-ish paths (per batch /
//    per regenerated object), so the mutex is uncontended in practice.
//  * Registration is mutex-guarded get-or-create; the registry owns every
//    cell and never frees it, so subsystems hold raw pointers that stay
//    valid for the life of the process (Default() is deliberately leaked).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace nagano::metrics {

// Label set attached to a metric: sorted-on-registration key/value pairs.
// (name, labels) identifies a cell; two registrations with the same identity
// return the same cell.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing counter, sharded across cache lines so that
// concurrent writers (render workers, the epoll loop, serving threads) never
// contend. value() is a lock-free relaxed sum — monotone but not a linearized
// point snapshot, which is all monitoring needs.
class Counter {
 public:
  void Increment(uint64_t by = 1) {
    cells_[ShardIndex()].v.fetch_add(by, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  static size_t ShardIndex();
  std::array<Cell, kShards> cells_{};
};

// Instantaneous value (cache entries, bytes resident, graph nodes). Add()
// applies a delta so mutation paths can maintain the gauge incrementally.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // CAS loop instead of atomic<double>::fetch_add for toolchain
    // portability.
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Thread-safe distribution cell reusing the common log-bucketed Histogram
// as storage. snapshot() returns a plain Histogram copy, which is how the
// legacy TriggerStats view hands histograms back to callers unchanged.
class Histogram {
 public:
  void Observe(double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    h_.Add(value);
  }
  nagano::Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return h_;
  }
  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return h_.count();
  }

 private:
  mutable std::mutex mutex_;
  nagano::Histogram h_;
};

enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

// One rendered metric point, as returned by MetricRegistry::Snapshot().
struct Sample {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kCounter;
  std::string help;
  double value = 0.0;           // counters and gauges
  nagano::Histogram histogram;  // histograms only
};

class MetricRegistry {
 public:
  MetricRegistry() = default;

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // The process-wide registry every subsystem uses unless handed an
  // explicit one. Leaked on purpose: cells must outlive any static-duration
  // subsystem object.
  static MetricRegistry& Default();

  // Get-or-create. The same (name, labels) always returns the same cell, so
  // components sharing an identity share counts; per-instance uniqueness
  // comes from the instance label (see AutoInstance).
  Counter* GetCounter(std::string_view name, Labels labels = {},
                      std::string_view help = {});
  Gauge* GetGauge(std::string_view name, Labels labels = {},
                  std::string_view help = {});
  Histogram* GetHistogram(std::string_view name, Labels labels = {},
                          std::string_view help = {});

  // "cache" -> "cache1", "cache2", ... — unique within this registry.
  // Subsystems call this when constructed without an explicit instance
  // label, so two caches in one process never alias each other's cells.
  std::string AutoInstance(std::string_view prefix);

  // Point-in-time copy of every registered metric, registration-ordered.
  // Writers are never blocked: counter/gauge reads are lock-free and each
  // histogram is locked only long enough to copy its buckets.
  std::vector<Sample> Snapshot() const;

  // Prometheus text exposition format (version 0.0.4). Histograms render as
  // summaries: quantile-labelled series plus _sum and _count.
  std::string RenderPrometheus() const;

  // Human-readable per-subsystem snapshot for /statusz: metrics grouped by
  // the subsystem segment of their name, histograms as Summary() lines.
  std::string RenderStatusz() const;

  size_t size() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricType type = MetricType::kCounter;
    std::string help;
    // Exactly one of these is non-null, matching `type`.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreateLocked(std::string_view name, Labels labels,
                            std::string_view help, MetricType type);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // stable cell addresses
  // (name, type, sorted labels) identity -> entry, for O(log n) get-or-create.
  std::map<std::string, Entry*> index_;
  std::atomic<uint64_t> next_instance_{0};
};

// Scope every instrumented subsystem carries: which registry to register
// into (nullptr => Default()) and the value of the `site` label (empty =>
// auto-assigned via AutoInstance so instances never alias).
struct Options {
  MetricRegistry* registry = nullptr;
  std::string instance;
};

// Resolves Options to a concrete (registry, label set): picks Default() when
// no registry was given and auto-assigns the instance label when empty.
struct Scope {
  MetricRegistry* registry = nullptr;
  Labels labels;  // {{"site", <instance>}}

  static Scope Resolve(const Options& options, std::string_view auto_prefix);

  Counter* GetCounter(std::string_view name, std::string_view help = {}) const {
    return registry->GetCounter(name, labels, help);
  }
  Gauge* GetGauge(std::string_view name, std::string_view help = {}) const {
    return registry->GetGauge(name, labels, help);
  }
  Histogram* GetHistogram(std::string_view name,
                          std::string_view help = {}) const {
    return registry->GetHistogram(name, labels, help);
  }
  // Same scope with extra labels (e.g. per-complex fabric counters).
  Labels With(std::string_view key, std::string_view value) const;
};

}  // namespace nagano::metrics
