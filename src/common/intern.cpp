#include "common/intern.h"

#include <cassert>
#include <mutex>

namespace nagano {

InternId StringInterner::Intern(std::string_view s) {
  {
    std::shared_lock lock(mutex_);
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  auto it = index_.find(s);  // re-check: raced with another interner
  if (it != index_.end()) return it->second;
  const auto id = static_cast<InternId>(storage_.size());
  storage_.emplace_back(s);
  index_.emplace(std::string_view(storage_.back()), id);
  return id;
}

InternId StringInterner::Lookup(std::string_view s) const {
  std::shared_lock lock(mutex_);
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidInternId : it->second;
}

std::string_view StringInterner::Name(InternId id) const {
  std::shared_lock lock(mutex_);
  assert(id < storage_.size());
  return storage_[id];
}

size_t StringInterner::size() const {
  std::shared_lock lock(mutex_);
  return storage_.size();
}

}  // namespace nagano
