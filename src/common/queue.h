// Bounded/unbounded MPMC blocking queue. Backbone of the trigger monitor's
// work distribution and the thread pool.
#pragma once

#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>

namespace nagano {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity = std::numeric_limits<size_t>::max())
      : capacity_(capacity) {}

  // Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking; returns false if full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Empty optional means closed-and-drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking. Still drains remaining items after Close() — consumers
  // relying on drain-then-join shutdown (ThreadPool, the trigger monitor
  // dispatcher) keep popping until the queue is actually empty.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // No further pushes succeed; Pop() drains remaining items then returns
  // nullopt. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace nagano
