#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace nagano {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return 'D';
    case LogLevel::kInfo: return 'I';
    case LogLevel::kWarn: return 'W';
    case LogLevel::kError: return 'E';
    case LogLevel::kOff: return '?';
  }
  return '?';
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogV(LogLevel level, const char* file, int line, const char* fmt,
          va_list args) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char body[1024];
  std::vsnprintf(body, sizeof(body), fmt, args);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%c %s:%d] %s\n", LevelChar(level), Basename(file), line,
               body);
}

void Log(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  va_list args;
  va_start(args, fmt);
  LogV(level, file, line, fmt, args);
  va_end(args);
}

}  // namespace nagano
