// The unified Options convention (ISSUE 3 API redesign).
//
// Every configurable subsystem exposes one `XxxOptions` struct that
//   * derives from nagano::OptionsBase (a tag; C++20 aggregates stay
//     brace-initializable with a base),
//   * carries every knob the subsystem accepts — tuning values, the Clock,
//     the metrics scope, and the optional fault::FaultInjector — so a
//     constructor signature is always `Xxx(deps..., XxxOptions)`, and
//   * implements `Status Validate() const`, returning kInvalidArgument with
//     a message naming the offending field.
//
// Construction contract: fallible factories (ServingSite::Create) return
// the Validate() error as a Result; plain constructors call
// ValidateOrDie() so a bad configuration fails loudly at construction
// time, not as an assert deep inside a serving thread hours later. Callers
// who want graceful handling call options.Validate() themselves first.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <type_traits>

#include "common/result.h"

namespace nagano {

// Tag base for every XxxOptions struct. Intentionally empty: it exists so
// generic helpers (ValidateOrDie) can refuse non-Options types and so the
// convention is discoverable by grep.
struct OptionsBase {};

[[noreturn]] inline void DieOnInvalidOptions(const Status& status,
                                             const char* what) {
  std::fprintf(stderr, "FATAL: invalid %s: %s\n", what,
               status.ToString().c_str());
  std::abort();
}

// Validates `options` and aborts with a readable message on failure.
// Returns the options by const reference so constructors can validate in a
// member-initializer chain.
template <typename O>
const O& ValidateOrDie(const O& options, const char* what) {
  static_assert(std::is_base_of_v<OptionsBase, O>,
                "ValidateOrDie requires an OptionsBase-derived Options");
  if (Status s = options.Validate(); !s.ok()) DieOnInvalidOptions(s, what);
  return options;
}

}  // namespace nagano
