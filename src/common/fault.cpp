#include "common/fault.h"

#include <cinttypes>
#include <cstdio>

namespace nagano::fault {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError:
      return "ERROR";
    case FaultKind::kDelay:
      return "DELAY";
    case FaultKind::kDuplicate:
      return "DUPLICATE";
    case FaultKind::kWindow:
      return "WINDOW";
  }
  return "UNKNOWN";
}

Status FaultPlan::Validate() const {
  for (size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& rule = rules[i];
    auto fail = [&](const std::string& what) {
      return InvalidArgumentError("FaultPlan.rules[" + std::to_string(i) +
                                  "]: " + what);
    };
    if (rule.kind == FaultKind::kError && rule.error == ErrorCode::kOk) {
      return fail("kError rule must carry a non-OK error code");
    }
    if (rule.kind == FaultKind::kDelay && rule.delay <= 0) {
      return fail("kDelay rule must carry delay > 0");
    }
    if (rule.kind == FaultKind::kDuplicate && rule.duplicates == 0) {
      return fail("kDuplicate rule must carry duplicates > 0");
    }
    if (rule.until <= rule.from) {
      return fail("window is empty (until <= from)");
    }
    if (rule.probability < 0.0 || rule.probability > 1.0) {
      return fail("probability must be in [0, 1]");
    }
  }
  return Status::Ok();
}

FaultInjector::FaultInjector(FaultPlan plan, const Clock* clock)
    : plan_(std::move(plan)),
      clock_(clock != nullptr ? clock : &RealClock::Instance()) {
  ValidateOrDie(plan_, "FaultPlan");
  states_.resize(plan_.rules.size());
  for (size_t i = 0; i < states_.size(); ++i) {
    // Mix the rule index through SplitMix (inside Rng::Seed) so rule streams
    // are unrelated even for adjacent indices.
    states_[i].rng.Seed(plan_.seed + 0x9e3779b97f4a7c15ULL * (i + 1));
  }
  const auto scope = metrics::Scope::Resolve(plan_.metrics, "fault");
  injected_ = scope.GetCounter("nagano_fault_injected_total",
                               "faults injected by the fault plan");
}

bool FaultInjector::Matches(const FaultRule& rule, std::string_view subsystem,
                            std::string_view site,
                            std::string_view operation) const {
  return (rule.subsystem.empty() || rule.subsystem == subsystem) &&
         (rule.site.empty() || rule.site == site) &&
         (rule.operation.empty() || rule.operation == operation);
}

void FaultInjector::Record(const FaultRule& rule, TimeNs now, bool onset) {
  FaultEvent e;
  e.at = now;
  e.subsystem = rule.subsystem.empty() ? "*" : rule.subsystem;
  e.site = rule.site.empty() ? "*" : rule.site;
  e.operation = rule.operation.empty() ? "*" : rule.operation;
  e.kind = rule.kind;
  e.error = rule.kind == FaultKind::kError || rule.kind == FaultKind::kWindow
                ? rule.error
                : ErrorCode::kOk;
  e.delay = rule.kind == FaultKind::kDelay ? rule.delay : 0;
  e.onset = onset;
  timeline_.push_back(std::move(e));
  injected_->Increment();
}

FaultAction FaultInjector::Decide(std::string_view subsystem,
                                  std::string_view site,
                                  std::string_view operation) {
  FaultAction action;
  const TimeNs now = clock_->Now();
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.kind == FaultKind::kWindow) continue;  // queried via ActiveWindow
    if (now < rule.from || now >= rule.until) continue;
    if (!Matches(rule, subsystem, site, operation)) continue;
    RuleState& state = states_[i];
    if (state.matched++ < rule.skip_first) continue;
    if (state.fired >= rule.max_fires) continue;
    if (rule.probability < 1.0 && !state.rng.NextBool(rule.probability)) {
      continue;
    }
    ++state.fired;
    Record(rule, now, /*onset=*/true);
    switch (rule.kind) {
      case FaultKind::kError:
        if (action.status.ok()) {
          action.status = Status(
              rule.error, rule.message.empty()
                              ? "injected fault: " + std::string(subsystem) +
                                    "/" + std::string(site) + "/" +
                                    std::string(operation)
                              : rule.message);
        }
        break;
      case FaultKind::kDelay:
        action.delay += rule.delay;
        break;
      case FaultKind::kDuplicate:
        action.duplicates += rule.duplicates;
        break;
      case FaultKind::kWindow:
        break;
    }
  }
  return action;
}

bool FaultInjector::ActiveWindow(std::string_view subsystem,
                                 std::string_view site,
                                 std::string_view operation) {
  const TimeNs now = clock_->Now();
  bool active = false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.kind != FaultKind::kWindow) continue;
    if (!Matches(rule, subsystem, site, operation)) continue;
    RuleState& state = states_[i];
    const bool in_window = now >= rule.from && now < rule.until;
    if (in_window && !state.window_decided) {
      state.window_decided = true;
      state.window_fires = rule.probability >= 1.0 ||
                           state.rng.NextBool(rule.probability);
    }
    const bool fires = in_window && state.window_fires;
    if (fires != state.window_active) {
      state.window_active = fires;
      Record(rule, now, /*onset=*/fires);
    }
    if (!in_window) state.window_decided = false;  // re-roll next window pass
    active = active || fires;
  }
  return active;
}

std::vector<const FaultRule*> FaultInjector::WindowRules(
    std::string_view subsystem) const {
  std::vector<const FaultRule*> out;
  for (const FaultRule& rule : plan_.rules) {
    if (rule.kind != FaultKind::kWindow) continue;
    if (!rule.subsystem.empty() && rule.subsystem != subsystem) continue;
    out.push_back(&rule);
  }
  return out;
}

std::vector<FaultEvent> FaultInjector::Timeline() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timeline_;
}

std::string FaultInjector::TimelineString() const {
  const std::vector<FaultEvent> events = Timeline();
  std::string out;
  char line[256];
  for (const FaultEvent& e : events) {
    std::string detail;
    switch (e.kind) {
      case FaultKind::kError:
        detail = ErrorCodeName(e.error);
        break;
      case FaultKind::kDelay:
        std::snprintf(line, sizeof(line), "+%.3fms",
                      static_cast<double>(e.delay) / 1e6);
        detail = line;
        break;
      case FaultKind::kDuplicate:
        detail = "dup";
        break;
      case FaultKind::kWindow:
        detail = e.onset ? "begin" : "end";
        break;
    }
    std::snprintf(line, sizeof(line), "  t=%8.3fs %s/%s/%s %s %s\n",
                  static_cast<double>(e.at) / 1e9, e.subsystem.c_str(),
                  e.site.c_str(), e.operation.c_str(),
                  std::string(FaultKindName(e.kind)).c_str(), detail.c_str());
    out += line;
  }
  return out;
}

}  // namespace nagano::fault
