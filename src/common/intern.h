// Thread-safe string interner. ODG node names (URLs, database keys) are
// interned to dense 32-bit ids so graph storage and traversal work on
// integers.
#pragma once

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace nagano {

using InternId = uint32_t;
constexpr InternId kInvalidInternId = UINT32_MAX;

class StringInterner {
 public:
  // Returns the id for `s`, creating one if unseen. Ids are dense,
  // starting at 0, stable for the interner's lifetime.
  InternId Intern(std::string_view s);

  // kInvalidInternId if unseen. Never allocates.
  InternId Lookup(std::string_view s) const;

  // The interned string; id must be valid. The view stays valid for the
  // interner's lifetime (storage is a deque, never reallocated).
  std::string_view Name(InternId id) const;

  size_t size() const;

 private:
  // Reader/writer: lookups far outnumber first-time interns once the site
  // is built, and the re-render path resolves every name through here.
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string_view, InternId> index_;
  std::deque<std::string> storage_;
};

}  // namespace nagano
