// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum framing every WAL record and checkpoint image carries so replay
// can distinguish a fully committed record from a torn tail. Software
// table-driven implementation: no ISA dependence, and the WAL's record
// sizes (hundreds of bytes) keep it far off any hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nagano {

// CRC of `data` continued from `crc` (pass 0 to start a new checksum).
// Extend(Extend(0, a), b) == Crc32c(a+b), so framed writes can checksum
// header and payload without concatenating.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace nagano
