// The trigger monitor (paper §2, Fig. 6).
//
// "A component known as the trigger monitor is responsible for monitoring
// databases and notifying the cache when changes to the databases occur."
//
// This implementation subscribes to the database change log, coalesces
// committed changes into batches, maps each change to the underlying-data
// ODG vertices it touched (via a pluggable ChangeMapper — the Olympic
// mapper lives in pagegen/olympic.h), runs DUP to find the affected cached
// objects, and applies a consistency policy:
//
//   kDupUpdateInPlace  — 1998 Nagano: regenerate each affected object and
//                        store it back, so hot pages never miss;
//   kDupInvalidate     — precise invalidation: drop exactly the affected set;
//   kConservative1996  — 1996 Atlanta baseline: invalidate configured page
//                        prefixes per changed table (a large superset);
//   kNone              — no maintenance (staleness baseline).
//
// All regeneration happens on the monitor's own threads — the paper ran
// updates "on different processors from the ones serving pages" so update
// bursts would not hurt response times.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/fleet.h"
#include "cache/object_cache.h"
#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/queue.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "db/database.h"
#include "odg/dup.h"
#include "odg/graph.h"
#include "pagegen/renderer.h"

namespace nagano::trigger {

enum class CachePolicy {
  kDupUpdateInPlace,
  kDupInvalidate,
  kConservative1996,
  kNone,
};

std::string_view CachePolicyName(CachePolicy policy);

struct TriggerOptions : OptionsBase {
  CachePolicy policy = CachePolicy::kDupUpdateInPlace;

  // Render workers for the update-in-place policy. 1 = fully sequential.
  // With more, the affected set is partitioned by DUP topological level:
  // objects sharing a level are mutually independent and regenerate in
  // parallel (one contiguous, NodeId-ordered chunk per worker); levels run
  // in ascending order with a barrier between them, so fragments are always
  // fresh before the pages embedding them re-render.
  size_t worker_threads = 1;

  // Levels with at most this many affected objects render inline on the
  // trigger thread instead of round-tripping through the pool: for tiny
  // levels the submit/wake/barrier overhead exceeds the render work itself,
  // which is what dragged the measured parallel "speedup" below 1.0 on
  // small hosts. Effective parallelism is additionally clamped to the
  // machine's hardware concurrency — more workers than cores only adds
  // scheduler churn.
  size_t inline_render_cutover = 32;

  // Coalesce up to this many queued change records into one DUP run.
  size_t batch_max = 64;

  // Passed through to the DUP engine.
  double obsolescence_threshold = 0.0;
  bool enable_simple_fast_path = true;

  // kConservative1996: table name -> cache-key prefixes to bulk-invalidate
  // when any row of that table changes. Empty map = invalidate everything.
  std::map<std::string, std::vector<std::string>> conservative_prefixes;

  // Optional per-node serving caches (Fig. 6: the trigger monitor
  // "distributed updated pages to each of the eight UP's"). When set,
  // update-in-place pushes each regenerated body to every fleet node and
  // invalidations propagate fleet-wide. Not owned.
  cache::CacheFleet* fleet = nullptr;

  // Clock for batching latencies and propagation stamps. nullptr =
  // RealClock.
  const Clock* clock = nullptr;

  // Consulted per commit notification ({"trigger", <instance>, "notify"}):
  // kError drops the notification (healed from the change log by the next
  // one, or by CatchUp()); kDuplicate delivers it again.
  fault::FaultInjector* faults = nullptr;

  // Registry + instance label for the nagano_trigger_* metrics.
  metrics::Options metrics;

  Status Validate() const;
};

// Default 1996-style mapping for the Olympic site: any scoring change blows
// away every results-bearing page family.
std::map<std::string, std::vector<std::string>> OlympicConservativePrefixes();

struct TriggerStats {
  uint64_t changes_processed = 0;
  uint64_t batches = 0;
  uint64_t dup_runs = 0;
  uint64_t objects_updated = 0;      // update-in-place count
  uint64_t objects_invalidated = 0;
  uint64_t objects_skipped = 0;      // affected but uncached (regenerate on demand)
  uint64_t render_failures = 0;
  // Composition plans refreshed by fragment swap instead of a page
  // re-render (the fragment-first DUP fast path).
  uint64_t plans_patched = 0;
  // Total bytes produced by update-in-place re-renders (registry name
  // nagano_dup_rerendered_bytes_total). A patched plan contributes nothing
  // — only the re-rendered fragment's bytes count — so this is the
  // fragment-vs-whole-page fanout cost the update bench gates on.
  uint64_t rerendered_bytes = 0;
  // --- fault-path counters ------------------------------------------------
  uint64_t notifications_dropped = 0;    // injected drops (lost notifications)
  uint64_t notifications_recovered = 0;  // changes healed from the change log
  uint64_t duplicates_injected = 0;      // injected re-deliveries
  // --- parallel-pipeline stage counters -----------------------------------
  uint64_t changes_coalesced = 0;    // changes that rode along in a multi-change batch
  uint64_t render_jobs = 0;          // per-worker render jobs dispatched to the pool
  uint64_t renders_attempted = 0;    // regenerations tried (updated + failed)
  Histogram update_latency_ms;       // commit -> cache consistent, per batch
  Histogram fanout;                  // affected objects per batch
  Histogram fanout_bytes;            // bytes re-rendered per batch/commit
  Histogram batch_apply_ms;          // regenerate + distribute time per batch
  Histogram batch_levels;            // topological stages per update-in-place batch
  // Commit -> cache-visible, per affected object (registry name
  // nagano_dup_propagation_latency_ms). Finer-grained than
  // update_latency_ms: each object is stamped the moment its fresh body
  // (or its removal) becomes visible to readers, not at batch end.
  Histogram propagation_latency_ms;
};

class TriggerMonitor : public db::ChangeSink {
 public:
  // Names the underlying-data vertices a change touched.
  using ChangeMapper =
      std::function<std::vector<std::string>(const db::ChangeRecord&)>;

  TriggerMonitor(db::Database* db, odg::ObjectDependenceGraph* graph,
                 cache::ObjectCache* cache, pagegen::PageRenderer* renderer,
                 ChangeMapper mapper, TriggerOptions options = {});
  ~TriggerMonitor();

  TriggerMonitor(const TriggerMonitor&) = delete;
  TriggerMonitor& operator=(const TriggerMonitor&) = delete;

  // Subscribes to the database and starts the dispatcher thread.
  void Start();

  // Unsubscribes, drains the queue, joins threads. Idempotent.
  void Stop();

  // Blocks until every change committed before the call has been fully
  // processed (its cache effects applied). The consistency property tests
  // are phrased against this barrier.
  void Quiesce();

  // True between Start() and Stop() — the /healthz "trigger running" probe.
  bool running() const { return running_.load(std::memory_order_relaxed); }

  // Changes enqueued but not yet applied to the cache. A bounded backlog is
  // the paper's ≤60 s freshness guarantee in queue form.
  uint64_t backlog() const;

  // Re-reads the change feed past the per-shard cursor and enqueues
  // anything missed — the recovery half of lossy notifications. The same
  // healing runs implicitly whenever a later notification arrives; CatchUp
  // forces it when no further change is coming. Returns changes recovered.
  size_t CatchUp();

  TriggerStats stats() const;

 private:
  // db::ChangeSink: fires synchronously on every commit (subscribed with
  // kAllShards — the monitor maintains the whole cache; per-shard
  // subscriptions are for consumers owning a slice).
  void OnChange(uint32_t shard, const db::ChangeRecord& change) override;
  // Pushes one record (counted for Quiesce), rolling back if the queue
  // already closed. Never called with seq_mutex_ held.
  void EnqueueChange(const db::ChangeRecord& change);
  void DispatchLoop();
  void ProcessBatch(const std::vector<db::ChangeRecord>& batch);
  // `oldest_commit` is the earliest committed_at in the batch; the apply
  // paths stamp each object's commit -> cache-visible propagation latency
  // against it.
  void ApplyUpdateInPlace(const odg::DupResult& dup, TimeNs oldest_commit);
  void ApplyInvalidate(const odg::DupResult& dup, TimeNs oldest_commit);
  void ApplyConservative(const std::vector<db::ChangeRecord>& batch);

  db::Database* db_;
  odg::ObjectDependenceGraph* graph_;
  cache::ObjectCache* cache_;
  pagegen::PageRenderer* renderer_;
  ChangeMapper mapper_;
  TriggerOptions options_;
  const Clock* clock_;
  fault::FaultInjector* faults_;
  std::string instance_;  // fault-injection site name (== metrics label)

  // Per-shard positions of the highest change ever enqueued; the
  // gap-healing watermark. A dropped notification shows up as a hole in
  // one shard's dense numbering, healed from that shard's log alone.
  std::mutex seq_mutex_;
  db::ChangeCursor cursor_;

  BlockingQueue<db::ChangeRecord> queue_;
  std::unique_ptr<ThreadPool> pool_;  // only when worker_threads > 1
  std::thread dispatcher_;
  uint64_t subscription_ = 0;
  std::atomic<bool> running_{false};

  mutable std::mutex mutex_;  // guards the quiesce counters
  std::condition_variable quiesce_cv_;
  uint64_t enqueued_ = 0;
  uint64_t processed_ = 0;

  // Registry cells; the legacy TriggerStats view in stats() is assembled
  // from these (histograms via snapshot()).
  metrics::Counter* changes_processed_;
  metrics::Counter* batches_;
  metrics::Counter* dup_runs_;
  metrics::Counter* objects_updated_;
  metrics::Counter* objects_invalidated_;
  metrics::Counter* objects_skipped_;
  metrics::Counter* render_failures_;
  metrics::Counter* plans_patched_;
  metrics::Counter* rerendered_bytes_;
  metrics::Counter* changes_coalesced_;
  metrics::Counter* render_jobs_;
  metrics::Counter* renders_attempted_;
  metrics::Counter* notifications_dropped_;
  metrics::Counter* notifications_recovered_;
  metrics::Counter* duplicates_injected_;
  metrics::Histogram* update_latency_ms_;
  metrics::Histogram* fanout_;
  metrics::Histogram* fanout_bytes_;
  metrics::Histogram* batch_apply_ms_;
  metrics::Histogram* batch_levels_;
  // Commit -> cache-visible latency per affected object, the paper's ≤60 s
  // freshness bound made measurable.
  metrics::Histogram* propagation_latency_ms_;
};

}  // namespace nagano::trigger
