#include "trigger/trigger_monitor.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "common/logging.h"

namespace nagano::trigger {

std::string_view CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kDupUpdateInPlace: return "dup-update-in-place";
    case CachePolicy::kDupInvalidate: return "dup-invalidate";
    case CachePolicy::kConservative1996: return "conservative-1996";
    case CachePolicy::kNone: return "none";
  }
  return "unknown";
}

std::map<std::string, std::vector<std::string>> OlympicConservativePrefixes() {
  // The 1996 site could not tell which pages a scoring change affected, so
  // it invalidated whole page families. Any results/medal/event change
  // clears every page that *might* show results; news clears the news
  // family and the home pages.
  const std::vector<std::string> results_family = {
      "/day/", "/event/", "/sport/", "/athlete/", "/country/",
      "/medals", "frag:"};
  return {
      {"results", results_family},
      {"events", results_family},
      {"medals", results_family},
      {"countries", results_family},
      {"athletes", {"/athlete/", "/country/", "/event/"}},
      {"news", {"/news", "/day/", "/country/", "frag:news:latest"}},
  };
}

Status TriggerOptions::Validate() const {
  if (worker_threads == 0) {
    return InvalidArgumentError("TriggerOptions.worker_threads must be >= 1");
  }
  if (batch_max == 0) {
    return InvalidArgumentError("TriggerOptions.batch_max must be >= 1");
  }
  if (obsolescence_threshold < 0.0) {
    return InvalidArgumentError(
        "TriggerOptions.obsolescence_threshold must be >= 0");
  }
  return Status::Ok();
}

TriggerMonitor::TriggerMonitor(db::Database* db,
                               odg::ObjectDependenceGraph* graph,
                               cache::ObjectCache* cache,
                               pagegen::PageRenderer* renderer,
                               ChangeMapper mapper, TriggerOptions options)
    : db_(db),
      graph_(graph),
      cache_(cache),
      renderer_(renderer),
      mapper_(std::move(mapper)),
      options_((ValidateOrDie(options, "TriggerOptions"), std::move(options))),
      clock_(options_.clock ? options_.clock : &RealClock::Instance()),
      faults_(options_.faults) {
  assert(db_ && graph_ && cache_ && renderer_ && mapper_);
  if (options_.worker_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }

  const auto scope = metrics::Scope::Resolve(options_.metrics, "trigger");
  instance_ = scope.labels.empty() ? std::string() : scope.labels[0].second;
  changes_processed_ = scope.GetCounter("nagano_trigger_changes_processed_total",
                                        "database changes applied");
  batches_ =
      scope.GetCounter("nagano_trigger_batches_total", "coalesced DUP batches");
  dup_runs_ =
      scope.GetCounter("nagano_trigger_dup_runs_total", "DUP traversals");
  objects_updated_ = scope.GetCounter("nagano_trigger_objects_updated_total",
                                      "objects regenerated in place");
  objects_invalidated_ =
      scope.GetCounter("nagano_trigger_objects_invalidated_total",
                       "objects dropped from the cache");
  objects_skipped_ =
      scope.GetCounter("nagano_trigger_objects_skipped_total",
                       "affected but uncached objects left to on-demand render");
  render_failures_ = scope.GetCounter("nagano_trigger_render_failures_total",
                                      "regenerations that failed");
  plans_patched_ = scope.GetCounter(
      "nagano_trigger_plans_patched_total",
      "composition plans refreshed by fragment swap (no page re-render)");
  rerendered_bytes_ = scope.GetCounter(
      "nagano_dup_rerendered_bytes_total",
      "bytes produced by update-in-place re-renders");
  changes_coalesced_ =
      scope.GetCounter("nagano_trigger_changes_coalesced_total",
                       "changes that rode along in a multi-change batch");
  render_jobs_ = scope.GetCounter("nagano_trigger_render_jobs_total",
                                  "render jobs dispatched to the pool");
  renders_attempted_ = scope.GetCounter(
      "nagano_trigger_renders_attempted_total", "regenerations tried");
  notifications_dropped_ =
      scope.GetCounter("nagano_trigger_notifications_dropped_total",
                       "commit notifications lost to injected faults");
  notifications_recovered_ =
      scope.GetCounter("nagano_trigger_notifications_recovered_total",
                       "dropped changes healed from the change log");
  duplicates_injected_ =
      scope.GetCounter("nagano_trigger_duplicates_injected_total",
                       "injected duplicate notification deliveries");
  update_latency_ms_ =
      scope.GetHistogram("nagano_trigger_update_latency_ms",
                         "commit to cache-consistent latency per batch (ms)");
  fanout_ = scope.GetHistogram("nagano_trigger_fanout",
                               "affected objects per batch");
  fanout_bytes_ = scope.GetHistogram("nagano_dup_fanout_bytes",
                                     "bytes re-rendered per update batch");
  batch_apply_ms_ = scope.GetHistogram(
      "nagano_trigger_batch_apply_ms",
      "regenerate + distribute wall time per batch (ms)");
  batch_levels_ =
      scope.GetHistogram("nagano_trigger_batch_levels",
                         "topological stages per update-in-place batch");
  propagation_latency_ms_ = scope.GetHistogram(
      "nagano_dup_propagation_latency_ms",
      "commit to cache-visible latency per affected object (ms)");
}

TriggerMonitor::~TriggerMonitor() { Stop(); }

void TriggerMonitor::Start() {
  if (running_.exchange(true)) return;
  // Changes already in the log predate this monitor (e.g. the site build);
  // gap-healing must only recover what was committed while running, or the
  // first notification would replay the whole build log.
  {
    std::lock_guard<std::mutex> lock(seq_mutex_);
    cursor_ = db_->AppliedCursor();
  }
  subscription_ = db_->Subscribe(this, db::kAllShards);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

void TriggerMonitor::EnqueueChange(const db::ChangeRecord& change) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++enqueued_;
  }
  if (!queue_.Push(change)) {
    // Raced with Stop(): the queue is closed and this change will never
    // be processed. Roll the counter back, or a concurrent Quiesce()
    // would wait forever on a change nobody is going to process.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --enqueued_;
    }
    quiesce_cv_.notify_all();
  }
}

void TriggerMonitor::OnChange(uint32_t shard, const db::ChangeRecord& change) {
  const auto fate = fault::Decide(faults_, "trigger", instance_, "notify");
  if (!fate.status.ok()) {
    // Lost notification. The commit is durable in the change log, so the
    // next notification (or an explicit CatchUp) heals the gap.
    notifications_dropped_->Increment();
    return;
  }
  std::vector<db::ChangeRecord> to_enqueue;
  {
    std::lock_guard<std::mutex> lock(seq_mutex_);
    if (cursor_.positions.size() <= shard) {
      cursor_.positions.resize(shard + 1, 0);
    }
    const uint64_t pos = cursor_.positions[shard];
    if (change.shard_seqno > pos + 1) {
      // Earlier notifications from this shard were dropped; recover them
      // from the shard's log in order, ahead of this change. (A read
      // failure leaves the hole for CatchUp — or skips records already
      // truncated, exactly like the pre-cursor watermark did.)
      auto missed_or =
          db_->ReadShardChanges(shard, pos, change.shard_seqno - pos - 1);
      if (missed_or.ok()) {
        for (auto& missed : missed_or.value()) {
          if (missed.shard_seqno >= change.shard_seqno) break;
          to_enqueue.push_back(std::move(missed));
        }
        notifications_recovered_->Increment(to_enqueue.size());
      }
    }
    if (change.shard_seqno > pos) cursor_.positions[shard] = change.shard_seqno;
  }
  to_enqueue.push_back(change);
  for (uint32_t i = 0; i < fate.duplicates; ++i) to_enqueue.push_back(change);
  if (fate.duplicates > 0) duplicates_injected_->Increment(fate.duplicates);
  for (const auto& record : to_enqueue) EnqueueChange(record);
}

size_t TriggerMonitor::CatchUp() {
  if (!running_.load(std::memory_order_relaxed)) return 0;
  std::vector<db::ChangeRecord> to_enqueue;
  {
    std::lock_guard<std::mutex> lock(seq_mutex_);
    // Two passes at most: the second only runs when a shard's records were
    // truncated past the cursor — clamp to the oldest retained position
    // and take what survives.
    for (int attempt = 0; attempt < 2; ++attempt) {
      auto batch_or = db_->ReadChanges(cursor_);
      if (!batch_or.ok()) break;
      db::ChangeBatch& batch = batch_or.value();
      for (auto& record : batch.records) {
        to_enqueue.push_back(std::move(record));
      }
      cursor_ = std::move(batch.next);
      if (batch.gap_shards.empty()) break;
      const db::ChangeCursor retained = db_->RetainedCursor();
      for (const uint32_t shard : batch.gap_shards) {
        if (cursor_.positions.size() <= shard) {
          cursor_.positions.resize(shard + 1, 0);
        }
        cursor_.positions[shard] =
            std::max(cursor_.positions[shard], retained.at(shard));
      }
    }
    if (!to_enqueue.empty()) {
      notifications_recovered_->Increment(to_enqueue.size());
    }
  }
  std::sort(to_enqueue.begin(), to_enqueue.end(),
            [](const db::ChangeRecord& a, const db::ChangeRecord& b) {
              return a.seqno < b.seqno;
            });
  for (const auto& record : to_enqueue) EnqueueChange(record);
  return to_enqueue.size();
}

void TriggerMonitor::Stop() {
  if (!running_.exchange(false)) return;
  // Drain-then-join: Close() stops new pushes but the dispatcher keeps
  // popping until the queue is empty, so every change enqueued before Stop
  // still reaches the cache. The pool shuts down only after the dispatcher
  // has joined (it is the sole submitter), so no render job is dropped.
  db_->Unsubscribe(subscription_);
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (pool_) pool_->Shutdown();
}

void TriggerMonitor::Quiesce() {
  std::unique_lock<std::mutex> lock(mutex_);
  quiesce_cv_.wait(lock, [&] { return processed_ == enqueued_; });
}

uint64_t TriggerMonitor::backlog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enqueued_ - processed_;
}

void TriggerMonitor::DispatchLoop() {
  for (;;) {
    auto first = queue_.Pop();
    if (!first) return;  // closed and drained
    std::vector<db::ChangeRecord> batch;
    batch.push_back(std::move(*first));
    while (batch.size() < options_.batch_max) {
      auto next = queue_.TryPop();
      if (!next) break;
      batch.push_back(std::move(*next));
    }
    ProcessBatch(batch);
    batches_->Increment();
    changes_processed_->Increment(batch.size());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      processed_ += batch.size();
    }
    quiesce_cv_.notify_all();
  }
}

void TriggerMonitor::ProcessBatch(const std::vector<db::ChangeRecord>& batch) {
  if (options_.policy == CachePolicy::kNone) return;
  if (options_.policy == CachePolicy::kConservative1996) {
    ApplyConservative(batch);
    return;
  }

  // Map changes to underlying-data vertices. Unknown vertices (nothing
  // cached ever depended on them) simply have no out-edges.
  std::vector<odg::NodeId> changed;
  for (const auto& change : batch) {
    for (const std::string& node : mapper_(change)) {
      const odg::NodeId id =
          graph_->EnsureNode(node, odg::NodeKind::kUnderlyingData);
      changed.push_back(id);
    }
  }
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());

  odg::DupOptions dup_options;
  dup_options.obsolescence_threshold = options_.obsolescence_threshold;
  dup_options.enable_simple_fast_path = options_.enable_simple_fast_path;
  const odg::DupResult dup =
      odg::DupEngine::ComputeAffected(*graph_, changed, dup_options);

  dup_runs_->Increment();
  if (batch.size() > 1) changes_coalesced_->Increment(batch.size() - 1);
  fanout_->Observe(static_cast<double>(dup.affected.size()));

  // Oldest commit in the batch: the floor every per-object propagation
  // observation is stamped against.
  TimeNs oldest = batch.front().committed_at;
  for (const auto& c : batch) oldest = std::min(oldest, c.committed_at);

  const TimeNs apply_start = clock_->Now();
  if (options_.policy == CachePolicy::kDupUpdateInPlace) {
    ApplyUpdateInPlace(dup, oldest);
  } else {
    ApplyInvalidate(dup, oldest);
  }
  const double apply_ms = ToMillis(clock_->Now() - apply_start);
  batch_apply_ms_->Observe(std::max(0.0, apply_ms));

  // Batch latency: oldest commit in the batch -> now.
  const double latency_ms = ToMillis(clock_->Now() - oldest);
  update_latency_ms_->Observe(std::max(0.0, latency_ms));
}

void TriggerMonitor::ApplyUpdateInPlace(const odg::DupResult& dup,
                                        TimeNs oldest_commit) {
  // dup.affected carries a topological level per object: objects sharing a
  // level have no dependence path between them, so each level regenerates
  // in parallel; levels run in ascending order with a barrier between them
  // so a page always splices the already-refreshed fragments of earlier
  // levels. Partitioning is deterministic — within a level objects are
  // NodeId-sorted and carved into one contiguous chunk per worker — so a
  // feed day produces the same render schedule at any worker count.
  enum class Outcome { kUpdated, kSkipped, kFailed };
  std::atomic<uint64_t> updated{0}, failures{0}, skipped{0}, attempted{0};
  std::atomic<uint64_t> patched{0}, bytes_rerendered{0};

  // dup.obsolete is NodeId-sorted, so closure membership is a binary search.
  auto in_closure = [&](odg::NodeId id) {
    return std::binary_search(dup.obsolete.begin(), dup.obsolete.end(), id);
  };
  // A cached composition plan can absorb this update by fragment swap iff
  // every obsolete input feeding the page is a fragment the plan embeds.
  // Any obsolete direct data dependence (or a fragment the plan does not
  // carry — the layout changed since the plan was stored) forces a full
  // re-render.
  auto plan_patchable = [&](const odg::AffectedObject& obj,
                            const cache::CachedObject& cached) {
    for (const odg::Edge& e : graph_->InEdges(obj.id)) {
      if (!in_closure(e.to)) continue;
      if (graph_->kind(e.to) != odg::NodeKind::kBoth) return false;
      const std::string_view frag = graph_->name(e.to);
      const bool in_plan =
          std::any_of(cached.plan.begin(), cached.plan.end(),
                      [&](const cache::PlanChunk& chunk) {
                        return chunk.fragment == frag;
                      });
      if (!in_plan) return false;
    }
    return true;
  };

  auto regenerate = [&](const odg::AffectedObject& obj) -> Outcome {
    const std::string name(graph_->name(obj.id));
    // Only refresh objects that are actually cached somewhere; uncached
    // pages will be generated (with fresh data) on their next request.
    const bool in_fleet =
        options_.fleet != nullptr && options_.fleet->ContainsAnywhere(name);
    if (!cache_->Contains(name) && !in_fleet) return Outcome::kSkipped;

    // Fragment-first fast path: the level barrier already refreshed every
    // fragment this page embeds, so the plan just re-pins them and
    // recomputes its entity headers — no generator run, ~zero fanout bytes.
    if (const auto cached = cache_->Peek(name);
        cached != nullptr && cached->is_plan() &&
        plan_patchable(obj, *cached) && cache_->PatchPlan(name) != 0) {
      patched.fetch_add(1, std::memory_order_relaxed);
      // Fleet nodes hold flat copies; distribution materializes once.
      if (options_.fleet != nullptr) {
        if (const auto fresh = cache_->Peek(name)) {
          options_.fleet->PutAll(name, fresh->Materialize());
        }
      }
      propagation_latency_ms_->Observe(
          std::max(0.0, ToMillis(clock_->Now() - oldest_commit)));
      return Outcome::kUpdated;
    }

    attempted.fetch_add(1, std::memory_order_relaxed);
    auto body = renderer_->RenderAndCache(name);
    if (!body.ok()) return Outcome::kFailed;
    bytes_rerendered.fetch_add(body.value().size(), std::memory_order_relaxed);
    // Fig. 6 distribution: push the fresh copy to every serving node.
    if (options_.fleet != nullptr) {
      options_.fleet->PutAll(name, body.value());
    }
    // The fresh body is now what readers see: stamp commit -> cache-visible.
    propagation_latency_ms_->Observe(
        std::max(0.0, ToMillis(clock_->Now() - oldest_commit)));
    return Outcome::kUpdated;
  };
  auto tally = [&](Outcome outcome) {
    if (outcome == Outcome::kUpdated) {
      updated.fetch_add(1, std::memory_order_relaxed);
    } else if (outcome == Outcome::kFailed) {
      failures.fetch_add(1, std::memory_order_relaxed);
    } else {
      skipped.fetch_add(1, std::memory_order_relaxed);
    }
  };

  uint64_t jobs = 0;
  if (pool_ == nullptr) {
    for (const auto& obj : dup.affected) tally(regenerate(obj));
  } else {
    std::vector<std::vector<const odg::AffectedObject*>> levels(dup.num_levels);
    for (const auto& obj : dup.affected) levels[obj.level].push_back(&obj);
    // Clamp parallelism to the machine: a pool wider than the core count
    // cannot render faster, it only shrinks chunks and adds dispatch churn.
    const size_t hw =
        std::max<size_t>(1, std::thread::hardware_concurrency());
    const size_t workers = std::min(pool_->num_threads(), hw);
    for (auto& level : levels) {
      std::sort(level.begin(), level.end(),
                [](const odg::AffectedObject* a, const odg::AffectedObject* b) {
                  return a->id < b->id;
                });
      if (workers <= 1 || level.size() <= 1 ||
          level.size() <= options_.inline_render_cutover) {
        // Not worth a pool round-trip.
        for (const auto* obj : level) tally(regenerate(*obj));
        continue;
      }
      const size_t chunk = (level.size() + workers - 1) / workers;
      for (size_t begin = 0; begin < level.size(); begin += chunk) {
        const size_t end = std::min(begin + chunk, level.size());
        auto job = [&, begin, end, &level_ref = level] {
          for (size_t i = begin; i < end; ++i) tally(regenerate(*level_ref[i]));
        };
        ++jobs;
        if (!pool_->Submit(job)) job();  // pool shut down: run inline
      }
      pool_->Wait();  // barrier: next level may embed this level's output
    }
  }

  objects_updated_->Increment(updated.load());
  render_failures_->Increment(failures.load());
  objects_skipped_->Increment(skipped.load());
  renders_attempted_->Increment(attempted.load());
  render_jobs_->Increment(jobs);
  plans_patched_->Increment(patched.load());
  rerendered_bytes_->Increment(bytes_rerendered.load());
  fanout_bytes_->Observe(static_cast<double>(bytes_rerendered.load()));
  batch_levels_->Observe(static_cast<double>(dup.num_levels));
}

void TriggerMonitor::ApplyInvalidate(const odg::DupResult& dup,
                                     TimeNs oldest_commit) {
  uint64_t invalidated = 0;
  for (const auto& obj : dup.affected) {
    const std::string name(graph_->name(obj.id));
    if (cache_->Invalidate(name)) {
      ++invalidated;
      // Staleness window closed by removal rather than refresh.
      propagation_latency_ms_->Observe(
          std::max(0.0, ToMillis(clock_->Now() - oldest_commit)));
    }
    if (options_.fleet != nullptr) options_.fleet->InvalidateAll(name);
  }
  objects_invalidated_->Increment(invalidated);
}

void TriggerMonitor::ApplyConservative(
    const std::vector<db::ChangeRecord>& batch) {
  uint64_t invalidated = 0;
  std::vector<std::string> prefixes;
  for (const auto& change : batch) {
    if (options_.conservative_prefixes.empty()) {
      prefixes.push_back("");  // invalidate everything
      break;
    }
    auto it = options_.conservative_prefixes.find(change.table);
    if (it == options_.conservative_prefixes.end()) continue;
    for (const auto& p : it->second) prefixes.push_back(p);
  }
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());
  for (const auto& p : prefixes) {
    invalidated += cache_->InvalidatePrefix(p);
    if (options_.fleet != nullptr) options_.fleet->InvalidatePrefixAll(p);
  }
  objects_invalidated_->Increment(invalidated);
  fanout_->Observe(static_cast<double>(invalidated));
}

TriggerStats TriggerMonitor::stats() const {
  // Assembled snapshot view over the registry cells — same field values the
  // pre-registry struct carried, so benches and tests read it unchanged.
  TriggerStats s;
  s.changes_processed = changes_processed_->value();
  s.batches = batches_->value();
  s.dup_runs = dup_runs_->value();
  s.objects_updated = objects_updated_->value();
  s.objects_invalidated = objects_invalidated_->value();
  s.objects_skipped = objects_skipped_->value();
  s.render_failures = render_failures_->value();
  s.plans_patched = plans_patched_->value();
  s.rerendered_bytes = rerendered_bytes_->value();
  s.changes_coalesced = changes_coalesced_->value();
  s.render_jobs = render_jobs_->value();
  s.renders_attempted = renders_attempted_->value();
  s.notifications_dropped = notifications_dropped_->value();
  s.notifications_recovered = notifications_recovered_->value();
  s.duplicates_injected = duplicates_injected_->value();
  s.update_latency_ms = update_latency_ms_->snapshot();
  s.fanout = fanout_->snapshot();
  s.fanout_bytes = fanout_bytes_->snapshot();
  s.batch_apply_ms = batch_apply_ms_->snapshot();
  s.batch_levels = batch_levels_->snapshot();
  s.propagation_latency_ms = propagation_latency_ms_->snapshot();
  return s;
}

}  // namespace nagano::trigger
