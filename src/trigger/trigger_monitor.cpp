#include "trigger/trigger_monitor.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace nagano::trigger {

std::string_view CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kDupUpdateInPlace: return "dup-update-in-place";
    case CachePolicy::kDupInvalidate: return "dup-invalidate";
    case CachePolicy::kConservative1996: return "conservative-1996";
    case CachePolicy::kNone: return "none";
  }
  return "unknown";
}

std::map<std::string, std::vector<std::string>> OlympicConservativePrefixes() {
  // The 1996 site could not tell which pages a scoring change affected, so
  // it invalidated whole page families. Any results/medal/event change
  // clears every page that *might* show results; news clears the news
  // family and the home pages.
  const std::vector<std::string> results_family = {
      "/day/", "/event/", "/sport/", "/athlete/", "/country/",
      "/medals", "frag:"};
  return {
      {"results", results_family},
      {"events", results_family},
      {"medals", results_family},
      {"countries", results_family},
      {"athletes", {"/athlete/", "/country/", "/event/"}},
      {"news", {"/news", "/day/", "/country/", "frag:news:latest"}},
  };
}

TriggerMonitor::TriggerMonitor(db::Database* db,
                               odg::ObjectDependenceGraph* graph,
                               cache::ObjectCache* cache,
                               pagegen::PageRenderer* renderer,
                               ChangeMapper mapper, TriggerOptions options,
                               const Clock* clock)
    : db_(db),
      graph_(graph),
      cache_(cache),
      renderer_(renderer),
      mapper_(std::move(mapper)),
      options_(std::move(options)),
      clock_(clock ? clock : &RealClock::Instance()) {
  assert(db_ && graph_ && cache_ && renderer_ && mapper_);
  if (options_.worker_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
}

TriggerMonitor::~TriggerMonitor() { Stop(); }

void TriggerMonitor::Start() {
  if (running_.exchange(true)) return;
  subscription_ = db_->Subscribe([this](const db::ChangeRecord& change) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++enqueued_;
    }
    queue_.Push(change);
  });
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

void TriggerMonitor::Stop() {
  if (!running_.exchange(false)) return;
  db_->Unsubscribe(subscription_);
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (pool_) pool_->Shutdown();
}

void TriggerMonitor::Quiesce() {
  std::unique_lock<std::mutex> lock(mutex_);
  quiesce_cv_.wait(lock, [&] { return processed_ == enqueued_; });
}

void TriggerMonitor::DispatchLoop() {
  for (;;) {
    auto first = queue_.Pop();
    if (!first) return;  // closed and drained
    std::vector<db::ChangeRecord> batch;
    batch.push_back(std::move(*first));
    while (batch.size() < options_.batch_max) {
      auto next = queue_.TryPop();
      if (!next) break;
      batch.push_back(std::move(*next));
    }
    ProcessBatch(batch);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      processed_ += batch.size();
      ++stats_.batches;
      stats_.changes_processed += batch.size();
    }
    quiesce_cv_.notify_all();
  }
}

void TriggerMonitor::ProcessBatch(const std::vector<db::ChangeRecord>& batch) {
  if (options_.policy == CachePolicy::kNone) return;
  if (options_.policy == CachePolicy::kConservative1996) {
    ApplyConservative(batch);
    return;
  }

  // Map changes to underlying-data vertices. Unknown vertices (nothing
  // cached ever depended on them) simply have no out-edges.
  std::vector<odg::NodeId> changed;
  for (const auto& change : batch) {
    for (const std::string& node : mapper_(change)) {
      const odg::NodeId id =
          graph_->EnsureNode(node, odg::NodeKind::kUnderlyingData);
      changed.push_back(id);
    }
  }
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());

  odg::DupOptions dup_options;
  dup_options.obsolescence_threshold = options_.obsolescence_threshold;
  dup_options.enable_simple_fast_path = options_.enable_simple_fast_path;
  const odg::DupResult dup =
      odg::DupEngine::ComputeAffected(*graph_, changed, dup_options);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.dup_runs;
    stats_.fanout.Add(static_cast<double>(dup.affected.size()));
  }

  if (options_.policy == CachePolicy::kDupUpdateInPlace) {
    ApplyUpdateInPlace(dup);
  } else {
    ApplyInvalidate(dup);
  }

  // Batch latency: oldest commit in the batch -> now.
  TimeNs oldest = batch.front().committed_at;
  for (const auto& c : batch) oldest = std::min(oldest, c.committed_at);
  const double latency_ms = ToMillis(clock_->Now() - oldest);
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.update_latency_ms.Add(std::max(0.0, latency_ms));
}

void TriggerMonitor::ApplyUpdateInPlace(const odg::DupResult& dup) {
  // dup.affected is in dependency order: fragments precede the pages that
  // embed them, so a page regenerated later picks up the fresh fragment.
  enum class Outcome { kUpdated, kSkipped, kFailed };
  std::atomic<uint64_t> updated{0}, failures{0};

  auto regenerate = [&](const odg::AffectedObject& obj) -> Outcome {
    const std::string name(graph_->name(obj.id));
    // Only refresh objects that are actually cached somewhere; uncached
    // pages will be generated (with fresh data) on their next request.
    const bool in_fleet =
        options_.fleet != nullptr && options_.fleet->ContainsAnywhere(name);
    if (!cache_->Contains(name) && !in_fleet) return Outcome::kSkipped;
    auto body = renderer_->RenderAndCache(name);
    if (!body.ok()) return Outcome::kFailed;
    // Fig. 6 distribution: push the fresh copy to every serving node.
    if (options_.fleet != nullptr) {
      options_.fleet->PutAll(name, body.value());
    }
    return Outcome::kUpdated;
  };
  auto tally = [&](Outcome outcome) {
    if (outcome == Outcome::kUpdated) {
      updated.fetch_add(1, std::memory_order_relaxed);
    } else if (outcome == Outcome::kFailed) {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
  };

  if (pool_ == nullptr) {
    for (const auto& obj : dup.affected) tally(regenerate(obj));
  } else {
    // Fragments (kBoth) sequentially in dependency order, then leaf
    // objects on the pool. Leaves never feed other objects, so they are
    // independent of one another.
    std::vector<const odg::AffectedObject*> leaves;
    for (const auto& obj : dup.affected) {
      if (graph_->kind(obj.id) == odg::NodeKind::kBoth) {
        tally(regenerate(obj));
      } else {
        leaves.push_back(&obj);
      }
    }
    for (const auto* obj : leaves) {
      pool_->Submit([&, obj] { tally(regenerate(*obj)); });
    }
    pool_->Wait();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  stats_.objects_updated += updated.load();
  stats_.render_failures += failures.load();
}

void TriggerMonitor::ApplyInvalidate(const odg::DupResult& dup) {
  uint64_t invalidated = 0;
  for (const auto& obj : dup.affected) {
    const std::string name(graph_->name(obj.id));
    if (cache_->Invalidate(name)) ++invalidated;
    if (options_.fleet != nullptr) options_.fleet->InvalidateAll(name);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.objects_invalidated += invalidated;
}

void TriggerMonitor::ApplyConservative(
    const std::vector<db::ChangeRecord>& batch) {
  uint64_t invalidated = 0;
  std::vector<std::string> prefixes;
  for (const auto& change : batch) {
    if (options_.conservative_prefixes.empty()) {
      prefixes.push_back("");  // invalidate everything
      break;
    }
    auto it = options_.conservative_prefixes.find(change.table);
    if (it == options_.conservative_prefixes.end()) continue;
    for (const auto& p : it->second) prefixes.push_back(p);
  }
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());
  for (const auto& p : prefixes) {
    invalidated += cache_->InvalidatePrefix(p);
    if (options_.fleet != nullptr) options_.fleet->InvalidatePrefixAll(p);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.objects_invalidated += invalidated;
  stats_.fanout.Add(static_cast<double>(invalidated));
}

TriggerStats TriggerMonitor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace nagano::trigger
