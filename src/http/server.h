// Epoll-based HTTP/1.1 server. One or more reactor threads (event loops),
// each with its own epoll fd and connection table, non-blocking sockets,
// keep-alive and pipelining support. Handlers run on the owning reactor's
// thread — the Olympic serving path is cache-hit dominated, so handler
// latency is microseconds; Options.reactors scales the hot path across
// processors the way the paper's SMP front ends did across CPUs.
//
// Responses drain through a per-connection scatter-gather queue: the header
// block is serialized once into an owned buffer and the body rides as a
// shared reference (writev), so a cache hit never copies the page into the
// connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "common/stats.h"
#include "http/message.h"

namespace nagano::http {

struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t requests_served = 0;
  uint64_t parse_errors = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  // Requests beyond the first on a persistent connection — the HTTP/1.1
  // keep-alive win the paper's front ends relied on at Olympic load.
  uint64_t keepalive_reuses = 0;
  // Connections reaped by the idle sweep (slow-loris defense).
  uint64_t idle_closed = 0;
  // Times a connection's pending output crossed max_pending_write_bytes and
  // its reads were paused until the queue drained (slow-client defense).
  uint64_t write_stalls = 0;
  // Response bodies materialized (copied/assembled) into the write path
  // instead of served by shared reference. Zero on a cache-hit-only run —
  // the proof obligation of the zero-copy hit path.
  uint64_t body_copies = 0;
};

// How accepted connections reach the reactors when reactors > 1.
enum class AcceptMode : uint8_t {
  // Prefer one SO_REUSEPORT listen socket per reactor (the kernel spreads
  // connections); fall back to kRoundRobin if the socket option is
  // unavailable.
  kAuto,
  kReusePort,
  // Reactor 0 owns the single listen socket and hands accepted fds to the
  // reactors in round-robin order over eventfd wakeups. Deterministic
  // balance — what the bench and the multi-reactor tests use.
  kRoundRobin,
};

// Per-connection state a context-aware handler can read and mutate. The
// context lives exactly as long as the connection and is only ever touched
// from the owning reactor's thread, so a handler can keep per-connection
// state in it without locks. The dispatcher tier pins its backend lease
// (and the lease's keep-alive backend socket) in `user`, which is how
// per-connection backend affinity survives across keep-alive requests.
struct ConnectionContext {
  size_t reactor = 0;        // index of the owning reactor
  uint64_t connection_id = 0;  // process-unique, assigned at accept
  // Handler-owned slot, released when the connection closes (on the
  // reactor thread during normal closes, on the stopping thread at Stop()).
  std::shared_ptr<void> user;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  // Context-aware variant: also receives the connection's mutable context
  // (the streaming-proxy hook — see ConnectionContext).
  using ContextHandler =
      std::function<HttpResponse(const HttpRequest&, ConnectionContext&)>;

  struct Options : OptionsBase {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
    int backlog = 128;
    // Event-loop threads. 1 reproduces the uniprocessor front end; more
    // scale the serving hot path across cores. Each reactor is its own
    // fault-injection site ("<instance>/r<k>" when reactors > 1) and
    // carries its own reactor-labelled request counter.
    size_t reactors = 1;
    AcceptMode accept_mode = AcceptMode::kAuto;
    // Close connections with no traffic for this long (wall clock; each
    // reactor wakes every 100 ms to sweep). 0 disables the sweep. This is
    // the slow-loris defense: a client that trickles bytes or never
    // completes a request cannot hold a connection slot forever.
    TimeNs idle_timeout = 0;
    // Slow-client write-stall guard: when a connection's queued output
    // exceeds this many bytes (the client is not draining its socket), stop
    // reading — and thus answering — that connection until the queue
    // flushes. The client feels TCP backpressure; the reactor keeps its
    // memory bounded and its cycles for clients that actually read. While
    // paused the connection earns no activity credit, so a flooder that
    // never drains is eventually reaped by the idle sweep. 0 = unbounded.
    size_t max_pending_write_bytes = 0;
    // Consulted on the socket paths ({"http", <site>, "accept"|"read"|
    // "write"}): a firing rule closes the connection at that point, the
    // way a dying front end would. With reactors == 1 the site is the
    // metrics instance (legacy drills unchanged); with more it is
    // "<instance>/r<k>" so a drill can kill one reactor's sockets while
    // its siblings keep serving. Null = injection off.
    fault::FaultInjector* faults = nullptr;
    // Registry + instance label for the nagano_http_* metrics.
    metrics::Options metrics;

    Status Validate() const;
  };

  explicit HttpServer(Handler handler) : HttpServer(std::move(handler), Options()) {}
  HttpServer(Handler handler, Options options);
  explicit HttpServer(ContextHandler handler)
      : HttpServer(std::move(handler), Options()) {}
  HttpServer(ContextHandler handler, Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and starts the reactor threads.
  Status Start();

  // Closes the listeners and every connection, joins all reactors.
  // Idempotent.
  void Stop();

  // The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  // Process-wide totals (all reactors).
  ServerStats stats() const;
  // Requests served per reactor, index-ordered — the load-balance view the
  // throughput bench reports.
  std::vector<uint64_t> reactor_requests() const;
  size_t reactors() const;
  // The accept mode actually in effect after Start() (kAuto resolves).
  AcceptMode accept_mode() const { return resolved_mode_; }

 private:
  struct Connection;
  struct Reactor;

  Status StartReusePort();
  Status StartRoundRobin();
  void ReactorLoop(Reactor& r);
  void AcceptNew(Reactor& r, int listen_fd);
  void AdoptConnection(Reactor& r, int fd);
  void DrainHandoff(Reactor& r);
  void HandleReadable(Reactor& r, Connection& conn);
  // Answers every fully parsed request queued on the connection, stopping
  // early once pending output exceeds the write-stall cap. Returns true if
  // anything was enqueued.
  bool ProcessParsedRequests(Reactor& r, Connection& conn);
  void EnqueueResponse(Reactor& r, Connection& conn, HttpResponse&& response);
  void HandleWritable(Reactor& r, Connection& conn);
  // Re-arms the connection's epoll mask from want_write + read_paused.
  void UpdateEpollMask(Reactor& r, Connection& conn);
  void CloseConnection(Reactor& r, int fd);
  void SweepIdle(Reactor& r, TimeNs now);
  // The cached 1-second-granularity "Date: ...\r\n" line, refreshed per
  // reactor so header assembly is an append of a span. Uses calendar time
  // (time()), not the monotonic activity clock.
  const std::string& DateLine(Reactor& r);

  Handler handler_;
  ContextHandler context_handler_;  // exactly one of the two handlers is set
  Options options_;
  std::string instance_;  // metrics label (reactor sites derive from it)
  uint16_t port_ = 0;
  AcceptMode resolved_mode_ = AcceptMode::kRoundRobin;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::atomic<bool> running_{false};

  // Server-wide counters are registry cells (lock-free increments from any
  // reactor), so the stats() accessor needs no lock.
  metrics::Counter* connections_;
  metrics::Counter* connections_closed_;
  metrics::Counter* requests_;
  metrics::Counter* parse_errors_;
  metrics::Counter* bytes_in_;
  metrics::Counter* bytes_out_;
  metrics::Counter* keepalive_reuses_;
  metrics::Counter* idle_closed_;
  metrics::Counter* write_stalls_;
  metrics::Counter* body_copies_;
};

}  // namespace nagano::http
