// Epoll-based HTTP/1.1 server. Single event-loop thread, non-blocking
// sockets, keep-alive and pipelining support. Handlers run on the loop
// thread — the Olympic serving path is cache-hit dominated, so handler
// latency is microseconds and a single loop per "server node" mirrors the
// paper's uniprocessor front ends.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "common/stats.h"
#include "http/message.h"

namespace nagano::http {

struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t requests_served = 0;
  uint64_t parse_errors = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  // Requests beyond the first on a persistent connection — the HTTP/1.1
  // keep-alive win the paper's front ends relied on at Olympic load.
  uint64_t keepalive_reuses = 0;
  // Connections reaped by the idle sweep (slow-loris defense).
  uint64_t idle_closed = 0;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options : OptionsBase {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
    int backlog = 128;
    // Close connections with no traffic for this long (wall clock; the
    // epoll loop wakes every 100 ms to sweep). 0 disables the sweep. This
    // is the slow-loris defense: a client that trickles bytes or never
    // completes a request cannot hold a connection slot forever.
    TimeNs idle_timeout = 0;
    // Consulted on the socket paths ({"http", <instance>, "accept"|"read"|
    // "write"}): a firing rule closes the connection at that point, the
    // way a dying front end would. Null = injection off.
    fault::FaultInjector* faults = nullptr;
    // Registry + instance label for the nagano_http_* metrics.
    metrics::Options metrics;

    Status Validate() const;
  };

  explicit HttpServer(Handler handler) : HttpServer(std::move(handler), Options()) {}
  HttpServer(Handler handler, Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and starts the event-loop thread.
  Status Start();

  // Closes the listener and every connection, joins the loop. Idempotent.
  void Stop();

  // The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  ServerStats stats() const;

 private:
  struct Connection;
  void Loop();
  void AcceptNew();
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  void CloseConnection(int fd);
  void SweepIdle(TimeNs now);

  Handler handler_;
  Options options_;
  std::string instance_;  // fault-injection site name (== metrics label)
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_;
  std::atomic<bool> running_{false};

  // Connection table owned by the loop thread; counters are registry cells
  // (lock-free reads) so the stats() accessor needs no lock.
  metrics::Counter* connections_;
  metrics::Counter* connections_closed_;
  metrics::Counter* requests_;
  metrics::Counter* parse_errors_;
  metrics::Counter* bytes_in_;
  metrics::Counter* bytes_out_;
  metrics::Counter* keepalive_reuses_;
  metrics::Counter* idle_closed_;
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace nagano::http
