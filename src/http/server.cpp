#include "http/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace nagano::http {

struct HttpServer::Connection {
  int fd = -1;
  RequestParser parser;
  std::string out;        // bytes pending write
  size_t out_offset = 0;  // already written
  uint64_t served = 0;    // requests answered on this connection
  TimeNs last_activity = 0;  // wall clock; drives the idle sweep
  bool close_after_flush = false;
  bool want_write = false;
};

struct HttpServer::Impl {
  std::unordered_map<int, Connection> connections;
};

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Status HttpServer::Options::Validate() const {
  if (backlog < 1) {
    return InvalidArgumentError("HttpServer::Options.backlog must be >= 1");
  }
  if (idle_timeout < 0) {
    return InvalidArgumentError(
        "HttpServer::Options.idle_timeout must be >= 0");
  }
  if (bind_address.empty()) {
    return InvalidArgumentError(
        "HttpServer::Options.bind_address must be set");
  }
  return Status::Ok();
}

HttpServer::HttpServer(Handler handler, Options options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  ValidateOrDie(options_, "HttpServer::Options");
  impl_ = new Impl;
  const auto scope = metrics::Scope::Resolve(options_.metrics, "http");
  instance_ = scope.labels.empty() ? std::string() : scope.labels[0].second;
  connections_ = scope.GetCounter("nagano_http_connections_accepted_total",
                                  "TCP connections accepted");
  connections_closed_ = scope.GetCounter(
      "nagano_http_connections_closed_total", "TCP connections closed");
  requests_ =
      scope.GetCounter("nagano_http_requests_total", "HTTP requests served");
  parse_errors_ = scope.GetCounter("nagano_http_parse_errors_total",
                                   "malformed requests rejected");
  bytes_in_ =
      scope.GetCounter("nagano_http_bytes_in_total", "request bytes read");
  bytes_out_ =
      scope.GetCounter("nagano_http_bytes_out_total", "response bytes written");
  keepalive_reuses_ =
      scope.GetCounter("nagano_http_keepalive_reuses_total",
                       "requests beyond the first on a persistent connection");
  idle_closed_ = scope.GetCounter(
      "nagano_http_idle_closed_total",
      "connections reaped by the idle sweep (slow-loris defense)");
}

HttpServer::~HttpServer() {
  Stop();
  delete impl_;
}

Status HttpServer::Start() {
  if (running_.exchange(true)) {
    return FailedPreconditionError("server already running");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    running_ = false;
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    running_ = false;
    return InvalidArgumentError("bad bind address " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    running_ = false;
    return UnavailableError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    ::close(listen_fd_);
    running_ = false;
    return InternalError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return InternalError("epoll/eventfd creation failed");
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  loop_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
  if (loop_.joinable()) loop_.join();
  for (auto& [fd, conn] : impl_->connections) {
    ::close(fd);
    connections_closed_->Increment();
  }
  impl_->connections.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void HttpServer::Loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      LOG_ERROR("epoll_wait: %s", std::strerror(errno));
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      auto it = impl_->connections.find(fd);
      if (it == impl_->connections.end()) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(fd);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(it->second);
      // The connection may have been closed by the read path.
      it = impl_->connections.find(fd);
      if (it != impl_->connections.end() && (events[i].events & EPOLLOUT)) {
        HandleWritable(it->second);
      }
    }
    if (options_.idle_timeout > 0) {
      SweepIdle(RealClock::Instance().Now());
    }
  }
}

void HttpServer::SweepIdle(TimeNs now) {
  // Collect first: CloseConnection mutates the table.
  std::vector<int> victims;
  for (const auto& [fd, conn] : impl_->connections) {
    if (now - conn.last_activity >= options_.idle_timeout) {
      victims.push_back(fd);
    }
  }
  for (int fd : victims) {
    idle_closed_->Increment();
    CloseConnection(fd);
  }
}

void HttpServer::AcceptNew() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      LOG_WARN("accept: %s", std::strerror(errno));
      return;
    }
    if (!fault::Check(options_.faults, "http", instance_, "accept").ok()) {
      // A dying front end: the TCP handshake completed but the server
      // process never services the connection.
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_->Increment();
    Connection& conn = impl_->connections[fd];
    conn.fd = fd;
    conn.last_activity = RealClock::Instance().Now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void HttpServer::HandleReadable(Connection& conn) {
  if (!fault::Check(options_.faults, "http", instance_, "read").ok()) {
    CloseConnection(conn.fd);
    return;
  }
  conn.last_activity = RealClock::Instance().Now();
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      bytes_in_->Increment(static_cast<uint64_t>(n));
      if (Status s = conn.parser.Feed(std::string_view(buf, size_t(n))); !s.ok()) {
        parse_errors_->Increment();
        HttpResponse bad;
        bad.status = 400;
        bad.reason = "Bad Request";
        bad.body = s.message();
        conn.out += bad.Serialize();
        conn.close_after_flush = true;
        break;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConnection(conn.fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn.fd);
    return;
  }

  while (auto request = conn.parser.Next()) {
    requests_->Increment();
    if (conn.served++ > 0) keepalive_reuses_->Increment();
    HttpResponse response = handler_(*request);
    if (!request->KeepAlive()) {
      response.headers["Connection"] = "close";
      conn.close_after_flush = true;
    }
    conn.out += response.Serialize();
    if (conn.close_after_flush) break;
  }
  if (!conn.out.empty()) HandleWritable(conn);
}

void HttpServer::HandleWritable(Connection& conn) {
  if (!conn.out.empty() &&
      !fault::Check(options_.faults, "http", instance_, "write").ok()) {
    CloseConnection(conn.fd);
    return;
  }
  conn.last_activity = RealClock::Instance().Now();
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_offset,
                              conn.out.size() - conn.out_offset);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      bytes_out_->Increment(static_cast<uint64_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn.want_write) {
        conn.want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = conn.fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
      }
      return;
    }
    if (errno == EINTR) continue;
    CloseConnection(conn.fd);
    return;
  }
  // Fully flushed.
  conn.out.clear();
  conn.out_offset = 0;
  if (conn.close_after_flush) {
    CloseConnection(conn.fd);
    return;
  }
  if (conn.want_write) {
    conn.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn.fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }
}

void HttpServer::CloseConnection(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  if (impl_->connections.erase(fd) != 0) connections_closed_->Increment();
}

ServerStats HttpServer::stats() const {
  ServerStats s;
  s.connections_accepted = connections_->value();
  s.connections_closed = connections_closed_->value();
  s.requests_served = requests_->value();
  s.parse_errors = parse_errors_->value();
  s.bytes_in = bytes_in_->value();
  s.bytes_out = bytes_out_->value();
  s.keepalive_reuses = keepalive_reuses_->value();
  s.idle_closed = idle_closed_->value();
  return s;
}

}  // namespace nagano::http
