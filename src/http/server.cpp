#include "http/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/logging.h"

namespace nagano::http {
namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// One element of a connection's scatter-gather output queue: either an owned
// byte block (header blocks, error bodies) or a shared reference into a
// cached entity (the zero-copy hit path). Exactly one of the two is active.
struct OutChunk {
  std::string owned;
  std::shared_ptr<const std::string> ref;

  const char* data() const { return ref != nullptr ? ref->data() : owned.data(); }
  size_t size() const { return ref != nullptr ? ref->size() : owned.size(); }
};

int CreateListener(const std::string& bind_address, uint16_t port, int backlog,
                   bool reuse_port, uint16_t* bound_port, Status* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *status = InternalError(std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    ::close(fd);
    *status = UnavailableError(std::string("SO_REUSEPORT: ") +
                               std::strerror(errno));
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *status = InvalidArgumentError("bad bind address " + bind_address);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    *status = UnavailableError(std::string("bind: ") + std::strerror(errno));
    return -1;
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    *status = InternalError(std::string("listen: ") + std::strerror(errno));
    return -1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);
  SetNonBlocking(fd);
  return fd;
}

}  // namespace

struct HttpServer::Connection {
  int fd = -1;
  RequestParser parser;
  // Scatter-gather output queue, drained front-first via writev. The front
  // chunk may be partially written (front_offset bytes already gone).
  std::deque<OutChunk> out;
  size_t front_offset = 0;
  uint64_t served = 0;       // requests answered on this connection
  TimeNs last_activity = 0;  // wall clock; drives the idle sweep
  ConnectionContext context;  // handler-visible per-connection state
  size_t pending = 0;        // queued output bytes not yet written
  bool close_after_flush = false;
  bool want_write = false;
  // Write-stall guard tripped: EPOLLIN is off until the queue drains.
  bool read_paused = false;
};

struct HttpServer::Reactor {
  size_t index = 0;
  std::string site;  // fault-injection site ("<instance>/r<k>" when multi)
  metrics::Counter* requests = nullptr;  // reactor-labelled request counter

  int epoll_fd = -1;
  int wake_fd = -1;
  // Owned listen socket: every reactor in SO_REUSEPORT mode, reactor 0 only
  // in round-robin mode, -1 otherwise.
  int listen_fd = -1;
  std::thread thread;
  std::unordered_map<int, Connection> connections;

  // Round-robin handoff: reactor 0 pushes accepted fds here and kicks
  // wake_fd; the owning reactor adopts them on its next loop turn.
  std::mutex handoff_mutex;
  std::vector<int> handoff;
  size_t next_robin = 0;  // reactor 0's round-robin cursor

  // 1-second-granularity cached "Date: ...\r\n" line, private to this
  // reactor's thread so header assembly is an append of a span.
  time_t date_second = -1;
  std::string date_line;
};

Status HttpServer::Options::Validate() const {
  if (backlog < 1) {
    return InvalidArgumentError("HttpServer::Options.backlog must be >= 1");
  }
  if (reactors < 1 || reactors > 64) {
    return InvalidArgumentError(
        "HttpServer::Options.reactors must be in [1, 64]");
  }
  if (idle_timeout < 0) {
    return InvalidArgumentError(
        "HttpServer::Options.idle_timeout must be >= 0");
  }
  if (bind_address.empty()) {
    return InvalidArgumentError(
        "HttpServer::Options.bind_address must be set");
  }
  return Status::Ok();
}

HttpServer::HttpServer(Handler handler, Options options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  ValidateOrDie(options_, "HttpServer::Options");
  const auto scope = metrics::Scope::Resolve(options_.metrics, "http");
  instance_ = scope.labels.empty() ? std::string() : scope.labels[0].second;
  connections_ = scope.GetCounter("nagano_http_connections_accepted_total",
                                  "TCP connections accepted");
  connections_closed_ = scope.GetCounter(
      "nagano_http_connections_closed_total", "TCP connections closed");
  requests_ =
      scope.GetCounter("nagano_http_requests_total", "HTTP requests served");
  parse_errors_ = scope.GetCounter("nagano_http_parse_errors_total",
                                   "malformed requests rejected");
  bytes_in_ =
      scope.GetCounter("nagano_http_bytes_in_total", "request bytes read");
  bytes_out_ =
      scope.GetCounter("nagano_http_bytes_out_total", "response bytes written");
  keepalive_reuses_ =
      scope.GetCounter("nagano_http_keepalive_reuses_total",
                       "requests beyond the first on a persistent connection");
  idle_closed_ = scope.GetCounter(
      "nagano_http_idle_closed_total",
      "connections reaped by the idle sweep (slow-loris defense)");
  write_stalls_ = scope.GetCounter(
      "nagano_http_write_stalls_total",
      "connections paused for exceeding max_pending_write_bytes "
      "(slow-client defense)");
  body_copies_ = scope.GetCounter(
      "nagano_http_body_copies_total",
      "response bodies materialized into the write path instead of served "
      "by shared reference; zero on a cache-hit-only run");

  reactors_.reserve(options_.reactors);
  for (size_t k = 0; k < options_.reactors; ++k) {
    auto r = std::make_unique<Reactor>();
    r->index = k;
    r->site = options_.reactors > 1 ? instance_ + "/r" + std::to_string(k)
                                    : instance_;
    r->requests = scope.registry->GetCounter(
        "nagano_http_reactor_requests_total",
        scope.With("reactor", std::to_string(k)),
        "HTTP requests served, per reactor");
    reactors_.push_back(std::move(r));
  }
}

HttpServer::HttpServer(ContextHandler handler, Options options)
    : HttpServer(Handler(), std::move(options)) {
  context_handler_ = std::move(handler);
}

HttpServer::~HttpServer() { Stop(); }

size_t HttpServer::reactors() const { return reactors_.size(); }

Status HttpServer::StartReusePort() {
  // The first listener resolves port 0 to a concrete port; its siblings bind
  // the same port, and the kernel spreads incoming connections across them.
  uint16_t port = options_.port;
  for (auto& r : reactors_) {
    Status st;
    uint16_t bound = 0;
    const int fd = CreateListener(options_.bind_address, port, options_.backlog,
                                  /*reuse_port=*/true, &bound, &st);
    if (fd < 0) {
      for (auto& prev : reactors_) {
        if (prev->listen_fd >= 0) ::close(prev->listen_fd);
        prev->listen_fd = -1;
      }
      return st;
    }
    r->listen_fd = fd;
    if (r->index == 0) port = bound;
  }
  port_ = port;
  return Status::Ok();
}

Status HttpServer::StartRoundRobin() {
  Status st;
  uint16_t bound = 0;
  const int fd = CreateListener(options_.bind_address, options_.port,
                                options_.backlog, /*reuse_port=*/false, &bound,
                                &st);
  if (fd < 0) return st;
  reactors_[0]->listen_fd = fd;
  port_ = bound;
  return Status::Ok();
}

Status HttpServer::Start() {
  if (running_.exchange(true)) {
    return FailedPreconditionError("server already running");
  }

  Status st;
  const AcceptMode want = options_.accept_mode;
  resolved_mode_ = AcceptMode::kRoundRobin;
  if (want == AcceptMode::kReusePort ||
      (want == AcceptMode::kAuto && reactors_.size() > 1)) {
    st = StartReusePort();
    if (st.ok()) {
      resolved_mode_ = AcceptMode::kReusePort;
    } else if (want == AcceptMode::kReusePort) {
      running_ = false;
      return st;
    }
  }
  if (resolved_mode_ == AcceptMode::kRoundRobin) {
    st = StartRoundRobin();
    if (!st.ok()) {
      running_ = false;
      return st;
    }
  }

  for (auto& r : reactors_) {
    r->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    r->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (r->epoll_fd < 0 || r->wake_fd < 0) {
      Stop();
      return InternalError("epoll/eventfd creation failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r->wake_fd;
    ::epoll_ctl(r->epoll_fd, EPOLL_CTL_ADD, r->wake_fd, &ev);
    if (r->listen_fd >= 0) {
      ev.data.fd = r->listen_fd;
      ::epoll_ctl(r->epoll_fd, EPOLL_CTL_ADD, r->listen_fd, &ev);
    }
  }
  for (auto& r : reactors_) {
    Reactor* rp = r.get();
    r->thread = std::thread([this, rp] { ReactorLoop(*rp); });
  }
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  for (auto& r : reactors_) {
    if (r->wake_fd >= 0) {
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(r->wake_fd, &one, sizeof(one));
    }
  }
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
  for (auto& r : reactors_) {
    for (auto& [fd, conn] : r->connections) {
      ::close(fd);
      connections_closed_->Increment();
    }
    r->connections.clear();
    {
      std::lock_guard<std::mutex> lock(r->handoff_mutex);
      for (int fd : r->handoff) {
        ::close(fd);
        connections_closed_->Increment();
      }
      r->handoff.clear();
    }
    if (r->listen_fd >= 0) ::close(r->listen_fd);
    if (r->epoll_fd >= 0) ::close(r->epoll_fd);
    if (r->wake_fd >= 0) ::close(r->wake_fd);
    r->listen_fd = r->epoll_fd = r->wake_fd = -1;
    r->next_robin = 0;
    r->date_second = -1;
  }
}

void HttpServer::ReactorLoop(Reactor& r) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(r.epoll_fd, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      LOG_ERROR("epoll_wait (reactor %zu): %s", r.index, std::strerror(errno));
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == r.wake_fd) {
        uint64_t drain;
        [[maybe_unused]] ssize_t rd = ::read(r.wake_fd, &drain, sizeof(drain));
        DrainHandoff(r);
        continue;
      }
      if (fd == r.listen_fd) {
        AcceptNew(r, fd);
        continue;
      }
      auto it = r.connections.find(fd);
      if (it == r.connections.end()) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(r, fd);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(r, it->second);
      // The connection may have been closed by the read path.
      it = r.connections.find(fd);
      if (it != r.connections.end() && (events[i].events & EPOLLOUT)) {
        HandleWritable(r, it->second);
      }
    }
    if (options_.idle_timeout > 0) {
      SweepIdle(r, RealClock::Instance().Now());
    }
  }
}

void HttpServer::SweepIdle(Reactor& r, TimeNs now) {
  // Collect first: CloseConnection mutates the table.
  std::vector<int> victims;
  for (const auto& [fd, conn] : r.connections) {
    if (now - conn.last_activity >= options_.idle_timeout) {
      victims.push_back(fd);
    }
  }
  for (int fd : victims) {
    idle_closed_->Increment();
    CloseConnection(r, fd);
  }
}

void HttpServer::AcceptNew(Reactor& r, int listen_fd) {
  // In round-robin mode reactor 0 owns the only listener and deals accepted
  // fds across the fleet; in reuse-port mode (and single-reactor setups)
  // whatever the kernel delivered here stays here.
  const bool distribute =
      resolved_mode_ == AcceptMode::kRoundRobin && reactors_.size() > 1;
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      LOG_WARN("accept: %s", std::strerror(errno));
      return;
    }
    Reactor& target =
        distribute ? *reactors_[r.next_robin++ % reactors_.size()] : r;
    if (!fault::Check(options_.faults, "http", target.site, "accept").ok()) {
      // A dying front end: the TCP handshake completed but the server
      // process never services the connection.
      ::close(fd);
      continue;
    }
    connections_->Increment();
    if (&target == &r) {
      AdoptConnection(r, fd);
    } else {
      {
        std::lock_guard<std::mutex> lock(target.handoff_mutex);
        target.handoff.push_back(fd);
      }
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(target.wake_fd, &one, sizeof(one));
    }
  }
}

void HttpServer::AdoptConnection(Reactor& r, int fd) {
  static std::atomic<uint64_t> next_connection_id{1};
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Connection& conn = r.connections[fd];
  conn.fd = fd;
  conn.last_activity = RealClock::Instance().Now();
  conn.context.reactor = r.index;
  conn.context.connection_id =
      next_connection_id.fetch_add(1, std::memory_order_relaxed);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
}

void HttpServer::DrainHandoff(Reactor& r) {
  std::vector<int> adopted;
  {
    std::lock_guard<std::mutex> lock(r.handoff_mutex);
    adopted.swap(r.handoff);
  }
  for (int fd : adopted) AdoptConnection(r, fd);
}

const std::string& HttpServer::DateLine(Reactor& r) {
  const time_t sec = ::time(nullptr);
  if (sec != r.date_second) {
    r.date_second = sec;
    tm tm_utc{};
    gmtime_r(&sec, &tm_utc);
    char buf[48];
    const size_t n = strftime(buf, sizeof(buf),
                              "Date: %a, %d %b %Y %H:%M:%S GMT\r\n", &tm_utc);
    r.date_line.assign(buf, n);
  }
  return r.date_line;
}

void HttpServer::EnqueueResponse(Reactor& r, Connection& conn,
                                 HttpResponse&& response) {
  OutChunk head;
  response.SerializeHeaders(head.owned, DateLine(r));
  conn.pending += head.owned.size();
  conn.out.push_back(std::move(head));
  if (!response.body_chunks.empty()) {
    // Scatter-gather zero-copy: a composed page's plan chunks (static text
    // + pinned fragment snapshots) are queued one ref apiece and flow to
    // the socket via writev — the page is never assembled in memory.
    for (auto& chunk : response.body_chunks) {
      if (chunk == nullptr || chunk->empty()) continue;
      OutChunk body;
      body.ref = std::move(chunk);
      conn.pending += body.ref->size();
      conn.out.push_back(std::move(body));
    }
  } else if (response.body_ref != nullptr) {
    // Zero-copy: the queue holds a reference into the cached entity; the
    // bytes flow to the socket via writev without ever being copied into
    // the connection. The ref keeps the entity alive through the flush.
    if (!response.body_ref->empty()) {
      OutChunk body;
      body.ref = std::move(response.body_ref);
      conn.pending += body.ref->size();
      conn.out.push_back(std::move(body));
    }
  } else if (!response.body.empty()) {
    body_copies_->Increment();
    OutChunk body;
    body.owned = std::move(response.body);
    conn.pending += body.owned.size();
    conn.out.push_back(std::move(body));
  }
}

void HttpServer::UpdateEpollMask(Reactor& r, Connection& conn) {
  epoll_event ev{};
  ev.events = (conn.read_paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (conn.want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void HttpServer::HandleReadable(Reactor& r, Connection& conn) {
  if (!fault::Check(options_.faults, "http", r.site, "read").ok()) {
    CloseConnection(r, conn.fd);
    return;
  }
  conn.last_activity = RealClock::Instance().Now();
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      bytes_in_->Increment(static_cast<uint64_t>(n));
      if (Status s = conn.parser.Feed(std::string_view(buf, size_t(n))); !s.ok()) {
        parse_errors_->Increment();
        HttpResponse bad;
        bad.status = 400;
        bad.reason = "Bad Request";
        bad.body = s.message();
        conn.close_after_flush = true;
        EnqueueResponse(r, conn, std::move(bad));
        break;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConnection(r, conn.fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(r, conn.fd);
    return;
  }

  ProcessParsedRequests(r, conn);
  if (!conn.out.empty()) HandleWritable(r, conn);
}

bool HttpServer::ProcessParsedRequests(Reactor& r, Connection& conn) {
  const size_t cap = options_.max_pending_write_bytes;
  bool any = false;
  while (!conn.close_after_flush) {
    // Bounded output queue: once a slow client has a cap's worth of
    // unflushed responses, stop answering its pipeline — the remaining
    // parsed requests wait until the queue drains (HandleWritable resumes
    // us after the flush).
    if (cap > 0 && conn.pending > cap) break;
    auto request = conn.parser.Next();
    if (!request) break;
    requests_->Increment();
    r.requests->Increment();
    if (conn.served++ > 0) keepalive_reuses_->Increment();
    HttpResponse response = context_handler_ != nullptr
                                ? context_handler_(*request, conn.context)
                                : handler_(*request);
    if (!request->KeepAlive()) {
      response.headers["Connection"] = "close";
      conn.close_after_flush = true;
    }
    EnqueueResponse(r, conn, std::move(response));
    any = true;
  }
  return any;
}

void HttpServer::HandleWritable(Reactor& r, Connection& conn) {
  if (!conn.out.empty() &&
      !fault::Check(options_.faults, "http", r.site, "write").ok()) {
    CloseConnection(r, conn.fd);
    return;
  }
  conn.last_activity = RealClock::Instance().Now();
  constexpr int kMaxIov = 16;
  for (;;) {
    while (!conn.out.empty()) {
      iovec iov[kMaxIov];
      int niov = 0;
      size_t idx = 0;
      for (auto it = conn.out.begin(); it != conn.out.end() && niov < kMaxIov;
           ++it, ++idx) {
        const char* base = it->data();
        size_t len = it->size();
        if (idx == 0) {
          base += conn.front_offset;
          len -= conn.front_offset;
        }
        if (len == 0) continue;
        iov[niov].iov_base = const_cast<char*>(base);
        iov[niov].iov_len = len;
        ++niov;
      }
      if (niov == 0) {  // only empty chunks left
        conn.out.clear();
        conn.front_offset = 0;
        conn.pending = 0;
        break;
      }
      const ssize_t n = ::writev(conn.fd, iov, niov);
      if (n > 0) {
        bytes_out_->Increment(static_cast<uint64_t>(n));
        size_t written = static_cast<size_t>(n);
        conn.pending -= std::min(conn.pending, written);
        while (written > 0 && !conn.out.empty()) {
          const size_t remain = conn.out.front().size() - conn.front_offset;
          if (written >= remain) {
            written -= remain;
            conn.out.pop_front();
            conn.front_offset = 0;
          } else {
            conn.front_offset += written;
            written = 0;
          }
        }
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The socket buffer is full — the client is not draining. Arm
        // EPOLLOUT, and when the backlog has crossed the write-stall cap,
        // pause reads too: no new requests are answered for this
        // connection until the queue flushes. A flooder that never drains
        // stops earning activity credit and the idle sweep reaps it.
        const bool was_write = conn.want_write;
        const bool was_paused = conn.read_paused;
        conn.want_write = true;
        const size_t cap = options_.max_pending_write_bytes;
        if (cap > 0 && !conn.read_paused && conn.pending > cap) {
          conn.read_paused = true;
          write_stalls_->Increment();
        }
        if (conn.want_write != was_write || conn.read_paused != was_paused) {
          UpdateEpollMask(r, conn);
        }
        return;
      }
      if (errno == EINTR) continue;
      CloseConnection(r, conn.fd);
      return;
    }
    // Fully flushed.
    conn.front_offset = 0;
    conn.pending = 0;
    if (conn.close_after_flush) {
      CloseConnection(r, conn.fd);
      return;
    }
    const bool was_paused = conn.read_paused;
    if (conn.want_write || conn.read_paused) {
      conn.want_write = false;
      conn.read_paused = false;
      UpdateEpollMask(r, conn);
    }
    // Requests parsed while the stall guard held reads shut are still
    // waiting; answer them now that the queue is empty and go around for
    // another flush.
    if (was_paused && ProcessParsedRequests(r, conn)) continue;
    return;
  }
}

void HttpServer::CloseConnection(Reactor& r, int fd) {
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  if (r.connections.erase(fd) != 0) connections_closed_->Increment();
}

ServerStats HttpServer::stats() const {
  ServerStats s;
  s.connections_accepted = connections_->value();
  s.connections_closed = connections_closed_->value();
  s.requests_served = requests_->value();
  s.parse_errors = parse_errors_->value();
  s.bytes_in = bytes_in_->value();
  s.bytes_out = bytes_out_->value();
  s.keepalive_reuses = keepalive_reuses_->value();
  s.idle_closed = idle_closed_->value();
  s.write_stalls = write_stalls_->value();
  s.body_copies = body_copies_->value();
  return s;
}

std::vector<uint64_t> HttpServer::reactor_requests() const {
  std::vector<uint64_t> out;
  out.reserve(reactors_.size());
  for (const auto& r : reactors_) out.push_back(r->requests->value());
  return out;
}

}  // namespace nagano::http
