// HTTP/1.1 message model and incremental parser (RFC 7230 subset:
// request-line/status-line, headers, Content-Length bodies, keep-alive).
// Enough protocol for a FastCGI-era dynamic-page server; chunked encoding
// and trailers are out of scope.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace nagano::http {

// Case-insensitive header map (header names are case-insensitive per RFC).
struct CaseInsensitiveLess {
  bool operator()(const std::string& a, const std::string& b) const;
};
using HeaderMap = std::map<std::string, std::string, CaseInsensitiveLess>;

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // origin-form, e.g. "/day/7?lang=en"
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  // Path without the query string; "/day/7" for the target above.
  std::string Path() const;
  // Value of a query parameter, or nullopt.
  std::optional<std::string> QueryParam(std::string_view key) const;
  bool KeepAlive() const;

  std::string Serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  // Zero-copy entity: when set, the referenced string is the response body
  // and `body` is ignored. The shared_ptr typically aliases a cached
  // object's body (cache/object_cache.h), so a hit hands the stored bytes
  // straight to the socket without copying — the writer holds the ref until
  // the last byte is flushed, keeping the entity alive even if the cache
  // entry is replaced mid-write.
  std::shared_ptr<const std::string> body_ref;

  // Scatter-gather entity: when non-empty, the concatenation of these
  // strings is the response body and both `body` and `body_ref` are
  // ignored. Each ref aliases a cached object (a composition plan's static
  // chunk or a pinned fragment snapshot), so a composed page is written one
  // chunk at a time without ever assembling it — the writer holds the refs
  // until the last byte is flushed.
  std::vector<std::shared_ptr<const std::string>> body_chunks;

  // Pre-serialized entity-header lines ("Content-Length: N\r\n...", each
  // CRLF-terminated) owned by the cache entry and appended verbatim to the
  // header block. When set, the serializer must NOT emit its own
  // Content-Length — the prefix already carries one.
  std::shared_ptr<const std::string> header_ref;

  // The entity when a single backing string carries it. A scatter-gather
  // response (body_chunks) has no one span — callers must check
  // body_chunks first, as BodySize and Serialize do.
  const std::string& BodyView() const {
    return body_ref != nullptr ? *body_ref : body;
  }
  size_t BodySize() const {
    if (body_chunks.empty()) return BodyView().size();
    size_t total = 0;
    for (const auto& chunk : body_chunks) total += chunk->size();
    return total;
  }

  static HttpResponse Ok(std::string body,
                         std::string content_type = "text/html");
  static HttpResponse NotFound(std::string message = "not found");
  static HttpResponse ServerError(std::string message = "internal error");
  static HttpResponse ServiceUnavailable(std::string message = "unavailable");

  // Sets Content-Length from the entity and serializes into one exactly
  // pre-sized string (status line, headers, blank line, body).
  std::string Serialize() const;

  // Serializes everything up to and including the blank line — the flat
  // header block the scatter-gather write path pairs with the body ref.
  // Appends to `out`. `extra_lines` is a pre-serialized CRLF-terminated
  // block (e.g. the server's cached "Date: ...\r\n" line) spliced in right
  // after the status line.
  void SerializeHeaders(std::string& out,
                        std::string_view extra_lines = {}) const;
};

// Incremental parser: feed bytes as they arrive; a complete message is
// surfaced once per Feed cycle. Handles pipelined messages (leftover bytes
// stay buffered).
template <typename Message>
class MessageParser {
 public:
  // Appends bytes. Returns an error on malformed input (the connection
  // should be dropped).
  Status Feed(std::string_view bytes);

  // Extracts the next complete message, if any.
  std::optional<Message> Next();

  // Bytes currently buffered (for tests / flow control).
  size_t buffered() const { return buffer_.size(); }

  // Maximum header block / body sizes; exceeding either is a parse error
  // (defense against unbounded memory growth from a bad peer).
  static constexpr size_t kMaxHeaderBytes = 64 * 1024;
  static constexpr size_t kMaxBodyBytes = 64 * 1024 * 1024;

 private:
  Status TryParse();

  std::string buffer_;
  std::vector<Message> ready_;
};

using RequestParser = MessageParser<HttpRequest>;
using ResponseParser = MessageParser<HttpResponse>;

}  // namespace nagano::http
