// Blocking HTTP/1.1 client with keep-alive, used by tests, examples and the
// live-server bench driver.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "http/message.h"

namespace nagano::http {

class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Connects (or reuses the persistent connection), sends the request, and
  // reads one response. Reconnects transparently if the server closed the
  // persistent connection.
  Result<HttpResponse> Roundtrip(const HttpRequest& request);

  // Convenience GET against the persistent connection.
  Result<HttpResponse> Get(std::string_view target);

  // One-shot GET on a fresh connection.
  static Result<HttpResponse> FetchOnce(const std::string& host, uint16_t port,
                                        std::string_view target);

  void Close();

 private:
  Status EnsureConnected();
  Result<HttpResponse> RoundtripOnce(const HttpRequest& request);

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
};

}  // namespace nagano::http
