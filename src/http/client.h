// Blocking HTTP/1.1 client with keep-alive connection reuse, used by tests,
// examples, the live-server bench driver — and, per connection, by the
// dispatcher tier's backend pool and advisor prober, which is why reuse is
// observable (connects()/reuses()) and why every socket operation can carry
// a timeout: a proxy must never let a wedged backend hold it hostage.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/options.h"
#include "common/result.h"
#include "http/message.h"

namespace nagano::http {

class HttpClient {
 public:
  struct Options : OptionsBase {
    // Bound on establishing the TCP connection (non-blocking connect +
    // poll). 0 = the kernel's default (minutes) — fine for tests, wrong
    // for a dispatcher probing a dead backend.
    TimeNs connect_timeout = 0;
    // Bound on each individual read/write once connected (SO_RCVTIMEO /
    // SO_SNDTIMEO). A stalled socket surfaces as kUnavailable. 0 = block.
    TimeNs io_timeout = 0;

    Status Validate() const;
  };

  HttpClient(std::string host, uint16_t port)
      : HttpClient(std::move(host), port, Options()) {}
  HttpClient(std::string host, uint16_t port, Options options);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Connects (or reuses the persistent connection), sends the request, and
  // reads one response. Reconnects transparently if the server closed the
  // persistent connection (stale keep-alive socket) — at most one retry, so
  // a genuinely dead server still fails fast.
  Result<HttpResponse> Roundtrip(const HttpRequest& request);

  // Convenience GET against the persistent connection.
  Result<HttpResponse> Get(std::string_view target);

  // One-shot GET on a fresh connection.
  static Result<HttpResponse> FetchOnce(const std::string& host, uint16_t port,
                                        std::string_view target);

  void Close();

  // True while the persistent connection is open — the next Roundtrip will
  // reuse it rather than pay a connect.
  bool connected() const { return fd_ >= 0; }

  // Connection-reuse accounting: TCP connects paid, roundtrips that reused
  // the persistent socket, and reconnects forced by a stale keep-alive
  // socket (the server closed it between requests).
  uint64_t connects() const { return connects_; }
  uint64_t reuses() const { return reuses_; }
  uint64_t stale_reconnects() const { return stale_reconnects_; }
  // Wire bytes of the last completed Roundtrip (request out / response in).
  size_t last_sent_bytes() const { return last_sent_; }
  size_t last_received_bytes() const { return last_received_; }

 private:
  Status EnsureConnected();
  Result<HttpResponse> RoundtripOnce(const HttpRequest& request);

  std::string host_;
  uint16_t port_;
  Options options_;
  int fd_ = -1;
  bool used_ = false;  // a roundtrip completed on the current connection
  uint64_t connects_ = 0;
  uint64_t reuses_ = 0;
  uint64_t stale_reconnects_ = 0;
  size_t last_sent_ = 0;
  size_t last_received_ = 0;
};

}  // namespace nagano::http
