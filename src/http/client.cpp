#include "http/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace nagano::http {

HttpClient::HttpClient(std::string host, uint16_t port)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status HttpClient::EnsureConnected() {
  if (fd_ >= 0) return Status::Ok();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Close();
    return InvalidArgumentError("bad host " + host_);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Close();
    return UnavailableError(std::string("connect: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

Result<HttpResponse> HttpClient::RoundtripOnce(const HttpRequest& request) {
  if (Status s = EnsureConnected(); !s.ok()) return s;

  const std::string wire = request.Serialize();
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd_, wire.data() + sent, wire.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return UnavailableError(std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }

  ResponseParser parser;
  char buf[16 * 1024];
  for (;;) {
    if (auto response = parser.Next()) return *response;
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return UnavailableError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      Close();
      return UnavailableError("connection closed mid-response");
    }
    if (Status s = parser.Feed(std::string_view(buf, size_t(n))); !s.ok()) {
      Close();
      return s;
    }
  }
}

Result<HttpResponse> HttpClient::Roundtrip(const HttpRequest& request) {
  const bool had_connection = fd_ >= 0;
  Result<HttpResponse> r = RoundtripOnce(request);
  if (!r.ok() && had_connection &&
      r.status().code() == ErrorCode::kUnavailable) {
    // The server may have expired the idle keep-alive connection; retry on
    // a fresh one.
    r = RoundtripOnce(request);
  }
  if (r.ok()) {
    auto it = r.value().headers.find("Connection");
    if (it != r.value().headers.end() && it->second == "close") Close();
  }
  return r;
}

Result<HttpResponse> HttpClient::Get(std::string_view target) {
  HttpRequest req;
  req.method = "GET";
  req.target = std::string(target);
  req.headers["Host"] = host_;
  return Roundtrip(req);
}

Result<HttpResponse> HttpClient::FetchOnce(const std::string& host,
                                           uint16_t port,
                                           std::string_view target) {
  HttpClient client(host, port);
  HttpRequest req;
  req.method = "GET";
  req.target = std::string(target);
  req.headers["Host"] = host;
  req.headers["Connection"] = "close";
  return client.Roundtrip(req);
}

}  // namespace nagano::http
