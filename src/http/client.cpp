#include "http/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace nagano::http {
namespace {

timeval ToTimeval(TimeNs ns) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ns / kSecond);
  tv.tv_usec = static_cast<suseconds_t>((ns % kSecond) / 1000);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  return tv;
}

}  // namespace

Status HttpClient::Options::Validate() const {
  if (connect_timeout < 0 || io_timeout < 0) {
    return InvalidArgumentError("HttpClient::Options timeouts must be >= 0");
  }
  return Status::Ok();
}

HttpClient::HttpClient(std::string host, uint16_t port, Options options)
    : host_(std::move(host)), port_(port), options_(options) {
  ValidateOrDie(options_, "HttpClient::Options");
}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  used_ = false;
}

Status HttpClient::EnsureConnected() {
  if (fd_ >= 0) return Status::Ok();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Close();
    return InvalidArgumentError("bad host " + host_);
  }
  if (options_.connect_timeout > 0) {
    // Bounded connect: non-blocking connect, poll for writability, read
    // SO_ERROR for the verdict, then return the socket to blocking mode.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      if (errno != EINPROGRESS) {
        Close();
        return UnavailableError(std::string("connect: ") +
                                std::strerror(errno));
      }
      pollfd pfd{fd_, POLLOUT, 0};
      const int timeout_ms =
          static_cast<int>(std::max<TimeNs>(1, options_.connect_timeout / 1'000'000));
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) {
        Close();
        return UnavailableError("connect: timed out after " +
                                std::to_string(timeout_ms) + " ms");
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        Close();
        return UnavailableError(std::string("connect: ") + std::strerror(err));
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) < 0) {
    Close();
    return UnavailableError(std::string("connect: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.io_timeout > 0) {
    const timeval tv = ToTimeval(options_.io_timeout);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  ++connects_;
  used_ = false;
  return Status::Ok();
}

Result<HttpResponse> HttpClient::RoundtripOnce(const HttpRequest& request) {
  const bool reused = fd_ >= 0 && used_;
  if (Status s = EnsureConnected(); !s.ok()) return s;

  const std::string wire = request.Serialize();
  last_sent_ = 0;
  last_received_ = 0;
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd_, wire.data() + sent, wire.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      Close();
      return UnavailableError(timed_out
                                  ? std::string("write: timed out")
                                  : std::string("write: ") +
                                        std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  last_sent_ = sent;

  ResponseParser parser;
  char buf[16 * 1024];
  for (;;) {
    if (auto response = parser.Next()) {
      if (reused) ++reuses_;
      used_ = true;
      return *response;
    }
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      Close();
      return UnavailableError(timed_out ? std::string("read: timed out")
                                        : std::string("read: ") +
                                              std::strerror(errno));
    }
    if (n == 0) {
      Close();
      return UnavailableError("connection closed mid-response");
    }
    last_received_ += static_cast<size_t>(n);
    if (Status s = parser.Feed(std::string_view(buf, size_t(n))); !s.ok()) {
      Close();
      return s;
    }
  }
}

Result<HttpResponse> HttpClient::Roundtrip(const HttpRequest& request) {
  const bool had_connection = fd_ >= 0;
  Result<HttpResponse> r = RoundtripOnce(request);
  if (!r.ok() && had_connection &&
      r.status().code() == ErrorCode::kUnavailable) {
    // The server may have expired the idle keep-alive connection; retry on
    // a fresh one.
    ++stale_reconnects_;
    r = RoundtripOnce(request);
  }
  if (r.ok()) {
    auto it = r.value().headers.find("Connection");
    if (it != r.value().headers.end() && it->second == "close") Close();
  }
  return r;
}

Result<HttpResponse> HttpClient::Get(std::string_view target) {
  HttpRequest req;
  req.method = "GET";
  req.target = std::string(target);
  req.headers["Host"] = host_;
  return Roundtrip(req);
}

Result<HttpResponse> HttpClient::FetchOnce(const std::string& host,
                                           uint16_t port,
                                           std::string_view target) {
  HttpClient client(host, port);
  HttpRequest req;
  req.method = "GET";
  req.target = std::string(target);
  req.headers["Host"] = host;
  req.headers["Connection"] = "close";
  return client.Roundtrip(req);
}

}  // namespace nagano::http
