#include "http/message.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace nagano::http {
namespace {

char ToLower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLower(a[i]) != ToLower(b[i])) return false;
  }
  return true;
}

// Parses "Name: value" lines from `block` (without the trailing empty line).
Status ParseHeaders(std::string_view block, HeaderMap& out) {
  size_t pos = 0;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    const std::string_view line = block.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return InvalidArgumentError("malformed header line");
    }
    const std::string_view name = line.substr(0, colon);
    if (name.find(' ') != std::string_view::npos) {
      return InvalidArgumentError("whitespace in header name");
    }
    out[std::string(name)] = std::string(TrimOws(line.substr(colon + 1)));
  }
  return Status::Ok();
}

// Exact byte count of the "Name: value\r\n" lines for `headers`, skipping
// Content-Length when told to (the serializer computes its own).
size_t HeaderBlockSize(const HeaderMap& headers, bool skip_content_length) {
  size_t total = 0;
  for (const auto& [name, value] : headers) {
    if (skip_content_length && IEquals(name, "Content-Length")) continue;
    total += name.size() + 2 + value.size() + 2;
  }
  return total;
}

void AppendHeaders(const HeaderMap& headers, bool skip_content_length,
                   std::string& out) {
  for (const auto& [name, value] : headers) {
    if (skip_content_length && IEquals(name, "Content-Length")) continue;
    out.append(name);
    out.append(": ", 2);
    out.append(value);
    out.append("\r\n", 2);
  }
}

}  // namespace

bool CaseInsensitiveLess::operator()(const std::string& a,
                                     const std::string& b) const {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](char x, char y) { return ToLower(x) < ToLower(y); });
}

std::string HttpRequest::Path() const {
  const size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::optional<std::string> HttpRequest::QueryParam(std::string_view key) const {
  const size_t q = target.find('?');
  if (q == std::string::npos) return std::nullopt;
  std::string_view query(target);
  query.remove_prefix(q + 1);
  while (!query.empty()) {
    size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    if (eq == std::string_view::npos && pair == key) return std::string();
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return std::nullopt;
}

bool HttpRequest::KeepAlive() const {
  auto it = headers.find("Connection");
  if (it != headers.end()) {
    if (IEquals(it->second, "close")) return false;
    if (IEquals(it->second, "keep-alive")) return true;
  }
  return version == "HTTP/1.1";  // 1.1 default: persistent
}

std::string HttpRequest::Serialize() const {
  const bool needs_length =
      !body.empty() || method == "POST" || method == "PUT";
  std::string length_line;
  if (needs_length) {
    length_line = "Content-Length: ";
    length_line += std::to_string(body.size());
    length_line += "\r\n";
  }
  std::string out;
  out.reserve(method.size() + 1 + target.size() + 1 + version.size() + 2 +
              HeaderBlockSize(headers, needs_length) + length_line.size() + 2 +
              body.size());
  out.append(method);
  out.push_back(' ');
  out.append(target);
  out.push_back(' ');
  out.append(version);
  out.append("\r\n", 2);
  AppendHeaders(headers, needs_length, out);
  out.append(length_line);
  out.append("\r\n", 2);
  out.append(body);
  return out;
}

HttpResponse HttpResponse::Ok(std::string body, std::string content_type) {
  HttpResponse r;
  r.body = std::move(body);
  r.headers["Content-Type"] = std::move(content_type);
  return r;
}

HttpResponse HttpResponse::NotFound(std::string message) {
  HttpResponse r;
  r.status = 404;
  r.reason = "Not Found";
  r.body = std::move(message);
  r.headers["Content-Type"] = "text/plain";
  return r;
}

HttpResponse HttpResponse::ServerError(std::string message) {
  HttpResponse r;
  r.status = 500;
  r.reason = "Internal Server Error";
  r.body = std::move(message);
  r.headers["Content-Type"] = "text/plain";
  return r;
}

HttpResponse HttpResponse::ServiceUnavailable(std::string message) {
  HttpResponse r;
  r.status = 503;
  r.reason = "Service Unavailable";
  r.body = std::move(message);
  r.headers["Content-Type"] = "text/plain";
  return r;
}

void HttpResponse::SerializeHeaders(std::string& out,
                                    std::string_view extra_lines) const {
  const std::string status_str = std::to_string(status);
  // header_ref (the cache's pre-serialized entity prefix) already carries
  // Content-Length; otherwise compute one from the entity, overriding any
  // stale map entry (e.g. a parsed response being re-serialized).
  std::string length_line;
  if (header_ref == nullptr) {
    length_line = "Content-Length: ";
    length_line += std::to_string(BodySize());
    length_line += "\r\n";
  }
  out.reserve(out.size() + version.size() + 1 + status_str.size() + 1 +
              reason.size() + 2 + extra_lines.size() +
              HeaderBlockSize(headers, true) +
              (header_ref != nullptr ? header_ref->size() : 0) +
              length_line.size() + 2);
  out.append(version);
  out.push_back(' ');
  out.append(status_str);
  out.push_back(' ');
  out.append(reason);
  out.append("\r\n", 2);
  out.append(extra_lines);
  AppendHeaders(headers, /*skip_content_length=*/true, out);
  if (header_ref != nullptr) {
    out.append(*header_ref);
  } else {
    out.append(length_line);
  }
  out.append("\r\n", 2);
}

std::string HttpResponse::Serialize() const {
  std::string out;
  SerializeHeaders(out);  // reserves the header block exactly
  if (!body_chunks.empty()) {
    out.reserve(out.size() + BodySize());
    for (const auto& chunk : body_chunks) out.append(*chunk);
    return out;
  }
  const std::string& payload = BodyView();
  out.reserve(out.size() + payload.size());
  out.append(payload);
  return out;
}

namespace {

// Splits the start line into up to 3 space-separated tokens.
Status SplitStartLine(std::string_view line, std::string_view out[3]) {
  size_t first = line.find(' ');
  if (first == std::string_view::npos) {
    return InvalidArgumentError("malformed start line");
  }
  size_t second = line.find(' ', first + 1);
  out[0] = line.substr(0, first);
  if (second == std::string_view::npos) {
    out[1] = line.substr(first + 1);
    out[2] = {};
  } else {
    out[1] = line.substr(first + 1, second - first - 1);
    out[2] = line.substr(second + 1);
  }
  if (out[0].empty() || out[1].empty()) {
    return InvalidArgumentError("empty start-line token");
  }
  return Status::Ok();
}

Status FillStartLine(HttpRequest& msg, std::string_view line) {
  std::string_view tok[3];
  if (Status s = SplitStartLine(line, tok); !s.ok()) return s;
  if (tok[2].empty()) return InvalidArgumentError("missing HTTP version");
  if (!tok[2].starts_with("HTTP/")) {
    return InvalidArgumentError("bad HTTP version");
  }
  msg.method = std::string(tok[0]);
  msg.target = std::string(tok[1]);
  msg.version = std::string(tok[2]);
  return Status::Ok();
}

Status FillStartLine(HttpResponse& msg, std::string_view line) {
  std::string_view tok[3];
  if (Status s = SplitStartLine(line, tok); !s.ok()) return s;
  if (!tok[0].starts_with("HTTP/")) {
    return InvalidArgumentError("bad HTTP version");
  }
  int status = 0;
  const auto [ptr, ec] =
      std::from_chars(tok[1].data(), tok[1].data() + tok[1].size(), status);
  if (ec != std::errc{} || ptr != tok[1].data() + tok[1].size() ||
      status < 100 || status > 599) {
    return InvalidArgumentError("bad status code");
  }
  msg.version = std::string(tok[0]);
  msg.status = status;
  msg.reason = std::string(tok[2]);
  return Status::Ok();
}

}  // namespace

template <typename Message>
Status MessageParser<Message>::Feed(std::string_view bytes) {
  buffer_.append(bytes);
  return TryParse();
}

template <typename Message>
Status MessageParser<Message>::TryParse() {
  for (;;) {
    const size_t header_end = buffer_.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (buffer_.size() > kMaxHeaderBytes) {
        return ResourceExhaustedError("header block too large");
      }
      return Status::Ok();
    }

    const std::string_view head(buffer_.data(), header_end);
    const size_t line_end = head.find("\r\n");
    const std::string_view start_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);

    Message msg;
    if (Status s = FillStartLine(msg, start_line); !s.ok()) return s;
    const std::string_view header_block =
        line_end == std::string_view::npos ? std::string_view{}
                                           : head.substr(line_end + 2);
    if (Status s = ParseHeaders(header_block, msg.headers); !s.ok()) return s;

    size_t body_len = 0;
    if (auto it = msg.headers.find("Content-Length"); it != msg.headers.end()) {
      const auto [ptr, ec] = std::from_chars(
          it->second.data(), it->second.data() + it->second.size(), body_len);
      if (ec != std::errc{} || ptr != it->second.data() + it->second.size()) {
        return InvalidArgumentError("bad Content-Length");
      }
      if (body_len > kMaxBodyBytes) {
        return ResourceExhaustedError("body too large");
      }
    }

    const size_t total = header_end + 4 + body_len;
    if (buffer_.size() < total) return Status::Ok();  // need more bytes

    msg.body = buffer_.substr(header_end + 4, body_len);
    buffer_.erase(0, total);
    ready_.push_back(std::move(msg));
  }
}

template <typename Message>
std::optional<Message> MessageParser<Message>::Next() {
  if (ready_.empty()) return std::nullopt;
  Message msg = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return msg;
}

template class MessageParser<HttpRequest>;
template class MessageParser<HttpResponse>;

}  // namespace nagano::http
