#include "cluster/net.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nagano::cluster {

LinkClass Modem28k8() { return {"28.8K modem", 28'800, FromMillis(150)}; }
LinkClass Isdn64k() { return {"64K ISDN", 64'000, FromMillis(60)}; }
LinkClass Lan10M() { return {"10M LAN", 10'000'000, FromMillis(2)}; }

TimeNs TransferTime(const LinkClass& link, size_t bytes) {
  const double effective_bits = static_cast<double>(bytes) * 8.0 * 1.08;
  return link.base_latency +
         FromSeconds(effective_bits / link.bits_per_second);
}

RegionCosts::RegionCosts(std::vector<std::string> regions,
                         std::vector<std::string> complexes)
    : regions_(std::move(regions)),
      complexes_(std::move(complexes)),
      costs_(regions_.size() * complexes_.size(), 1000),
      rtts_(regions_.size() * complexes_.size(), FromMillis(500)) {}

void RegionCosts::Set(std::string_view region, std::string_view complex_name,
                      int cost, TimeNs rtt) {
  const auto r = RegionIndex(region);
  const auto c = ComplexIndex(complex_name);
  assert(r.ok() && c.ok());
  costs_[r.value() * complexes_.size() + c.value()] = cost;
  rtts_[r.value() * complexes_.size() + c.value()] = rtt;
}

int RegionCosts::Cost(size_t region, size_t complex_index) const {
  return costs_[region * complexes_.size() + complex_index];
}

TimeNs RegionCosts::Rtt(size_t region, size_t complex_index) const {
  return rtts_[region * complexes_.size() + complex_index];
}

Result<size_t> RegionCosts::RegionIndex(std::string_view region) const {
  for (size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i] == region) return i;
  }
  return NotFoundError("no region " + std::string(region));
}

Result<size_t> RegionCosts::ComplexIndex(std::string_view complex_name) const {
  for (size_t i = 0; i < complexes_.size(); ++i) {
    if (complexes_[i] == complex_name) return i;
  }
  return NotFoundError("no complex " + std::string(complex_name));
}

RegionCosts RegionCosts::OlympicDefault() {
  RegionCosts rc({"United States", "Japan", "Europe", "Asia-Pacific",
                  "Other Americas"},
                 {"Schaumburg", "Columbus", "Bethesda", "Tokyo"});
  // region, complex, OSPF-style cost, RTT
  rc.Set("United States", "Schaumburg", 10, FromMillis(45));
  rc.Set("United States", "Columbus", 10, FromMillis(45));
  rc.Set("United States", "Bethesda", 12, FromMillis(55));
  rc.Set("United States", "Tokyo", 40, FromMillis(180));

  rc.Set("Japan", "Tokyo", 5, FromMillis(20));
  rc.Set("Japan", "Schaumburg", 45, FromMillis(170));
  rc.Set("Japan", "Columbus", 48, FromMillis(175));
  rc.Set("Japan", "Bethesda", 50, FromMillis(185));

  rc.Set("Europe", "Bethesda", 20, FromMillis(95));
  rc.Set("Europe", "Columbus", 24, FromMillis(110));
  rc.Set("Europe", "Schaumburg", 25, FromMillis(115));
  rc.Set("Europe", "Tokyo", 45, FromMillis(260));

  rc.Set("Asia-Pacific", "Tokyo", 15, FromMillis(70));
  rc.Set("Asia-Pacific", "Schaumburg", 42, FromMillis(190));
  rc.Set("Asia-Pacific", "Columbus", 44, FromMillis(195));
  rc.Set("Asia-Pacific", "Bethesda", 46, FromMillis(205));

  rc.Set("Other Americas", "Columbus", 15, FromMillis(80));
  rc.Set("Other Americas", "Schaumburg", 16, FromMillis(85));
  rc.Set("Other Americas", "Bethesda", 18, FromMillis(90));
  rc.Set("Other Americas", "Tokyo", 50, FromMillis(240));
  return rc;
}

const std::vector<IspProfile>& Table1NonUsaIsps() {
  // Transmit rates (Kbps) from Table 1 of the paper; response times in the
  // table follow from payload / rate + last-mile latency.
  static const std::vector<IspProfile> kIsps = {
      {"Japan", "Olympics", 25.78, true},
      {"Japan", "Nifty", 22.05, false},
      {"AUS", "Olympics", 16.82, true},
      {"AUS", "OZEMAIL", 18.69, false},
      {"UK", "Olympics", 25.84, true},
      {"UK", "DEMON", 21.28, false},
  };
  return kIsps;
}

const std::vector<IspProfile>& Table2UsaIsps() {
  static const std::vector<IspProfile> kIsps = {
      {"USA", "Olympics", 23.31, true},
      {"USA", "Compuserve", 21.86, false},
      {"USA", "AOL", 19.05, false},
      {"USA", "MSN", 18.60, false},
      {"USA", "NETCOM", 21.01, false},
      {"USA", "AT&T", 20.84, false},
  };
  return kIsps;
}

double FetchSeconds(const IspProfile& isp, size_t payload_bytes, Rng& rng) {
  const double bits = static_cast<double>(payload_bytes) * 8.0;
  const double transfer = bits / (isp.effective_kbps * 1000.0);
  // Connection setup + DNS + server turn-around; modem-era overheads.
  const double setup = std::clamp(rng.NextGaussian(0.9, 0.25), 0.3, 2.0);
  return transfer + setup;
}

}  // namespace nagano::cluster
