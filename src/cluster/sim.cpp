#include "cluster/sim.h"

namespace nagano::cluster {

Status EventQueue::At(TimeNs t, std::function<void()> fn) {
  if (t < clock_->Now()) {
    return InvalidArgumentError("EventQueue::At: t=" + std::to_string(t) +
                                " is before now=" +
                                std::to_string(clock_->Now()));
  }
  events_.push(Event{t, next_seq_++, std::move(fn)});
  return Status::Ok();
}

Status EventQueue::After(TimeNs delay, std::function<void()> fn) {
  if (delay < 0) {
    return InvalidArgumentError("EventQueue::After: negative delay " +
                                std::to_string(delay));
  }
  return At(clock_->Now() + delay, std::move(fn));
}

void EventQueue::RunUntil(TimeNs deadline) {
  while (!events_.empty() && events_.top().at <= deadline) {
    // Copy out before pop: the handler may schedule new events.
    Event event = events_.top();
    events_.pop();
    clock_->AdvanceTo(event.at);
    event.fn();
  }
  if (clock_->Now() < deadline) clock_->AdvanceTo(deadline);
}

void EventQueue::RunAll() {
  while (!events_.empty()) {
    Event event = events_.top();
    events_.pop();
    clock_->AdvanceTo(event.at);
    event.fn();
  }
}

}  // namespace nagano::cluster
