#include "cluster/sim.h"

#include <cassert>

namespace nagano::cluster {

void EventQueue::At(TimeNs t, std::function<void()> fn) {
  assert(t >= clock_->Now());
  events_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventQueue::After(TimeNs delay, std::function<void()> fn) {
  At(clock_->Now() + delay, std::move(fn));
}

void EventQueue::RunUntil(TimeNs deadline) {
  while (!events_.empty() && events_.top().at <= deadline) {
    // Copy out before pop: the handler may schedule new events.
    Event event = events_.top();
    events_.pop();
    clock_->AdvanceTo(event.at);
    event.fn();
  }
  if (clock_->Now() < deadline) clock_->AdvanceTo(deadline);
}

void EventQueue::RunAll() {
  while (!events_.empty()) {
    Event event = events_.top();
    events_.pop();
    clock_->AdvanceTo(event.at);
    event.fn();
  }
}

}  // namespace nagano::cluster
