// Network path model: client access links, region<->complex routing costs
// and RTTs, and the per-ISP last-mile parameters behind Tables 1-2.
//
// The paper's headline network requirement: a 28.8 Kbps modem client should
// see at most 30 s for a full home-page fetch. Response time for a hit is
//   rtt + server queueing + server cpu + payload / effective_link_rate
// and at modem speeds the last term dominates — which is exactly what §5
// concludes ("virtually all of the delays ... were caused not by the Web
// site but by the client and the client connection").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"

namespace nagano::cluster {

// A client access-link class.
struct LinkClass {
  std::string name;
  double bits_per_second = 28'800;
  TimeNs base_latency = FromMillis(150);  // modem + ISP POP latency
};

LinkClass Modem28k8();
LinkClass Isdn64k();
LinkClass Lan10M();

// Transfer time of `bytes` over the link, including protocol overhead
// (TCP/IP + PPP framing ≈ 8%).
TimeNs TransferTime(const LinkClass& link, size_t bytes);

// Routing distance table. Costs are OSPF-style administrative metrics used
// for path selection; RTTs are the physical latencies used for response
// times. Indexed [region][complex].
class RegionCosts {
 public:
  // Empty table; FabricOptions::Validate rejects it until filled in.
  RegionCosts() = default;
  RegionCosts(std::vector<std::string> regions,
              std::vector<std::string> complexes);

  void Set(std::string_view region, std::string_view complex_name, int cost,
           TimeNs rtt);
  int Cost(size_t region, size_t complex_index) const;
  TimeNs Rtt(size_t region, size_t complex_index) const;

  Result<size_t> RegionIndex(std::string_view region) const;
  Result<size_t> ComplexIndex(std::string_view complex_name) const;
  size_t num_regions() const { return regions_.size(); }
  size_t num_complexes() const { return complexes_.size(); }
  const std::string& region_name(size_t i) const { return regions_[i]; }
  const std::string& complex_name(size_t i) const { return complexes_[i]; }

  // The Olympic topology: regions from workload::Regions(), complexes
  // {Schaumburg, Columbus, Bethesda, Tokyo}, with geographic costs.
  static RegionCosts OlympicDefault();

 private:
  std::vector<std::string> regions_;
  std::vector<std::string> complexes_;
  std::vector<int> costs_;     // region-major
  std::vector<TimeNs> rtts_;
};

// Per-ISP last-mile model for Tables 1-2: the same 28.8 Kbps modem reaches
// different *effective* throughput depending on the ISP's internal network
// (peering congestion, proxy overhead). effective_kbps is the calibration
// target printed in the tables; jitter adds realistic spread.
struct IspProfile {
  std::string country;
  std::string isp;
  double effective_kbps;  // observed transmit rate from the paper's tables
  bool is_olympic_site;   // rows labeled "Olympics"
};

// The twelve rows of Tables 1 and 2.
const std::vector<IspProfile>& Table1NonUsaIsps();
const std::vector<IspProfile>& Table2UsaIsps();

// One home-page fetch through an ISP: payload / effective rate + latency
// jitter. `payload_bytes` is the full home page with images (~50 KB).
double FetchSeconds(const IspProfile& isp, size_t payload_bytes, Rng& rng);

}  // namespace nagano::cluster
