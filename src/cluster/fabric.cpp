#include "cluster/fabric.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace nagano::cluster {

FabricOptions FabricOptions::Olympic() {
  FabricOptions options;
  options.complexes = {
      {"Schaumburg", 4, 8, 4},
      {"Columbus", 3, 8, 4},
      {"Bethesda", 3, 8, 4},
      {"Tokyo", 3, 8, 4},
  };
  return options;
}

Status FabricOptions::Validate() const {
  if (complexes.empty()) {
    return InvalidArgumentError("FabricOptions.complexes must be non-empty");
  }
  for (const ComplexConfig& cc : complexes) {
    if (cc.name.empty()) {
      return InvalidArgumentError("ComplexConfig.name must be non-empty");
    }
    if (cc.frames < 1 || cc.nodes_per_frame < 1 || cc.dispatchers < 1) {
      return InvalidArgumentError("complex " + cc.name +
                                  " needs >= 1 frame, node and dispatcher");
    }
  }
  if (num_addresses < 1) {
    return InvalidArgumentError("FabricOptions.num_addresses must be >= 1");
  }
  if (retry_penalty < 0) {
    return InvalidArgumentError("FabricOptions.retry_penalty must be >= 0");
  }
  if (clock == nullptr) {
    return InvalidArgumentError("FabricOptions.clock is required");
  }
  if (costs.num_complexes() != complexes.size()) {
    return InvalidArgumentError(
        "FabricOptions.costs must cover exactly the configured complexes");
  }
  for (size_t ci = 0; ci < complexes.size(); ++ci) {
    if (costs.complex_name(ci) != complexes[ci].name) {
      return InvalidArgumentError(
          "cost table order must match complex order (mismatch at " +
          complexes[ci].name + ")");
    }
  }
  return Status::Ok();
}

FabricOptions FabricOptions::Olympic(RegionCosts costs, const Clock* clock) {
  FabricOptions options = Olympic();
  options.costs = std::move(costs);
  options.clock = clock;
  return options;
}

ServingFabric::ServingFabric(FabricOptions options)
    : options_((ValidateOrDie(options, "FabricOptions"), std::move(options))),
      clock_(options_.clock),
      faults_(options_.faults) {
  const auto scope = metrics::Scope::Resolve(options_.metrics, "fabric");
  requests_ =
      scope.GetCounter("nagano_fabric_requests_total", "requests routed");
  served_ = scope.GetCounter("nagano_fabric_served_total", "requests served");
  failed_ = scope.GetCounter("nagano_fabric_failed_total",
                             "requests no complex could serve");
  retries_ = scope.GetCounter("nagano_fabric_retries_total",
                              "dead-node / dead-dispatcher re-routes");
  complexes_.reserve(options_.complexes.size());
  for (size_t ci = 0; ci < options_.complexes.size(); ++ci) {
    const ComplexConfig& cc = options_.complexes[ci];
    Complex cx;
    cx.name = cc.name;
    cx.served = scope.registry->GetCounter(
        "nagano_fabric_served_by_complex_total",
        scope.With("complex", cc.name), "requests served per complex");
    cx.frames.resize(static_cast<size_t>(cc.frames));
    for (auto& frame : cx.frames) {
      frame.nodes.resize(static_cast<size_t>(cc.nodes_per_frame));
    }
    cx.dispatchers.resize(static_cast<size_t>(cc.dispatchers));
    cx.advertised.assign(static_cast<size_t>(options_.num_addresses), true);
    // Paper §4.2: with 4 dispatchers and 12 addresses, each box is primary
    // for 3 addresses and secondary for 2 others.
    const int per_primary =
        (options_.num_addresses + cc.dispatchers - 1) / cc.dispatchers;
    for (int d = 0; d < cc.dispatchers; ++d) {
      for (int k = 0; k < per_primary; ++k) {
        const int addr = d * per_primary + k;
        if (addr < options_.num_addresses) {
          cx.dispatchers[static_cast<size_t>(d)].primary_addresses.push_back(addr);
        }
      }
      for (int k = 0; k < 2; ++k) {
        const int addr = (d * per_primary + per_primary + k) % options_.num_addresses;
        cx.dispatchers[static_cast<size_t>(d)].secondary_addresses.push_back(addr);
      }
    }
    complexes_.push_back(std::move(cx));
  }
}

ServingFabric::Complex* ServingFabric::FindComplex(std::string_view name) {
  for (auto& cx : complexes_) {
    if (cx.name == name) return &cx;
  }
  return nullptr;
}

const ServingFabric::Complex* ServingFabric::FindComplexConst(
    std::string_view name) const {
  for (const auto& cx : complexes_) {
    if (cx.name == name) return &cx;
  }
  return nullptr;
}

bool ServingFabric::SelectTarget(size_t region, int address, uint32_t excluded,
                                 size_t* complex_out,
                                 size_t* dispatcher_out) const {
  // Lowest-cost advertisers of this address; ties collect into a candidate
  // set and the address picks among them. Equal-cost complexes (the three
  // US sites seen from inside the US) thus split the twelve addresses
  // between them — the multipath behaviour MSIPR relies on; without it a
  // failed complex would dump its whole load on a single neighbour.
  int best_cost = INT32_MAX;
  struct Candidate {
    size_t complex_index;
    size_t dispatcher;
  };
  Candidate candidates[8];
  size_t num_candidates = 0;

  for (size_t ci = 0; ci < complexes_.size(); ++ci) {
    if (excluded & (1u << ci)) continue;
    const Complex& cx = complexes_[ci];
    if (!cx.up || !cx.advertised[static_cast<size_t>(address)]) continue;
    const int base = options_.costs.Cost(region, ci);
    // Primary dispatcher for this address, then secondaries at a penalty —
    // the "differing costs ... depending on whether the Net Dispatcher was
    // a primary or secondary server of an IP address".
    int cx_cost = INT32_MAX;
    size_t cx_dispatcher = SIZE_MAX;
    for (size_t di = 0; di < cx.dispatchers.size(); ++di) {
      const Dispatcher& d = cx.dispatchers[di];
      if (!d.up) continue;
      int cost = INT32_MAX;
      if (std::find(d.primary_addresses.begin(), d.primary_addresses.end(),
                    address) != d.primary_addresses.end()) {
        cost = base;
      } else if (std::find(d.secondary_addresses.begin(),
                           d.secondary_addresses.end(),
                           address) != d.secondary_addresses.end()) {
        cost = base + options_.secondary_cost_penalty;
      }
      if (cost < cx_cost) {
        cx_cost = cost;
        cx_dispatcher = di;
      }
    }
    if (cx_dispatcher == SIZE_MAX) continue;
    if (cx_cost < best_cost) {
      best_cost = cx_cost;
      num_candidates = 0;
    }
    if (cx_cost == best_cost && num_candidates < std::size(candidates)) {
      candidates[num_candidates++] = Candidate{ci, cx_dispatcher};
    }
  }
  if (num_candidates == 0) return false;
  const Candidate& chosen =
      candidates[static_cast<size_t>(address) % num_candidates];
  *complex_out = chosen.complex_index;
  *dispatcher_out = chosen.dispatcher;
  return true;
}

ServingFabric::Node* ServingFabric::PickNode(Complex& cx, int* retries) {
  // Least busy_until among nodes the advisors believe alive. If the pick
  // turns out dead (failure not yet detected), charge a retry, flip the
  // advisor state — "the advisors immediately pulled it from the
  // distribution list" — and pick again.
  for (;;) {
    TimeNs best_busy = INT64_MAX;
    Node* best = nullptr;
    for (auto& frame : cx.frames) {
      if (!frame.up) continue;
      for (auto& node : frame.nodes) {
        if (!node.advisor_sees_up) continue;
        if (node.busy_until < best_busy) {
          best_busy = node.busy_until;
          best = &node;
        }
      }
    }
    if (best == nullptr) return nullptr;
    if (best->up) return best;
    best->advisor_sees_up = false;
    ++(*retries);
  }
}

void ServingFabric::ApplyWindow(const fault::FaultRule& rule, bool active) {
  // rule.site names the complex, rule.operation the component within it.
  const std::string_view op = rule.operation;
  int a = -1, b = -1;
  if (op == "complex") {
    if (active) (void)FailComplex(rule.site);
    else (void)RecoverComplex(rule.site);
  } else if (std::sscanf(rule.operation.c_str(), "frame:%d", &a) == 1) {
    if (active) (void)FailFrame(rule.site, a);
    else (void)RecoverFrame(rule.site, a);
  } else if (std::sscanf(rule.operation.c_str(), "dispatcher:%d", &a) == 1) {
    if (active) (void)FailDispatcher(rule.site, a);
    else (void)RecoverDispatcher(rule.site, a);
  } else if (std::sscanf(rule.operation.c_str(), "node:%d.%d", &a, &b) == 2) {
    if (active) (void)FailNode(rule.site, a, b);
    else (void)RecoverNode(rule.site, a, b);
  }
  // Unknown operations are ignored: the plan may script components of
  // other fabrics sharing the injector.
}

void ServingFabric::SyncFaults() {
  if (faults_ == nullptr) return;
  for (const fault::FaultRule* rule : faults_->WindowRules("fabric")) {
    const bool active =
        faults_->ActiveWindow("fabric", rule->site, rule->operation);
    bool& prev = window_state_[rule];  // default-constructed false
    if (active == prev) continue;
    prev = active;
    ApplyWindow(*rule, active);
  }
}

RequestOutcome ServingFabric::Route(size_t region, TimeNs cpu_cost,
                                    size_t bytes, const LinkClass& link) {
  SyncFaults();
  RequestOutcome out;
  out.region = region;
  requests_->Increment();

  // Round-robin DNS hands the client one of the twelve addresses.
  const int address =
      static_cast<int>(dns_counter_++ % static_cast<uint64_t>(options_.num_addresses));

  uint32_t excluded = 0;
  int retries = 0;
  const TimeNs now = clock_->Now();

  for (size_t attempt = 0; attempt < complexes_.size(); ++attempt) {
    size_t ci = SIZE_MAX, di = SIZE_MAX;
    if (!SelectTarget(region, address, excluded, &ci, &di)) break;
    Complex& cx = complexes_[ci];

    Node* picked = PickNode(cx, &retries);
    if (picked == nullptr) {
      // No alive node behind this complex — exclude it and re-route, as the
      // routers would after the site stopped advertising.
      excluded |= (1u << ci);
      ++retries;
      continue;
    }
    Node& node = *picked;

    const TimeNs start = std::max(now, node.busy_until);
    out.queue_delay = start - now;
    node.busy_until = start + cpu_cost;
    node.busy_total += cpu_cost;
    ++node.served;
    cx.served->Increment();

    out.served = true;
    out.complex_index = ci;
    out.retries = retries;
    out.response_time = options_.costs.Rtt(region, ci) +
                        retries * options_.retry_penalty + out.queue_delay +
                        cpu_cost + TransferTime(link, bytes);
    served_->Increment();
    retries_->Increment(static_cast<uint64_t>(retries));
    return out;
  }

  out.retries = retries;
  failed_->Increment();
  retries_->Increment(static_cast<uint64_t>(retries));
  return out;
}

// --- failure injection --------------------------------------------------------

Status ServingFabric::FailNode(std::string_view complex_name, int frame,
                               int node) {
  Complex* cx = FindComplex(complex_name);
  if (!cx) return NotFoundError("no complex " + std::string(complex_name));
  if (frame < 0 || static_cast<size_t>(frame) >= cx->frames.size() || node < 0 ||
      static_cast<size_t>(node) >= cx->frames[size_t(frame)].nodes.size()) {
    return InvalidArgumentError("node index out of range");
  }
  cx->frames[size_t(frame)].nodes[size_t(node)].up = false;
  return Status::Ok();
}

Status ServingFabric::RecoverNode(std::string_view complex_name, int frame,
                                  int node) {
  Complex* cx = FindComplex(complex_name);
  if (!cx) return NotFoundError("no complex " + std::string(complex_name));
  if (frame < 0 || static_cast<size_t>(frame) >= cx->frames.size() || node < 0 ||
      static_cast<size_t>(node) >= cx->frames[size_t(frame)].nodes.size()) {
    return InvalidArgumentError("node index out of range");
  }
  Node& n = cx->frames[size_t(frame)].nodes[size_t(node)];
  n.up = true;
  n.advisor_sees_up = true;
  n.busy_until = clock_->Now();
  return Status::Ok();
}

Status ServingFabric::FailFrame(std::string_view complex_name, int frame) {
  Complex* cx = FindComplex(complex_name);
  if (!cx) return NotFoundError("no complex " + std::string(complex_name));
  if (frame < 0 || static_cast<size_t>(frame) >= cx->frames.size()) {
    return InvalidArgumentError("frame index out of range");
  }
  cx->frames[size_t(frame)].up = false;
  return Status::Ok();
}

Status ServingFabric::RecoverFrame(std::string_view complex_name, int frame) {
  Complex* cx = FindComplex(complex_name);
  if (!cx) return NotFoundError("no complex " + std::string(complex_name));
  if (frame < 0 || static_cast<size_t>(frame) >= cx->frames.size()) {
    return InvalidArgumentError("frame index out of range");
  }
  Frame& f = cx->frames[size_t(frame)];
  f.up = true;
  for (auto& node : f.nodes) {
    node.advisor_sees_up = node.up;
    node.busy_until = clock_->Now();
  }
  return Status::Ok();
}

Status ServingFabric::FailDispatcher(std::string_view complex_name,
                                     int dispatcher) {
  Complex* cx = FindComplex(complex_name);
  if (!cx) return NotFoundError("no complex " + std::string(complex_name));
  if (dispatcher < 0 ||
      static_cast<size_t>(dispatcher) >= cx->dispatchers.size()) {
    return InvalidArgumentError("dispatcher index out of range");
  }
  cx->dispatchers[size_t(dispatcher)].up = false;
  return Status::Ok();
}

Status ServingFabric::RecoverDispatcher(std::string_view complex_name,
                                        int dispatcher) {
  Complex* cx = FindComplex(complex_name);
  if (!cx) return NotFoundError("no complex " + std::string(complex_name));
  if (dispatcher < 0 ||
      static_cast<size_t>(dispatcher) >= cx->dispatchers.size()) {
    return InvalidArgumentError("dispatcher index out of range");
  }
  cx->dispatchers[size_t(dispatcher)].up = true;
  return Status::Ok();
}

Status ServingFabric::FailComplex(std::string_view complex_name) {
  Complex* cx = FindComplex(complex_name);
  if (!cx) return NotFoundError("no complex " + std::string(complex_name));
  cx->up = false;
  return Status::Ok();
}

Status ServingFabric::RecoverComplex(std::string_view complex_name) {
  Complex* cx = FindComplex(complex_name);
  if (!cx) return NotFoundError("no complex " + std::string(complex_name));
  cx->up = true;
  for (auto& frame : cx->frames) {
    for (auto& node : frame.nodes) {
      node.advisor_sees_up = node.up;
      node.busy_until = clock_->Now();
    }
  }
  return Status::Ok();
}

Status ServingFabric::SetAdvertised(std::string_view complex_name, int address,
                                    bool advertised) {
  Complex* cx = FindComplex(complex_name);
  if (!cx) return NotFoundError("no complex " + std::string(complex_name));
  if (address < 0 || address >= options_.num_addresses) {
    return InvalidArgumentError("address out of range");
  }
  cx->advertised[static_cast<size_t>(address)] = advertised;
  return Status::Ok();
}

// --- introspection -------------------------------------------------------------

FabricStats ServingFabric::stats() const {
  FabricStats s;
  s.requests = requests_->value();
  s.served = served_->value();
  s.failed = failed_->value();
  s.retries = retries_->value();
  s.served_by_complex.reserve(complexes_.size());
  for (const auto& cx : complexes_) {
    s.served_by_complex.push_back(cx.served->value());
  }
  return s;
}

const std::string& ServingFabric::complex_name(size_t i) const {
  return complexes_[i].name;
}

size_t ServingFabric::AliveNodes(size_t complex_index) const {
  const Complex& cx = complexes_[complex_index];
  if (!cx.up) return 0;
  size_t alive = 0;
  for (const auto& frame : cx.frames) {
    if (!frame.up) continue;
    for (const auto& node : frame.nodes) alive += node.up;
  }
  return alive;
}

double ServingFabric::Utilization(size_t complex_index, TimeNs elapsed) const {
  if (elapsed <= 0) return 0.0;
  const Complex& cx = complexes_[complex_index];
  TimeNs busy = 0;
  size_t nodes = 0;
  for (const auto& frame : cx.frames) {
    for (const auto& node : frame.nodes) {
      busy += node.busy_total;
      ++nodes;
    }
  }
  if (nodes == 0) return 0.0;
  return static_cast<double>(busy) /
         (static_cast<double>(elapsed) * static_cast<double>(nodes));
}

size_t ServingFabric::RouteTarget(size_t region, int address) const {
  size_t ci = SIZE_MAX, di = SIZE_MAX;
  if (!SelectTarget(region, address, 0, &ci, &di)) return SIZE_MAX;
  return ci;
}

}  // namespace nagano::cluster
