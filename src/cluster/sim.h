// Discrete-event simulation core: a time-ordered event queue driving a
// SimClock. Deterministic — ties break by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"
#include "common/result.h"

namespace nagano::cluster {

class EventQueue {
 public:
  explicit EventQueue(SimClock* clock) : clock_(clock) {}

  // Schedules fn at absolute simulated time t. Scheduling in the past is a
  // caller bug and returns kInvalidArgument (the event is dropped); it used
  // to assert, which hid the error in release builds.
  Status At(TimeNs t, std::function<void()> fn);
  // Schedules fn after a delay (>= 0) from the current simulated time.
  Status After(TimeNs delay, std::function<void()> fn);

  // Runs events with time <= deadline, advancing the clock to each event's
  // time; finally advances the clock to the deadline.
  void RunUntil(TimeNs deadline);

  // Runs until the queue is empty.
  void RunAll();

  size_t pending() const { return events_.size(); }
  TimeNs now() const { return clock_->Now(); }
  SimClock* clock() { return clock_; }

 private:
  struct Event {
    TimeNs at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimClock* clock_;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  uint64_t next_seq_ = 0;
};

}  // namespace nagano::cluster
