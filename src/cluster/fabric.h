// The serving fabric (paper §4): four geographically distributed complexes
// of SP2 frames behind Network Dispatchers, addressed through MSIPR —
// twelve single-IP-routed addresses cycled by round-robin DNS and
// advertised by every complex with OSPF costs.
//
// Failover chain implemented exactly as §4.2 describes:
//   web node down      -> advisor pulls it; dispatcher picks another node
//   SP2 frame down     -> its nodes vanish from the pools
//   dispatcher down    -> routers deliver to the address's secondary
//                         dispatcher (higher OSPF cost) in the same complex
//   complex down       -> the lowest-cost advertiser elsewhere wins
// — "elegant degradation": every failure is absorbed and traffic is
// redistributed to what still works.
//
// Traffic shifting: operators stop advertising some of a complex's twelve
// addresses, moving load "in 8 1/3% increments".
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/net.h"
#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"

namespace nagano::cluster {

struct ComplexConfig {
  std::string name;
  int frames = 3;            // SP2 systems at the site
  int nodes_per_frame = 8;   // serving uniprocessors per SP2
  int dispatchers = 4;       // Network Dispatcher boxes
};

struct FabricOptions : OptionsBase {
  std::vector<ComplexConfig> complexes;
  int num_addresses = 12;                    // MSIPR SIPR addresses
  int secondary_cost_penalty = 10;           // OSPF cost bump for secondaries
  TimeNs retry_penalty = FromMillis(400);    // hit on an undetected-dead node

  // Region cost/RTT table; must list the same complexes, in the same order,
  // as `complexes`.
  RegionCosts costs;
  // Simulated time source for queueing. Required (no RealClock default: the
  // fabric is a simulator component).
  const Clock* clock = nullptr;
  // kWindow rules under subsystem "fabric" drive scripted outages: the site
  // is the complex name and the operation names the component —
  //   "complex"              the whole complex
  //   "frame:<f>"            one SP2 frame
  //   "dispatcher:<d>"       one Network Dispatcher
  //   "node:<f>.<n>"         one serving node
  // Route() syncs window edges to Fail*/Recover* calls, so a FaultPlan
  // schedule produces the §4.2 failover chain without hand-written
  // drill code. Null = injection off.
  fault::FaultInjector* faults = nullptr;
  // Registry + instance label for the nagano_fabric_* metrics.
  metrics::Options metrics;

  Status Validate() const;

  // The paper's deployment: 13 SP2s — four in Schaumburg, three elsewhere.
  // Fill in costs/clock before constructing the fabric.
  static FabricOptions Olympic();
  // Same, with the cost table and clock filled in.
  static FabricOptions Olympic(RegionCosts costs, const Clock* clock);
};

// Old name for the options struct, kept for existing call sites.
using FabricConfig = FabricOptions;

struct RequestOutcome {
  bool served = false;
  size_t complex_index = SIZE_MAX;
  size_t region = SIZE_MAX;
  TimeNs response_time = 0;  // rtt + retries + queueing + cpu + transfer
  TimeNs queue_delay = 0;
  int retries = 0;           // dead-node / dead-dispatcher re-routes
};

struct FabricStats {
  uint64_t requests = 0;
  uint64_t served = 0;
  uint64_t failed = 0;
  uint64_t retries = 0;
  std::vector<uint64_t> served_by_complex;

  double Availability() const {
    return requests == 0 ? 1.0
                         : static_cast<double>(served) /
                               static_cast<double>(requests);
  }
};

class ServingFabric {
 public:
  explicit ServingFabric(FabricOptions options);

  // Routes one request originating in `region` (index into the cost
  // table). cpu_cost is the server-side service time (from the paper's
  // cost model — hit vs miss); bytes/link model the client-side transfer.
  RequestOutcome Route(size_t region, TimeNs cpu_cost, size_t bytes,
                       const LinkClass& link);

  // --- failure injection -------------------------------------------------
  Status FailNode(std::string_view complex_name, int frame, int node);
  Status RecoverNode(std::string_view complex_name, int frame, int node);
  Status FailFrame(std::string_view complex_name, int frame);
  Status RecoverFrame(std::string_view complex_name, int frame);
  Status FailDispatcher(std::string_view complex_name, int dispatcher);
  Status RecoverDispatcher(std::string_view complex_name, int dispatcher);
  Status FailComplex(std::string_view complex_name);
  Status RecoverComplex(std::string_view complex_name);

  // --- MSIPR traffic shifting ---------------------------------------------
  // Stops/starts advertising `address` from `complex_name`. Shifting one
  // address moves 1/12 of that complex's new traffic.
  Status SetAdvertised(std::string_view complex_name, int address,
                       bool advertised);

  // --- introspection -------------------------------------------------------
  FabricStats stats() const;
  size_t num_complexes() const { return complexes_.size(); }
  const std::string& complex_name(size_t i) const;
  // Alive serving nodes at a complex (up, frame up, complex up).
  size_t AliveNodes(size_t complex_index) const;
  // Mean node utilization (busy time / elapsed) at a complex.
  double Utilization(size_t complex_index, TimeNs elapsed) const;
  // Which complex currently wins for (region, address); SIZE_MAX if none.
  size_t RouteTarget(size_t region, int address) const;

 private:
  struct Node {
    bool up = true;
    bool advisor_sees_up = true;  // dispatcher's view (advisor state)
    TimeNs busy_until = 0;
    TimeNs busy_total = 0;
    uint64_t served = 0;
  };
  struct Frame {
    bool up = true;
    std::vector<Node> nodes;
  };
  struct Dispatcher {
    bool up = true;
    std::vector<int> primary_addresses;
    std::vector<int> secondary_addresses;
  };
  struct Complex {
    std::string name;
    bool up = true;
    std::vector<Frame> frames;
    std::vector<Dispatcher> dispatchers;
    std::vector<bool> advertised;  // per address
    // Registry cell labelled {complex="<name>"} — per-site traffic split.
    metrics::Counter* served = nullptr;
  };

  Complex* FindComplex(std::string_view name);
  const Complex* FindComplexConst(std::string_view name) const;

  // Applies pending fault-plan window edges (fail on entry, recover on
  // exit) before routing. No-op without an injector.
  void SyncFaults();
  void ApplyWindow(const fault::FaultRule& rule, bool active);

  // Lowest-cost (complex, dispatcher) advertising `address` for `region`,
  // excluding complexes in `excluded` (bitmask). Returns false if none.
  bool SelectTarget(size_t region, int address, uint32_t excluded,
                    size_t* complex_out, size_t* dispatcher_out) const;

  // Least-loaded alive node at a complex, advisor view; nullptr if none.
  // May flip advisor state and charge retries.
  Node* PickNode(Complex& cx, int* retries);

  FabricOptions options_;
  const Clock* clock_;
  fault::FaultInjector* faults_;
  std::vector<Complex> complexes_;
  uint64_t dns_counter_ = 0;  // round-robin DNS
  // Last observed state of each fault-plan window rule (edge detection).
  std::unordered_map<const fault::FaultRule*, bool> window_state_;

  // Registry cells behind the legacy stats() view.
  metrics::Counter* requests_;
  metrics::Counter* served_;
  metrics::Counter* failed_;
  metrics::Counter* retries_;
};

}  // namespace nagano::cluster
