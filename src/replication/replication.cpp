#include "replication/replication.h"

#include <cassert>

namespace nagano::replication {

ReplicationTopology::ReplicationTopology(ReplicationOptions options)
    : clock_(options.clock ? options.clock : &RealClock::Instance()),
      faults_(options.faults) {
  ValidateOrDie(options, "ReplicationOptions");
  const auto scope = metrics::Scope::Resolve(options.metrics, "replication");
  failovers_ = scope.GetCounter("nagano_replication_failovers_total",
                                "automatic re-parents to the backup feed");
  gaps_ = scope.GetCounter("nagano_replication_gaps_total",
                           "dense-seqno violations observed at apply");
  stalls_ = scope.GetCounter("nagano_replication_stalls_total",
                             "pump rounds lost to an unreachable feed");
}

Status ReplicationTopology::AddNode(std::string name, db::Database* database) {
  if (database == nullptr) {
    return InvalidArgumentError("AddNode: null database");
  }
  auto [it, inserted] = nodes_.try_emplace(name);
  if (!inserted) return AlreadyExistsError("AddNode: duplicate " + name);
  it->second.name = name;
  it->second.database = database;
  return Status::Ok();
}

Status ReplicationTopology::ReattachNode(std::string_view name,
                                         db::Database* database) {
  if (database == nullptr) {
    return InvalidArgumentError("ReattachNode: null database");
  }
  Node* n = FindNode(name);
  if (n == nullptr) {
    return NotFoundError("ReattachNode: no node " + std::string(name));
  }
  n->database = database;
  n->cursor_valid = false;  // re-derive from the recovered store's watermarks
  return Status::Ok();
}

ReplicationTopology::Node* ReplicationTopology::FindNode(std::string_view name) {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

const ReplicationTopology::Node* ReplicationTopology::FindNode(
    std::string_view name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

Status ReplicationTopology::SetFeed(std::string_view child,
                                    std::string_view parent, TimeNs lag) {
  Node* c = FindNode(child);
  if (c == nullptr) return NotFoundError("SetFeed: no node " + std::string(child));
  if (FindNode(parent) == nullptr) {
    return NotFoundError("SetFeed: no node " + std::string(parent));
  }
  if (child == parent) return InvalidArgumentError("SetFeed: self-feed");
  // Reject cycles: walk up from the proposed parent.
  for (const Node* p = FindNode(parent); p != nullptr && !p->feed.empty();
       p = FindNode(p->feed)) {
    if (p->feed == child) return InvalidArgumentError("SetFeed: feed cycle");
  }
  c->feed = std::string(parent);
  c->lag = lag;
  c->cursor_valid = false;  // new feed, new cursor
  return Status::Ok();
}

Status ReplicationTopology::SetFailoverFeed(std::string_view child,
                                            std::string_view backup) {
  Node* c = FindNode(child);
  if (c == nullptr) {
    return NotFoundError("SetFailoverFeed: no node " + std::string(child));
  }
  if (FindNode(backup) == nullptr) {
    return NotFoundError("SetFailoverFeed: no node " + std::string(backup));
  }
  c->failover_feed = std::string(backup);
  return Status::Ok();
}

Status ReplicationTopology::MarkDown(std::string_view name) {
  Node* n = FindNode(name);
  if (n == nullptr) return NotFoundError("MarkDown: no node " + std::string(name));
  n->up = false;
  return Status::Ok();
}

Status ReplicationTopology::MarkUp(std::string_view name) {
  Node* n = FindNode(name);
  if (n == nullptr) return NotFoundError("MarkUp: no node " + std::string(name));
  n->up = true;
  return Status::Ok();
}

size_t ReplicationTopology::PumpNode(Node& node) {
  if (!node.up || node.feed.empty()) return 0;

  Node* feed = FindNode(node.feed);
  assert(feed != nullptr);
  // An injected pull error models the feed *link* being down, which is
  // indistinguishable from the feed itself being down from where the child
  // sits — both take the same recovery path. Operation "pull" covers every
  // pull the node makes; "pull-from:<feed>" targets one specific link, so a
  // plan can cut the primary path while the backup stays usable (the paper's
  // Tokyo-feeds-Schaumburg scenario).
  auto pull = fault::Decide(faults_, "replication", node.name, "pull");
  const auto link = fault::Decide(faults_, "replication", node.name,
                                  "pull-from:" + node.feed);
  if (pull.status.ok() && !link.status.ok()) pull.status = link.status;
  pull.delay += link.delay;
  if (!feed->up || !pull.status.ok()) {
    // The Tokyo-can-feed-Schaumburg recovery path: re-parent to the backup
    // feed if one is configured and alive.
    Node* backup = node.failover_feed.empty() ? nullptr
                                              : FindNode(node.failover_feed);
    if (backup == nullptr || !backup->up || backup == &node ||
        node.feed == node.failover_feed) {
      stalls_->Increment();
      return 0;
    }
    node.feed = node.failover_feed;
    feed = backup;
    failovers_->Increment();
    node.cursor_valid = false;  // re-derive against the backup feed
  }

  if (!node.cursor_valid) {
    // Derive the pull position from the child's own applied watermarks.
    // With mirrored shard layouts the child's per-shard seqnos ARE the
    // feed's; across layouts (an unsharded snapshot joining a sharded
    // feed) fall back to locating the child's global watermark in the
    // feed's logs.
    if (node.database->shards() == feed->database->shards()) {
      node.cursor = node.database->AppliedCursor();
    } else {
      node.cursor = feed->database->CursorAtGlobal(node.database->LastSeqno());
    }
    node.cursor_valid = true;
  }

  const TimeNs now = clock_->Now();
  const TimeNs lag = node.lag + pull.delay;  // injected delay = lag spike
  auto batch_or = feed->database->ReadChanges(node.cursor, 256);
  if (!batch_or.ok()) {
    // The feed's change log itself is unreadable this round; retry later.
    if (batch_or.status().code() == ErrorCode::kDataLoss) gaps_->Increment();
    stalls_->Increment();
    return 0;
  }
  db::ChangeBatch& batch = batch_or.value();
  // Shards the feed truncated past our position (after a checkpoint): the
  // cursor holds still there — recovery is catching up out of band (warm
  // restart) — while the healthy shards below keep flowing.
  if (!batch.gap_shards.empty()) gaps_->Increment(batch.gap_shards.size());
  size_t applied = 0;
  // A shard that observes a gap mid-round wedges for the rest of the round
  // (its cursor stays put, so the next pump re-reads from the hole) without
  // blocking its siblings.
  std::vector<bool> wedged(feed->database->shards(), false);
  for (const db::ChangeRecord& record : batch.records) {
    if (record.committed_at + lag > now) break;  // not yet arrived
    if (record.shard < wedged.size() && wedged[record.shard]) continue;
    if (!fault::Check(faults_, "replication", node.name, "gap").ok()) {
      // Drop this record on the floor without advancing its shard's
      // cursor: the shard's next record observes the hole as kDataLoss,
      // and the following pump re-reads the dropped record — the §3
      // resynchronisation path, now scoped to one shard.
      continue;
    }
    Status s = node.database->ApplyReplicated(record);
    if (!s.ok()) {
      if (s.code() == ErrorCode::kDataLoss) gaps_->Increment();
      if (record.shard < wedged.size()) wedged[record.shard] = true;
      continue;
    }
    if (node.cursor.positions.size() <= record.shard) {
      node.cursor.positions.resize(record.shard + 1, 0);
    }
    node.cursor.positions[record.shard] = record.shard_seqno;
    apply_lag_.Add(ToMillis(now - record.committed_at));
    ++node.records_applied;
    ++applied;
  }
  return applied;
}

size_t ReplicationTopology::Pump() {
  size_t applied = 0;
  for (auto& [_, node] : nodes_) applied += PumpNode(node);
  return applied;
}

size_t ReplicationTopology::PumpUntilQuiet(size_t max_rounds) {
  size_t total = 0;
  for (size_t round = 0; round < max_rounds; ++round) {
    const size_t applied = Pump();
    total += applied;
    if (applied == 0) break;
  }
  return total;
}

bool ReplicationTopology::Converged() const {
  for (const auto& [_, node] : nodes_) {
    if (!node.up || node.feed.empty()) continue;
    const Node* feed = FindNode(node.feed);
    if (feed == nullptr || !feed->up) continue;
    if (node.database->LastSeqno() < feed->database->LastSeqno()) return false;
  }
  return true;
}

std::vector<ReplicaStatus> ReplicationTopology::Statuses() const {
  std::vector<ReplicaStatus> out;
  out.reserve(nodes_.size());
  for (const auto& [_, node] : nodes_) {
    out.push_back(ReplicaStatus{node.name, node.feed,
                                node.database->LastSeqno(), node.up,
                                node.records_applied});
  }
  return out;
}

Result<ReplicaStatus> ReplicationTopology::StatusOf(std::string_view name) const {
  const Node* node = FindNode(name);
  if (node == nullptr) {
    return NotFoundError("StatusOf: no node " + std::string(name));
  }
  return ReplicaStatus{node->name, node->feed, node->database->LastSeqno(),
                       node->up, node->records_applied};
}

}  // namespace nagano::replication
