// Database replication tree (paper §3, Figs. 4-5).
//
// "From the master database, data was replicated to the three SP2
// complexes in Tokyo and the four complexes in Schaumburg. From Schaumburg
// the data was again replicated to the three machines in Bethesda and the
// three in Columbus. For reliability and recovery purposes, the Tokyo site
// was also capable of replicating the database to Schaumburg."
//
// Model: each node owns a Database. A child pulls its feed's change log
// through a per-shard cursor (ReadChanges(ChangeCursor)) and applies
// records whose commit time plus the link lag has passed — a deterministic
// store-and-forward model under SimClock. ApplyReplicated() enforces dense
// *per-shard* seqnos, so delivery is provably in-order and exactly-once
// within each shard, and a gap in one shard's stream wedges only that
// shard while the others keep flowing. A node whose feed is down stalls
// until the feed recovers or the operator (or auto-failover) re-parents it
// to a backup feed — the Tokyo -> Schaumburg recovery path.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "common/stats.h"
#include "db/database.h"

namespace nagano::replication {

struct ReplicaStatus {
  std::string name;
  std::string feed;          // empty for the master / detached nodes
  uint64_t applied_seqno = 0;
  bool up = true;
  uint64_t records_applied = 0;
};

struct ReplicationOptions : OptionsBase {
  const Clock* clock = nullptr;  // defaults to RealClock
  // Consulted per child node during Pump() — site is the child's name:
  //   {"replication", <child>, "pull"}  kError = the feed link is down
  //     (auto-failover to the backup feed if configured, else stall);
  //     kDelay = a lag spike added to the link for this round.
  //   {"replication", <child>, "pull-from:<feed>"}  same, but scoped to the
  //     link from one named feed — the failed-over path stays usable.
  //   {"replication", <child>, "gap"}   drop one due record on the floor so
  //     the next apply observes a dense-seqno violation (kDataLoss) and the
  //     recovery path re-reads from the child's true applied seqno.
  fault::FaultInjector* faults = nullptr;
  metrics::Options metrics;

  Status Validate() const { return Status::Ok(); }
};

class ReplicationTopology {
 public:
  explicit ReplicationTopology(ReplicationOptions options);
  // Legacy convenience signature; equivalent to options carrying `clock`.
  explicit ReplicationTopology(const Clock* clock)
      : ReplicationTopology(WithClock(clock)) {}

  // Registers a node. The database must already contain the schema (every
  // replica starts from the same empty schema; the log replays content).
  Status AddNode(std::string name, db::Database* database);

  // Re-binds an existing node to a new Database object — the warm-restart
  // path: a crashed site recovers a fresh Database from its WAL and rejoins
  // under its old name, keeping its feed, failover feed, and lag. The next
  // pull starts after the recovered database's own LastSeqno().
  Status ReattachNode(std::string_view name, db::Database* database);

  // child pulls from parent with the given one-way lag. Re-invoking
  // re-parents the child (its next pull starts after its own last applied
  // seqno, so no records are lost or duplicated).
  Status SetFeed(std::string_view child, std::string_view parent, TimeNs lag);

  // Automatic re-parent target if the child's feed goes down.
  Status SetFailoverFeed(std::string_view child, std::string_view backup);

  Status MarkDown(std::string_view name);
  Status MarkUp(std::string_view name);

  // Pulls every due record across the tree. Call repeatedly as simulated
  // time advances. Returns the number of records applied this round.
  size_t Pump();

  // Pump until no node applies anything (with feeds up and lag elapsed,
  // this reaches convergence).
  size_t PumpUntilQuiet(size_t max_rounds = 1000);

  // True when every up node has applied its feed's full log.
  bool Converged() const;

  std::vector<ReplicaStatus> Statuses() const;
  Result<ReplicaStatus> StatusOf(std::string_view name) const;

  // Replication lag observed at apply time (commit -> apply, simulated).
  const Histogram& apply_lag() const { return apply_lag_; }

  // Fault-path observability (also exported as nagano_replication_*_total).
  uint64_t failovers() const { return failovers_->value(); }  // auto re-parents
  uint64_t gaps() const { return gaps_->value(); }      // kDataLoss observed
  uint64_t stalls() const { return stalls_->value(); }  // rounds lost to pulls

 private:
  struct Node {
    std::string name;
    db::Database* database = nullptr;
    std::string feed;
    std::string failover_feed;
    TimeNs lag = 0;
    bool up = true;
    uint64_t records_applied = 0;
    // Pull position in the feed's per-shard change feed. Invalid after
    // attach / re-parent / warm restart; re-derived lazily from the child
    // database's own applied watermarks on the next pump.
    db::ChangeCursor cursor;
    bool cursor_valid = false;
  };

  static ReplicationOptions WithClock(const Clock* clock) {
    ReplicationOptions options;
    options.clock = clock;
    return options;
  }

  Node* FindNode(std::string_view name);
  const Node* FindNode(std::string_view name) const;
  size_t PumpNode(Node& node);

  const Clock* clock_;
  fault::FaultInjector* faults_;
  std::map<std::string, Node, std::less<>> nodes_;
  Histogram apply_lag_;
  metrics::Counter* failovers_;
  metrics::Counter* gaps_;
  metrics::Counter* stalls_;
};

}  // namespace nagano::replication
