// Compiled text templates for page rendering.
//
// The Olympic pages were "dynamically combined" from results, news, photos
// and hand-edited content (paper §3.1, Fig. 15): a page is a template whose
// holes are filled from database-derived context and whose larger blocks
// are shared *fragments* (medal table, event summary, latest-news box) that
// are themselves cacheable objects in the ODG.
//
// Syntax (mustache subset):
//   {{name}}        value substitution (HTML-escaped)
//   {{{name}}}      raw substitution
//   {{#list}}...{{/list}}   repeat body once per list item
//   {{^list}}...{{/list}}   render body only when list is absent/empty
//   {{>fragment}}   splice another object's rendered body; the engine
//                   reports every fragment used so the caller can record
//                   fragment -> page dependence edges
//   {{!comment}}    dropped
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace nagano::pagegen {

// Hierarchical render context: string scalars and lists of child contexts.
class TemplateContext {
 public:
  TemplateContext& Set(std::string key, std::string value);
  TemplateContext& Set(std::string key, int64_t value);
  TemplateContext& Set(std::string key, double value);
  TemplateContext& SetList(std::string key, std::vector<TemplateContext> items);

  // nullptr when absent or when the slot holds the other shape.
  const std::string* GetString(std::string_view key) const;
  const std::vector<TemplateContext>* GetList(std::string_view key) const;

 private:
  struct Slot {
    std::string key;
    std::string str;
    std::vector<TemplateContext> list;
    bool is_list = false;
  };
  Slot& SlotFor(std::string key);
  std::vector<Slot> slots_;
};

// Resolves {{>fragment}} to the fragment's current body. Returning an error
// renders an HTML comment placeholder and surfaces the error in
// RenderOutput::missing_fragments.
using FragmentResolver =
    std::function<Result<std::string>(std::string_view fragment_name)>;

struct RenderOutput {
  std::string body;
  std::vector<std::string> fragments_used;    // names seen in {{>...}}
  std::vector<std::string> missing_fragments; // resolver failures
};

class CompiledTemplate {
 public:
  // Parses `source`. Fails on unbalanced sections or malformed tags.
  static Result<CompiledTemplate> Compile(std::string_view source);

  RenderOutput Render(const TemplateContext& context,
                      const FragmentResolver& fragments = nullptr) const;

  size_t node_count() const;

 private:
  friend class TemplateParser;

  enum class NodeType : uint8_t {
    kText,
    kVariable,     // escaped
    kRawVariable,
    kSection,      // children repeated per list item
    kInverted,     // children rendered when list empty/absent
    kFragment,
  };
  struct Node {
    NodeType type;
    std::string text;  // literal text, variable name, or fragment name
    std::vector<Node> children;
  };

  void RenderNodes(const std::vector<Node>& nodes,
                   const std::vector<const TemplateContext*>& scope,
                   const FragmentResolver& fragments, RenderOutput& out) const;

  std::vector<Node> roots_;
};

// &, <, >, " escaped.
std::string HtmlEscape(std::string_view s);

}  // namespace nagano::pagegen
