#include "pagegen/olympic.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cstdio>
#include <optional>

namespace nagano::pagegen {
namespace {

using db::ChangeRecord;
using db::ColumnSpec;
using db::ColumnType;
using db::Database;
using db::Row;
using db::Value;

// Column indices, fixed by CreateSchema below.
namespace sports_col {
constexpr size_t kId = 0, kName = 1;
}
namespace events_col {
constexpr size_t kId = 0, kSportId = 1, kName = 2, kDay = 3, kVenue = 4,
                 kStatus = 5;
}
namespace athletes_col {
constexpr size_t kId = 0, kName = 1, kCountry = 2, kSportId = 3;
}
namespace countries_col {
constexpr size_t kCode = 0, kName = 1, kGolds = 2, kSilvers = 3, kBronzes = 4;
}
namespace results_col {
constexpr size_t kKey = 0, kEventId = 1, kRank = 2, kAthleteId = 3, kScore = 4;
}
namespace medals_col {
constexpr size_t kEventId = 0, kGold = 1, kSilver = 2, kBronze = 3;
}
namespace news_col {
constexpr size_t kId = 0, kDay = 1, kTitle = 2, kBody = 3, kSportId = 4;
}

constexpr const char* kSportNames[] = {
    "Alpine Skiing", "Biathlon",     "Cross-Country Skiing", "Curling",
    "Figure Skating", "Ice Hockey",  "Ski Jumping",          "Speed Skating",
    "Luge",           "Bobsleigh",   "Snowboarding",         "Freestyle Skiing",
};
constexpr const char* kVenueNames[] = {
    "White Ring", "M-Wave", "Big Hat", "Aqua Wing", "Hakuba", "Shiga Kogen",
    "Iizuna Kogen", "Karuizawa", "Nozawa Onsen", "Spiral",
};
constexpr const char* kCountryCodes[] = {
    "JPN", "USA", "GER", "NOR", "RUS", "CAN", "AUT", "KOR", "ITA", "FIN",
    "SUI", "FRA", "NED", "CHN", "SWE", "CZE", "GBR", "AUS", "UKR", "BLR",
    "KAZ", "BUL", "DEN", "POL", "ESP", "EST", "LAT", "SVK", "SLO", "HUN",
};

int64_t AsInt(const Value& v) { return std::get<int64_t>(v); }
double AsDouble(const Value& v) { return std::get<double>(v); }
const std::string& AsString(const Value& v) { return std::get<std::string>(v); }

std::optional<int64_t> ParseId(std::string_view page, std::string_view prefix) {
  if (!page.starts_with(prefix)) return std::nullopt;
  page.remove_prefix(prefix.size());
  int64_t id = 0;
  const auto [ptr, ec] = std::from_chars(page.data(), page.data() + page.size(), id);
  if (ec != std::errc{} || ptr != page.data() + page.size()) return std::nullopt;
  return id;
}

std::string ResultKey(int64_t event_id, int64_t rank) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "e%lld:r%lld", static_cast<long long>(event_id),
                static_cast<long long>(rank));
  return buf;
}

// --- language plumbing -------------------------------------------------------

// URL prefix: default language unprefixed, others "/<lang>".
std::string PagePrefix(std::string_view lang) {
  return lang == "en" ? std::string() : "/" + std::string(lang);
}
// Fragment namespace: "frag:" for the default, "frag:<lang>:" otherwise.
std::string FragPrefix(std::string_view lang) {
  return lang == "en" ? std::string("frag:")
                      : "frag:" + std::string(lang) + ":";
}

// Chrome strings per language — enough localization for the variants to be
// real, distinct documents (the 1998 site translated the full chrome).
struct Chrome {
  const char* day;
  const char* medal_standings;
  const char* todays_events;
  const char* latest_news;
  const char* no_events;
  const char* no_results;
  const char* schedule;
  const char* athletes;
  const char* results;
  const char* status;
};

const Chrome& ChromeFor(std::string_view lang) {
  static const Chrome kEnglish = {
      "Day",      "Medal standings", "Today's events", "Latest news",
      "No events scheduled today.", "No results yet.", "Schedule",
      "Athletes", "Results",         "Status"};
  static const Chrome kJapanese = {
      "第",        "メダル順位", "本日の競技", "最新ニュース",
      "本日の競技はありません。", "結果はまだありません。", "競技日程",
      "選手",      "結果",       "状況"};
  static const Chrome kFrench = {
      "Jour",     "Tableau des médailles", "Épreuves du jour",
      "Dernières nouvelles", "Pas d'épreuves aujourd'hui.",
      "Pas encore de résultats.", "Programme", "Athlètes", "Résultats",
      "Statut"};
  if (lang == "ja") return kJapanese;
  if (lang == "fr") return kFrench;
  return kEnglish;
}

void SetChrome(TemplateContext& ctx, std::string_view lang) {
  const Chrome& c = ChromeFor(lang);
  ctx.Set("lang", std::string(lang));
  ctx.Set("L_day", c.day);
  ctx.Set("L_medals", c.medal_standings);
  ctx.Set("L_today", c.todays_events);
  ctx.Set("L_news", c.latest_news);
  ctx.Set("L_noevents", c.no_events);
  ctx.Set("L_noresults", c.no_results);
  ctx.Set("L_schedule", c.schedule);
  ctx.Set("L_athletes", c.athletes);
  ctx.Set("L_results", c.results);
  ctx.Set("L_status", c.status);
}

// Languages for full page families (every page) and news-only extras.
std::vector<std::string> FullLanguages(const OlympicConfig& config) {
  return config.languages.empty() ? std::vector<std::string>{"en"}
                                  : config.languages;
}

// Data-node names. Generators and the change mapper must agree on these;
// they are language-independent — every language variant of a page depends
// on the same underlying data, which is how one scoring change fans out
// across all translations (the paper's 128-page cross-country update).
std::string EventNode(int64_t id) { return "events:" + std::to_string(id); }
std::string EventDayNode(int64_t day) { return "events:day:" + std::to_string(day); }
std::string EventSportNode(int64_t sid) {
  return "events:sport:" + std::to_string(sid);
}
std::string SportNode(int64_t id) { return "sports:" + std::to_string(id); }
std::string ResultsEventNode(int64_t eid) {
  return "results:event:" + std::to_string(eid);
}
std::string ResultsAthleteNode(int64_t aid) {
  return "results:athlete:" + std::to_string(aid);
}
std::string AthleteNode(int64_t id) { return "athletes:" + std::to_string(id); }
std::string AthleteCountryNode(std::string_view cc) {
  return "athletes:country:" + std::string(cc);
}
std::string CountryNode(std::string_view cc) {
  return "countries:" + std::string(cc);
}
std::string MedalsEventNode(int64_t eid) {
  return "medals:event:" + std::to_string(eid);
}
std::string MedalsCountryNode(std::string_view cc) {
  return "medals:country:" + std::string(cc);
}
constexpr const char* kMedalsAllNode = "medals:*";
std::string EventVenueNode(std::string_view venue) {
  return "events:venue:" + std::string(venue);
}
std::string VenueNode(std::string_view venue) {
  return "venues:" + std::string(venue);
}
constexpr const char* kVenuesAllNode = "venues:*";
std::string PhotoSubjectNode(std::string_view kind, std::string_view subject) {
  return "photos:" + std::string(kind) + ":" + std::string(subject);
}

// "White Ring" -> "White_Ring" for URLs; reversible because venue names
// never contain underscores (unlike hyphens — see "M-Wave").
std::string VenueSlug(std::string_view name) {
  std::string slug(name);
  for (char& c : slug) {
    if (c == ' ') c = '_';
  }
  return slug;
}
std::string VenueUnslug(std::string_view slug) {
  std::string name(slug);
  for (char& c : name) {
    if (c == '_') c = ' ';
  }
  return name;
}
std::string NewsNode(int64_t id) { return "news:" + std::to_string(id); }
constexpr const char* kNewsLatestNode = "news:latest";
constexpr const char* kNewsAllNode = "news:*";

// Compile-once holder for the built-in templates; each generator owns one
// as a function-local static.
class TemplateHolder {
 public:
  explicit TemplateHolder(const char* source) {
    auto compiled = CompiledTemplate::Compile(source);
    assert(compiled.ok() && "builtin template must compile");
    tmpl_ = std::make_unique<CompiledTemplate>(std::move(compiled).value());
  }
  const CompiledTemplate& get() const { return *tmpl_; }

 private:
  std::unique_ptr<CompiledTemplate> tmpl_;
};

// --- templates -------------------------------------------------------------

const char* const kWelcomeTmpl = R"(<html lang="{{lang}}"><head><title>Nagano 1998</title></head>
<body><h1>The XVIII Olympic Winter Games</h1>
<ul>{{#days}}<li><a href="{{p}}/day/{{day}}">{{L_day}} {{day}}</a></li>{{/days}}</ul>
<p><a href="{{p}}/medals">{{L_medals}}</a> | <a href="{{p}}/news">{{L_news}}</a></p>
</body></html>
)";

const char* const kDayHomeTmpl = R"(<html lang="{{lang}}"><head><title>{{L_day}} {{day}} - Nagano 1998</title></head>
<body><h1>{{L_day}} {{day}}</h1>
<h2>{{L_medals}}</h2>
{{{medal_table}}}
<h2>{{L_today}}</h2>
{{#events}}<div class="event">{{{summary}}}</div>
{{/events}}
{{^events}}<p>{{L_noevents}}</p>{{/events}}
<h2>{{L_news}}</h2>
{{{latest_news}}}
</body></html>
)";

const char* const kEventFragmentTmpl =
    R"(<div class="event-summary"><h3><a href="{{p}}/event/{{event_id}}">{{event_name}}</a></h3>
<p>{{L_status}}: {{status}} @ {{venue}}</p>
<ol>{{#top}}<li>{{athlete}} ({{country}}) - {{score}}</li>{{/top}}</ol>
{{^top}}<p>{{L_noresults}}</p>{{/top}}
{{{photos}}}</div>
)";

const char* const kEventPageTmpl = R"(<html lang="{{lang}}"><head><title>{{event_name}}</title></head>
<body><h1>{{event_name}}</h1>
<p>{{sport_name}} | {{L_day}} {{day}} | {{venue}} | {{L_status}}: {{status}}</p>
<table><tr><th>#</th><th>{{L_athletes}}</th><th></th><th>{{L_results}}</th></tr>
{{#results}}<tr><td>{{rank}}</td><td><a href="{{p}}/athlete/{{athlete_id}}">{{athlete}}</a></td><td><a href="{{p}}/country/{{country}}">{{country}}</a></td><td>{{score}}</td></tr>
{{/results}}</table>
{{^results}}<p>{{L_noresults}}</p>{{/results}}
{{#has_medals}}<p>Gold: {{gold}} Silver: {{silver}} Bronze: {{bronze}}</p>{{/has_medals}}
{{{photos}}}
</body></html>
)";

const char* const kSportPageTmpl = R"(<html lang="{{lang}}"><head><title>{{sport_name}}</title></head>
<body><h1>{{sport_name}}</h1>
{{#events}}<div>{{{summary}}}</div>
{{/events}}
</body></html>
)";

const char* const kMedalsFragmentTmpl =
    R"(<table class="medals"><tr><th></th><th>G</th><th>S</th><th>B</th><th>=</th></tr>
{{#rows}}<tr><td><a href="{{p}}/country/{{code}}">{{name}}</a></td><td>{{g}}</td><td>{{s}}</td><td>{{b}}</td><td>{{total}}</td></tr>
{{/rows}}</table>
)";

const char* const kMedalsPageTmpl = R"(<html lang="{{lang}}"><head><title>{{L_medals}}</title></head>
<body><h1>{{L_medals}}</h1>
{{{medal_table}}}
</body></html>
)";

const char* const kNewsFragmentTmpl =
    R"(<ul class="news">{{#articles}}<li><a href="{{p}}/news/{{id}}">{{title}}</a> ({{L_day}} {{day}})</li>{{/articles}}</ul>
)";

const char* const kNewsIndexTmpl = R"(<html lang="{{lang}}"><head><title>{{L_news}}</title></head>
<body><h1>{{L_news}}</h1>
<ul>{{#articles}}<li><a href="{{p}}/news/{{id}}">{{title}}</a> ({{L_day}} {{day}})</li>
{{/articles}}</ul>
</body></html>
)";

const char* const kNewsPageTmpl = R"(<html lang="{{lang}}"><head><title>{{title}}</title></head>
<body><h1>{{title}}</h1><p class="meta">{{L_day}} {{day}}</p>
<div>{{body}}</div>
{{{latest_news}}}
</body></html>
)";

const char* const kAthletePageTmpl = R"(<html lang="{{lang}}"><head><title>{{name}}</title></head>
<body><h1>{{name}}</h1>
<p><a href="{{p}}/country/{{country}}">{{country}}</a> | {{sport_name}}</p>
<h2>{{L_results}}</h2>
<ul>{{#results}}<li><a href="{{p}}/event/{{event_id}}">{{event_name}}</a>: #{{rank}}, {{score}}</li>
{{/results}}</ul>
{{^results}}<p>{{L_noresults}}</p>{{/results}}
{{{photos}}}
</body></html>
)";

const char* const kCountryPageTmpl = R"(<html lang="{{lang}}"><head><title>{{name}}</title></head>
<body><h1>{{name}} ({{code}})</h1>
<p>G:{{g}} S:{{s}} B:{{b}}</p>
<h2>{{L_athletes}}</h2>
<ul>{{#athletes}}<li><a href="{{p}}/athlete/{{id}}">{{athlete}}</a></li>
{{/athletes}}</ul>
{{{photos}}}
<h2>{{L_news}}</h2>
{{{latest_news}}}
</body></html>
)";

const char* const kSchedulePageTmpl = R"(<html lang="{{lang}}"><head><title>{{L_schedule}} {{L_day}} {{day}}</title></head>
<body><h1>{{L_schedule}} - {{L_day}} {{day}}</h1>
<ul>{{#events}}<li><a href="{{p}}/event/{{id}}">{{event_name}}</a> @ {{venue}} ({{status}})</li>
{{/events}}</ul>
</body></html>
)";

const char* const kVenuePageTmpl = R"(<html lang="{{lang}}"><head><title>{{venue}}</title></head>
<body><h1>{{venue}}</h1>
<p>{{locality}} — capacity {{capacity}}</p>
<h2>{{L_schedule}}</h2>
<ul>{{#events}}<li>{{L_day}} {{day}}: <a href="{{p}}/event/{{id}}">{{event_name}}</a> ({{status}})</li>
{{/events}}</ul>
{{^events}}<p>{{L_noevents}}</p>{{/events}}
{{{photos}}}
</body></html>
)";

const char* const kNaganoPageTmpl = R"(<html lang="{{lang}}"><head><title>Nagano</title></head>
<body><h1>Nagano, Japan</h1>
<p>Host of the XVIII Olympic Winter Games, 7-22 February 1998.</p>
<h2>{{L_schedule}}</h2>
<ul>{{#venues}}<li><a href="{{p}}/venue/{{slug}}">{{venue}}</a> — {{locality}}</li>
{{/venues}}</ul>
</body></html>
)";

const char* const kFunPageTmpl = R"(<html lang="{{lang}}"><head><title>Fun</title></head>
<body><h1>Fun &amp; Games</h1>
<p>Sports activities for children: match the mascot, guess the medal
count, and colouring pages for all {{sports}} sports.</p>
</body></html>
)";

// --- content helpers --------------------------------------------------------

struct EventInfo {
  int64_t id, sport_id, day;
  std::string name, venue, status;
};

std::optional<EventInfo> LoadEvent(const Database& db, int64_t event_id) {
  auto row = db.Get("events", Value(event_id));
  if (!row.ok()) return std::nullopt;
  const Row& r = row.value();
  return EventInfo{AsInt(r[events_col::kId]),     AsInt(r[events_col::kSportId]),
                   AsInt(r[events_col::kDay]),    AsString(r[events_col::kName]),
                   AsString(r[events_col::kVenue]),
                   AsString(r[events_col::kStatus])};
}

std::vector<Row> ResultsForEvent(const Database& db, int64_t event_id) {
  auto rows = db.Lookup("results", "event_id", Value(event_id));
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return AsInt(a[results_col::kRank]) < AsInt(b[results_col::kRank]);
  });
  return rows;
}

std::string AthleteName(const Database& db, int64_t athlete_id) {
  auto row = db.Get("athletes", Value(athlete_id));
  return row.ok() ? AsString(row.value()[athletes_col::kName]) : "(unknown)";
}

std::string AthleteCountry(const Database& db, int64_t athlete_id) {
  auto row = db.Get("athletes", Value(athlete_id));
  return row.ok() ? AsString(row.value()[athletes_col::kCountry]) : "???";
}

std::string SportName(const Database& db, int64_t sport_id) {
  auto row = db.Get("sports", Value(sport_id));
  return row.ok() ? AsString(row.value()[sports_col::kName]) : "(unknown sport)";
}

std::string FormatScore(double score) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", score);
  return buf;
}

// Photos for (kind, subject), as an HTML strip; records the dependence on
// the subject's photo node whether or not photos exist yet, so the first
// classified photo propagates into already-cached pages.
std::string PhotoStrip(const Database& db, DependencyRecorder& deps,
                       std::string_view kind, std::string_view subject) {
  deps.DependsOnData(PhotoSubjectNode(kind, subject));
  std::string strip;
  for (const Row& r : db.Lookup("photos", "subject_id", Value(std::string(subject)))) {
    if (AsString(r[2]) != kind) continue;
    strip += "<figure><img src=\"/img/" + std::to_string(AsInt(r[0])) +
             ".jpg\"/><figcaption>" + HtmlEscape(AsString(r[1])) +
             "</figcaption></figure>\n";
  }
  return strip;
}

}  // namespace

// --- schema & population -----------------------------------------------------

Status OlympicSite::CreateSchema(Database* db) {
  assert(db != nullptr);
  Status s;
  s = db->CreateTable("sports", {{"sport_id", ColumnType::kInt},
                                 {"name", ColumnType::kString}});
  if (!s.ok()) return s;
  s = db->CreateTable("events",
                      {{"event_id", ColumnType::kInt},
                       {"sport_id", ColumnType::kInt},
                       {"name", ColumnType::kString},
                       {"day", ColumnType::kInt},
                       {"venue", ColumnType::kString},
                       {"status", ColumnType::kString}});
  if (!s.ok()) return s;
  s = db->CreateTable("athletes", {{"athlete_id", ColumnType::kInt},
                                   {"name", ColumnType::kString},
                                   {"country", ColumnType::kString},
                                   {"sport_id", ColumnType::kInt}});
  if (!s.ok()) return s;
  s = db->CreateTable("countries", {{"code", ColumnType::kString},
                                    {"name", ColumnType::kString},
                                    {"golds", ColumnType::kInt},
                                    {"silvers", ColumnType::kInt},
                                    {"bronzes", ColumnType::kInt}});
  if (!s.ok()) return s;
  s = db->CreateTable("results", {{"result_key", ColumnType::kString},
                                  {"event_id", ColumnType::kInt},
                                  {"rank", ColumnType::kInt},
                                  {"athlete_id", ColumnType::kInt},
                                  {"score", ColumnType::kDouble}});
  if (!s.ok()) return s;
  s = db->CreateTable("medals", {{"event_id", ColumnType::kInt},
                                 {"gold", ColumnType::kInt},
                                 {"silver", ColumnType::kInt},
                                 {"bronze", ColumnType::kInt}});
  if (!s.ok()) return s;
  s = db->CreateTable("news", {{"article_id", ColumnType::kInt},
                               {"day", ColumnType::kInt},
                               {"title", ColumnType::kString},
                               {"body", ColumnType::kString},
                               {"sport_id", ColumnType::kInt}});
  if (!s.ok()) return s;
  s = db->CreateTable("venues", {{"name", ColumnType::kString},
                                 {"locality", ColumnType::kString},
                                 {"capacity", ColumnType::kInt}});
  if (!s.ok()) return s;
  s = db->CreateTable("photos", {{"photo_id", ColumnType::kInt},
                                 {"caption", ColumnType::kString},
                                 {"subject_kind", ColumnType::kString},
                                 {"subject_id", ColumnType::kString},
                                 {"day", ColumnType::kInt}});
  if (!s.ok()) return s;

  // Secondary indexes for the page generators' hot lookups.
  const std::pair<const char*, const char*> kIndexes[] = {
      {"events", "day"},        {"events", "sport_id"}, {"events", "venue"},
      {"results", "event_id"},  {"results", "athlete_id"},
      {"athletes", "sport_id"}, {"athletes", "country"},
      {"photos", "subject_id"},
  };
  for (const auto& [table, column] : kIndexes) {
    s = db->CreateIndex(table, column);
    if (!s.ok()) return s;
  }
  return s;
}

Status OlympicSite::Build(const OlympicConfig& config, Database* db) {
  Status s = CreateSchema(db);
  if (!s.ok()) return s;

  Rng rng(config.seed);

  const int num_sports =
      std::min<int>(config.num_sports, std::size(kSportNames));
  for (int i = 0; i < num_sports; ++i) {
    s = db->Upsert("sports", Row{Value(int64_t(i + 1)), Value(std::string(kSportNames[i]))});
    if (!s.ok()) return s;
  }

  for (size_t v = 0; v < std::size(kVenueNames); ++v) {
    s = db->Upsert("venues",
                   Row{Value(std::string(kVenueNames[v])),
                       Value(std::string(v < 4 ? "Nagano City" : "Nagano Prefecture")),
                       Value(int64_t(5000 + 1500 * (v % 5)))});
    if (!s.ok()) return s;
  }

  const int num_countries =
      std::min<int>(config.num_countries, std::size(kCountryCodes));
  for (int i = 0; i < num_countries; ++i) {
    const std::string code = kCountryCodes[i];
    s = db->Upsert("countries",
                   Row{Value(code), Value("Team " + code), Value(int64_t(0)),
                       Value(int64_t(0)), Value(int64_t(0))});
    if (!s.ok()) return s;
  }

  // Events: spread each sport's events evenly across the days.
  int64_t event_id = 0;
  for (int sp = 1; sp <= num_sports; ++sp) {
    for (int k = 0; k < config.events_per_sport; ++k) {
      ++event_id;
      const int day = 1 + (k * config.days) / config.events_per_sport;
      const char* gender = (k % 2 == 0) ? "Men's" : "Women's";
      const std::string name = std::string(gender) + " " + kSportNames[sp - 1] +
                               " #" + std::to_string(k / 2 + 1);
      const std::string venue =
          kVenueNames[rng.NextBelow(std::size(kVenueNames))];
      s = db->Upsert("events",
                     Row{Value(event_id), Value(int64_t(sp)), Value(name),
                         Value(int64_t(day)), Value(venue),
                         Value(std::string("scheduled"))});
      if (!s.ok()) return s;
    }
  }

  // Athletes: a pool per sport, countries assigned round-robin with noise.
  int64_t athlete_id = 0;
  const int per_sport = config.athletes_per_event * 2;
  for (int sp = 1; sp <= num_sports; ++sp) {
    for (int k = 0; k < per_sport; ++k) {
      ++athlete_id;
      const std::string cc =
          kCountryCodes[(k + rng.NextBelow(3)) % num_countries];
      const std::string name =
          cc + " " + kSportNames[sp - 1][0] + std::to_string(athlete_id);
      s = db->Upsert("athletes", Row{Value(athlete_id), Value(name), Value(cc),
                                     Value(int64_t(sp))});
      if (!s.ok()) return s;
    }
  }

  for (int i = 1; i <= config.initial_news_articles; ++i) {
    const int day = 1 + (i - 1) % config.days;
    s = PublishNews(db, i, day, "Preview article " + std::to_string(i),
                    "Ahead of the games: story number " + std::to_string(i) + ".",
                    1 + (i % num_sports));
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

// --- page names ---------------------------------------------------------------

std::string OlympicSite::DayHomePage(int day, std::string_view lang) {
  return PagePrefix(lang) + "/day/" + std::to_string(day);
}
std::string OlympicSite::SportPage(int64_t sport_id, std::string_view lang) {
  return PagePrefix(lang) + "/sport/" + std::to_string(sport_id);
}
std::string OlympicSite::EventPage(int64_t event_id, std::string_view lang) {
  return PagePrefix(lang) + "/event/" + std::to_string(event_id);
}
std::string OlympicSite::AthletePage(int64_t athlete_id, std::string_view lang) {
  return PagePrefix(lang) + "/athlete/" + std::to_string(athlete_id);
}
std::string OlympicSite::CountryPage(std::string_view code,
                                     std::string_view lang) {
  return PagePrefix(lang) + "/country/" + std::string(code);
}
std::string OlympicSite::NewsPage(int64_t article_id, std::string_view lang) {
  return PagePrefix(lang) + "/news/" + std::to_string(article_id);
}
std::string OlympicSite::EventFragment(int64_t event_id, std::string_view lang) {
  return FragPrefix(lang) + "event:" + std::to_string(event_id);
}
std::string OlympicSite::MedalsPage(std::string_view lang) {
  return PagePrefix(lang) + "/medals";
}
std::string OlympicSite::NewsIndexPage(std::string_view lang) {
  return PagePrefix(lang) + "/news";
}
std::string OlympicSite::VenuePage(std::string_view venue_name,
                                   std::string_view lang) {
  return PagePrefix(lang) + "/venue/" + VenueSlug(venue_name);
}
std::string OlympicSite::NaganoPage(std::string_view lang) {
  return PagePrefix(lang) + "/nagano";
}
std::string OlympicSite::FunPage(std::string_view lang) {
  return PagePrefix(lang) + "/fun";
}
std::string OlympicSite::MedalsFragment(std::string_view lang) {
  return FragPrefix(lang) + "medals";
}
std::string OlympicSite::LatestNewsFragment(std::string_view lang) {
  return FragPrefix(lang) + "news:latest";
}

// --- generators ----------------------------------------------------------------

void OlympicSite::RegisterGenerators(const OlympicConfig& config, Database* db,
                                     PageRenderer* renderer) {
  assert(db != nullptr && renderer != nullptr);

  // Registers the news family (index, articles, latest-news fragment) for
  // `lang` — shared between full languages and the French news-only tier.
  auto register_news = [db, renderer](const std::string& lang) {
    renderer->RegisterExact(
        LatestNewsFragment(lang),
        [db, lang](const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kNewsFragmentTmpl);
          req.deps.DependsOnData(kNewsLatestNode);
          auto rows = db->ScanAll("news");
          std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
            return AsInt(a[news_col::kId]) > AsInt(b[news_col::kId]);
          });
          if (rows.size() > 5) rows.resize(5);
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("p", PagePrefix(lang));
          std::vector<TemplateContext> articles;
          for (const Row& r : rows) {
            articles.emplace_back()
                .Set("id", AsInt(r[news_col::kId]))
                .Set("title", AsString(r[news_col::kTitle]))
                .Set("day", AsInt(r[news_col::kDay]));
          }
          ctx.SetList("articles", std::move(articles));
          return tmpl.get().Render(ctx).body;
        });

    renderer->RegisterExact(
        NewsIndexPage(lang),
        [db, lang](const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kNewsIndexTmpl);
          req.deps.DependsOnData(kNewsAllNode);
          auto rows = db->ScanAll("news");
          std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
            return AsInt(a[news_col::kId]) > AsInt(b[news_col::kId]);
          });
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("p", PagePrefix(lang));
          std::vector<TemplateContext> articles;
          for (const Row& r : rows) {
            articles.emplace_back()
                .Set("id", AsInt(r[news_col::kId]))
                .Set("title", AsString(r[news_col::kTitle]))
                .Set("day", AsInt(r[news_col::kDay]));
          }
          ctx.SetList("articles", std::move(articles));
          return tmpl.get().Render(ctx).body;
        });

    const std::string news_prefix = PagePrefix(lang) + "/news/";
    renderer->RegisterPrefix(
        news_prefix,
        [db, lang, news_prefix](const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kNewsPageTmpl);
          const auto id = ParseId(req.page, news_prefix);
          if (!id) return InvalidArgumentError("bad article id");
          auto row = db->Get("news", Value(*id));
          if (!row.ok()) return NotFoundError("no article " + std::to_string(*id));
          req.deps.DependsOnData(NewsNode(*id));
          const Row& r = row.value();
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("title", AsString(r[news_col::kTitle]))
              .Set("day", AsInt(r[news_col::kDay]))
              .Set("body", AsString(r[news_col::kBody]));
          auto latest = req.fragments(LatestNewsFragment(lang));
          if (!latest.ok()) return latest.status();
          ctx.Set("latest_news", latest.value());
          return tmpl.get().Render(ctx).body;
        });
  };

  for (const std::string& lang : FullLanguages(config)) {
    const std::string p = PagePrefix(lang);

    // "/" (or "/<lang>/") — welcome page listing the days.
    renderer->RegisterExact(
        p + "/", [config, lang, p](const RenderRequest&) -> Result<std::string> {
          static const TemplateHolder tmpl(kWelcomeTmpl);
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("p", p);
          std::vector<TemplateContext> days;
          for (int d = 1; d <= config.days; ++d) {
            days.emplace_back().Set("day", int64_t(d));
          }
          ctx.SetList("days", std::move(days));
          return tmpl.get().Render(ctx).body;
        });

    // frag:[lang:]event:<id> — event summary (Fig. 15's per-event fragment).
    const std::string event_frag_prefix = FragPrefix(lang) + "event:";
    renderer->RegisterPrefix(
        event_frag_prefix,
        [db, lang, p, event_frag_prefix](
            const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kEventFragmentTmpl);
          const auto id = ParseId(req.page, event_frag_prefix);
          if (!id) return InvalidArgumentError("bad fragment id");
          const auto event = LoadEvent(*db, *id);
          if (!event) return NotFoundError("no event " + std::to_string(*id));
          // Results are the substance of the summary; the event row itself
          // (venue/name) rarely changes — Fig. 1-style weights.
          req.deps.DependsOnData(EventNode(*id), 2.0);
          req.deps.DependsOnData(ResultsEventNode(*id), 5.0);

          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("p", p)
              .Set("event_id", *id)
              .Set("event_name", event->name)
              .Set("status", event->status)
              .Set("venue", event->venue);
          std::vector<TemplateContext> top;
          for (const Row& r : ResultsForEvent(*db, *id)) {
            if (top.size() >= 3) break;
            const int64_t aid = AsInt(r[results_col::kAthleteId]);
            top.emplace_back()
                .Set("athlete", AthleteName(*db, aid))
                .Set("country", AthleteCountry(*db, aid))
                .Set("score", FormatScore(AsDouble(r[results_col::kScore])));
          }
          ctx.SetList("top", std::move(top));
          ctx.Set("photos",
                  PhotoStrip(*db, req.deps, "event", std::to_string(*id)));
          return tmpl.get().Render(ctx).body;
        });

    // frag:[lang:]medals — the medal standings table.
    renderer->RegisterExact(
        MedalsFragment(lang),
        [db, lang, p](const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kMedalsFragmentTmpl);
          req.deps.DependsOnData(kMedalsAllNode);
          auto rows = db->ScanAll("countries");
          std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
            const auto ga = AsInt(a[countries_col::kGolds]);
            const auto gb = AsInt(b[countries_col::kGolds]);
            if (ga != gb) return ga > gb;
            return AsString(a[countries_col::kCode]) <
                   AsString(b[countries_col::kCode]);
          });
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("p", p);
          std::vector<TemplateContext> out;
          for (const Row& r : rows) {
            const int64_t g = AsInt(r[countries_col::kGolds]);
            const int64_t s = AsInt(r[countries_col::kSilvers]);
            const int64_t b = AsInt(r[countries_col::kBronzes]);
            if (g + s + b == 0) continue;
            out.emplace_back()
                .Set("code", AsString(r[countries_col::kCode]))
                .Set("name", AsString(r[countries_col::kName]))
                .Set("g", g)
                .Set("s", s)
                .Set("b", b)
                .Set("total", g + s + b);
          }
          ctx.SetList("rows", std::move(out));
          return tmpl.get().Render(ctx).body;
        });

    // /day/<d> — the 1998 innovation: a home page per day, front-loading
    // the information clients previously needed 3+ navigations to reach.
    const std::string day_prefix = p + "/day/";
    renderer->RegisterPrefix(
        day_prefix,
        [db, lang, day_prefix](const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kDayHomeTmpl);
          const auto day = ParseId(req.page, day_prefix);
          if (!day) return InvalidArgumentError("bad day");
          req.deps.DependsOnData(EventDayNode(*day));

          auto events = db->Lookup("events", "day", Value(*day));
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("day", *day);

          auto medal_table = req.fragments(MedalsFragment(lang));
          if (!medal_table.ok()) return medal_table.status();
          ctx.Set("medal_table", medal_table.value());

          std::vector<TemplateContext> event_items;
          for (const Row& r : events) {
            const int64_t eid = AsInt(r[events_col::kId]);
            auto summary = req.fragments(EventFragment(eid, lang));
            if (!summary.ok()) return summary.status();
            event_items.emplace_back().Set("summary", summary.value());
          }
          ctx.SetList("events", std::move(event_items));

          auto latest = req.fragments(LatestNewsFragment(lang));
          if (!latest.ok()) return latest.status();
          ctx.Set("latest_news", latest.value());
          return tmpl.get().Render(ctx).body;
        });

    // /event/<id> — full result page.
    const std::string event_prefix = p + "/event/";
    renderer->RegisterPrefix(
        event_prefix,
        [db, lang, p, event_prefix](
            const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kEventPageTmpl);
          const auto id = ParseId(req.page, event_prefix);
          if (!id) return InvalidArgumentError("bad event id");
          const auto event = LoadEvent(*db, *id);
          if (!event) return NotFoundError("no event " + std::to_string(*id));
          req.deps.DependsOnData(EventNode(*id), 2.0);
          req.deps.DependsOnData(ResultsEventNode(*id), 5.0);
          req.deps.DependsOnData(MedalsEventNode(*id), 2.0);

          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("p", p)
              .Set("event_name", event->name)
              .Set("sport_name", SportName(*db, event->sport_id))
              .Set("day", event->day)
              .Set("venue", event->venue)
              .Set("status", event->status);
          std::vector<TemplateContext> results;
          for (const Row& r : ResultsForEvent(*db, *id)) {
            const int64_t aid = AsInt(r[results_col::kAthleteId]);
            req.deps.DependsOnData(AthleteNode(aid));
            results.emplace_back()
                .Set("rank", AsInt(r[results_col::kRank]))
                .Set("athlete_id", aid)
                .Set("athlete", AthleteName(*db, aid))
                .Set("country", AthleteCountry(*db, aid))
                .Set("score", FormatScore(AsDouble(r[results_col::kScore])));
          }
          ctx.SetList("results", std::move(results));
          ctx.Set("photos",
                  PhotoStrip(*db, req.deps, "event", std::to_string(*id)));

          auto medal = db->Get("medals", Value(*id));
          if (medal.ok()) {
            const Row& m = medal.value();
            std::vector<TemplateContext> flag(1);
            flag[0]
                .Set("gold", AthleteName(*db, AsInt(m[medals_col::kGold])))
                .Set("silver", AthleteName(*db, AsInt(m[medals_col::kSilver])))
                .Set("bronze", AthleteName(*db, AsInt(m[medals_col::kBronze])));
            ctx.SetList("has_medals", std::move(flag));
          }
          return tmpl.get().Render(ctx).body;
        });

    // /sport/<id> — sport page embedding its events' summary fragments.
    const std::string sport_prefix = p + "/sport/";
    renderer->RegisterPrefix(
        sport_prefix,
        [db, lang, sport_prefix](const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kSportPageTmpl);
          const auto id = ParseId(req.page, sport_prefix);
          if (!id) return InvalidArgumentError("bad sport id");
          auto sport = db->Get("sports", Value(*id));
          if (!sport.ok()) return NotFoundError("no sport " + std::to_string(*id));
          req.deps.DependsOnData(SportNode(*id));
          req.deps.DependsOnData(EventSportNode(*id));

          auto events = db->Lookup("events", "sport_id", Value(*id));
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("sport_name", AsString(sport.value()[sports_col::kName]));
          std::vector<TemplateContext> items;
          for (const Row& r : events) {
            const int64_t eid = AsInt(r[events_col::kId]);
            auto summary = req.fragments(EventFragment(eid, lang));
            if (!summary.ok()) return summary.status();
            items.emplace_back().Set("summary", summary.value());
          }
          ctx.SetList("events", std::move(items));
          return tmpl.get().Render(ctx).body;
        });

    // /athlete/<id> — the 1998 site's per-athlete collation of results.
    const std::string athlete_prefix = p + "/athlete/";
    renderer->RegisterPrefix(
        athlete_prefix,
        [db, lang, p, athlete_prefix](
            const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kAthletePageTmpl);
          const auto id = ParseId(req.page, athlete_prefix);
          if (!id) return InvalidArgumentError("bad athlete id");
          auto athlete = db->Get("athletes", Value(*id));
          if (!athlete.ok()) {
            return NotFoundError("no athlete " + std::to_string(*id));
          }
          req.deps.DependsOnData(AthleteNode(*id), 2.0);
          req.deps.DependsOnData(ResultsAthleteNode(*id), 5.0);

          const Row& a = athlete.value();
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("p", p)
              .Set("name", AsString(a[athletes_col::kName]))
              .Set("country", AsString(a[athletes_col::kCountry]))
              .Set("sport_name",
                   SportName(*db, AsInt(a[athletes_col::kSportId])));
          auto results = db->Lookup("results", "athlete_id", Value(*id));
          std::vector<TemplateContext> items;
          for (const Row& r : results) {
            const int64_t eid = AsInt(r[results_col::kEventId]);
            const auto event = LoadEvent(*db, eid);
            items.emplace_back()
                .Set("event_id", eid)
                .Set("event_name", event ? event->name : "(unknown)")
                .Set("rank", AsInt(r[results_col::kRank]))
                .Set("score", FormatScore(AsDouble(r[results_col::kScore])));
          }
          ctx.SetList("results", std::move(items));
          ctx.Set("photos",
                  PhotoStrip(*db, req.deps, "athlete", std::to_string(*id)));
          return tmpl.get().Render(ctx).body;
        });

    // /country/<code> — the 1998 site's per-country collation.
    const std::string country_prefix = p + "/country/";
    renderer->RegisterPrefix(
        country_prefix,
        [db, lang, p, country_prefix](
            const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kCountryPageTmpl);
          if (req.page.size() <= country_prefix.size()) {
            return InvalidArgumentError("bad country");
          }
          const std::string code(req.page.substr(country_prefix.size()));
          auto country = db->Get("countries", Value(code));
          if (!country.ok()) return NotFoundError("no country " + code);
          req.deps.DependsOnData(CountryNode(code), 3.0);
          req.deps.DependsOnData(MedalsCountryNode(code), 2.0);
          req.deps.DependsOnData(AthleteCountryNode(code), 1.0);

          const Row& c = country.value();
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("p", p)
              .Set("code", code)
              .Set("name", AsString(c[countries_col::kName]))
              .Set("g", AsInt(c[countries_col::kGolds]))
              .Set("s", AsInt(c[countries_col::kSilvers]))
              .Set("b", AsInt(c[countries_col::kBronzes]));
          auto athletes = db->Lookup("athletes", "country", Value(code));
          std::vector<TemplateContext> items;
          for (const Row& r : athletes) {
            items.emplace_back()
                .Set("id", AsInt(r[athletes_col::kId]))
                .Set("athlete", AsString(r[athletes_col::kName]));
          }
          ctx.SetList("athletes", std::move(items));
          ctx.Set("photos", PhotoStrip(*db, req.deps, "country", code));
          auto latest = req.fragments(LatestNewsFragment(lang));
          if (!latest.ok()) return latest.status();
          ctx.Set("latest_news", latest.value());
          return tmpl.get().Render(ctx).body;
        });

    // /medals — standings page wrapping the fragment.
    renderer->RegisterExact(
        MedalsPage(lang),
        [lang](const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kMedalsPageTmpl);
          TemplateContext ctx;
          SetChrome(ctx, lang);
          auto table = req.fragments(MedalsFragment(lang));
          if (!table.ok()) return table.status();
          ctx.Set("medal_table", table.value());
          return tmpl.get().Render(ctx).body;
        });

    // /schedule/day/<d> — the day's programme.
    const std::string schedule_prefix = p + "/schedule/day/";
    renderer->RegisterPrefix(
        schedule_prefix,
        [db, lang, p, schedule_prefix](
            const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kSchedulePageTmpl);
          const auto day = ParseId(req.page, schedule_prefix);
          if (!day) return InvalidArgumentError("bad day");
          req.deps.DependsOnData(EventDayNode(*day));
          auto events = db->Lookup("events", "day", Value(*day));
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("p", p).Set("day", *day);
          std::vector<TemplateContext> items;
          for (const Row& r : events) {
            // Status is read straight off the row, so freshness needs the
            // per-event node — the membership node above only covers which
            // events appear.
            req.deps.DependsOnData(EventNode(AsInt(r[events_col::kId])));
            items.emplace_back()
                .Set("id", AsInt(r[events_col::kId]))
                .Set("event_name", AsString(r[events_col::kName]))
                .Set("venue", AsString(r[events_col::kVenue]))
                .Set("status", AsString(r[events_col::kStatus]));
          }
          ctx.SetList("events", std::move(items));
          return tmpl.get().Render(ctx).body;
        });

    // /venue/<slug> — §3.1 category 4: "information on where the sports
    // were performed", combined with that venue's programme.
    const std::string venue_prefix = p + "/venue/";
    renderer->RegisterPrefix(
        venue_prefix,
        [db, lang, p, venue_prefix](
            const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kVenuePageTmpl);
          if (req.page.size() <= venue_prefix.size()) {
            return InvalidArgumentError("bad venue");
          }
          const std::string name =
              VenueUnslug(req.page.substr(venue_prefix.size()));
          auto venue = db->Get("venues", Value(name));
          if (!venue.ok()) return NotFoundError("no venue " + name);
          req.deps.DependsOnData(VenueNode(name));
          req.deps.DependsOnData(EventVenueNode(name));

          const Row& v = venue.value();
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("p", p)
              .Set("venue", name)
              .Set("locality", AsString(v[1]))
              .Set("capacity", AsInt(v[2]));
          auto events = db->Lookup("events", "venue", Value(name));
          std::vector<TemplateContext> items;
          for (const Row& r : events) {
            // Same as the schedule page: status comes off the row itself.
            req.deps.DependsOnData(EventNode(AsInt(r[events_col::kId])));
            items.emplace_back()
                .Set("id", AsInt(r[events_col::kId]))
                .Set("event_name", AsString(r[events_col::kName]))
                .Set("day", AsInt(r[events_col::kDay]))
                .Set("status", AsString(r[events_col::kStatus]));
          }
          ctx.SetList("events", std::move(items));
          ctx.Set("photos", PhotoStrip(*db, req.deps, "venue", name));
          return tmpl.get().Render(ctx).body;
        });

    // /nagano — §3.1 category 8: "information about Nagano, Japan".
    renderer->RegisterExact(
        NaganoPage(lang),
        [db, lang, p](const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kNaganoPageTmpl);
          req.deps.DependsOnData(kVenuesAllNode);
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("p", p);
          std::vector<TemplateContext> items;
          for (const Row& r : db->ScanAll("venues")) {
            items.emplace_back()
                .Set("venue", AsString(r[0]))
                .Set("slug", VenueSlug(AsString(r[0])))
                .Set("locality", AsString(r[1]));
          }
          ctx.SetList("venues", std::move(items));
          return tmpl.get().Render(ctx).body;
        });

    // /fun — §3.1 category 9: "sports-related activities for children".
    renderer->RegisterExact(
        FunPage(lang),
        [db, lang](const RenderRequest& req) -> Result<std::string> {
          static const TemplateHolder tmpl(kFunPageTmpl);
          (void)req;
          TemplateContext ctx;
          SetChrome(ctx, lang);
          ctx.Set("sports", int64_t(db->RowCount("sports")));
          return tmpl.get().Render(ctx).body;
        });

    register_news(lang);
  }

  // "All news articles were also available in French."
  if (config.french_news &&
      std::find(config.languages.begin(), config.languages.end(), "fr") ==
          config.languages.end()) {
    register_news("fr");
  }
}

// --- change mapping --------------------------------------------------------------

std::vector<std::string> OlympicSite::MapChangeToDataNodes(
    const ChangeRecord& change, const Database& db) {
  std::vector<std::string> nodes;
  const bool is_delete = change.op == db::ChangeOp::kDelete;

  if (change.table == "results") {
    if (is_delete || change.row.empty()) {
      nodes.push_back("results:*");
      return nodes;
    }
    nodes.push_back(ResultsEventNode(AsInt(change.row[results_col::kEventId])));
    nodes.push_back(
        ResultsAthleteNode(AsInt(change.row[results_col::kAthleteId])));
  } else if (change.table == "events") {
    if (is_delete || change.row.empty()) {
      nodes.push_back("events:*");
      return nodes;
    }
    nodes.push_back(EventNode(AsInt(change.row[events_col::kId])));
    // Day/sport/venue membership is fixed when the event row is inserted;
    // updates touch mutable columns only (status), which pages read through
    // the per-event node. Keeping membership nodes out of the update mapping
    // is what lets a completion patch day/sport plans instead of re-rendering
    // them.
    if (change.op != db::ChangeOp::kUpdate) {
      nodes.push_back(EventDayNode(AsInt(change.row[events_col::kDay])));
      nodes.push_back(EventSportNode(AsInt(change.row[events_col::kSportId])));
      nodes.push_back(EventVenueNode(AsString(change.row[events_col::kVenue])));
    }
  } else if (change.table == "medals") {
    if (is_delete || change.row.empty()) {
      nodes.push_back(kMedalsAllNode);
      return nodes;
    }
    nodes.push_back(MedalsEventNode(AsInt(change.row[medals_col::kEventId])));
    nodes.push_back(kMedalsAllNode);
    for (size_t c : {medals_col::kGold, medals_col::kSilver, medals_col::kBronze}) {
      nodes.push_back(
          MedalsCountryNode(AthleteCountry(db, AsInt(change.row[c]))));
    }
  } else if (change.table == "countries") {
    if (is_delete || change.row.empty()) {
      nodes.push_back("countries:*");
      nodes.push_back(kMedalsAllNode);
      return nodes;
    }
    nodes.push_back(CountryNode(AsString(change.row[countries_col::kCode])));
    // Medal tallies live in this table; the standings fragment depends on
    // the aggregate node.
    nodes.push_back(kMedalsAllNode);
  } else if (change.table == "athletes") {
    if (is_delete || change.row.empty()) {
      nodes.push_back("athletes:*");
      return nodes;
    }
    nodes.push_back(AthleteNode(AsInt(change.row[athletes_col::kId])));
    nodes.push_back(
        AthleteCountryNode(AsString(change.row[athletes_col::kCountry])));
  } else if (change.table == "photos") {
    if (is_delete || change.row.empty()) {
      nodes.push_back("photos:*");
      return nodes;
    }
    nodes.push_back(PhotoSubjectNode(AsString(change.row[2]),
                                     AsString(change.row[3])));
  } else if (change.table == "venues") {
    if (is_delete || change.row.empty()) {
      nodes.push_back(kVenuesAllNode);
      return nodes;
    }
    nodes.push_back(VenueNode(AsString(change.row[0])));
    nodes.push_back(kVenuesAllNode);
  } else if (change.table == "news") {
    if (is_delete || change.row.empty()) {
      nodes.push_back(kNewsAllNode);
      nodes.push_back(kNewsLatestNode);
      return nodes;
    }
    nodes.push_back(NewsNode(AsInt(change.row[news_col::kId])));
    nodes.push_back(kNewsLatestNode);
    nodes.push_back(kNewsAllNode);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

// --- enumeration -------------------------------------------------------------------

std::vector<std::string> OlympicSite::AllPageNames(const OlympicConfig& config,
                                                   const Database& db) {
  std::vector<std::string> pages;
  for (const std::string& lang : FullLanguages(config)) {
    const std::string p = PagePrefix(lang);
    pages.push_back(p + "/");
    pages.push_back(MedalsPage(lang));
    pages.push_back(NewsIndexPage(lang));
    for (int d = 1; d <= config.days; ++d) {
      pages.push_back(DayHomePage(d, lang));
      pages.push_back(p + "/schedule/day/" + std::to_string(d));
    }
    for (const Row& r : db.ScanAll("sports")) {
      pages.push_back(SportPage(AsInt(r[sports_col::kId]), lang));
    }
    for (const Row& r : db.ScanAll("events")) {
      pages.push_back(EventPage(AsInt(r[events_col::kId]), lang));
    }
    for (const Row& r : db.ScanAll("athletes")) {
      pages.push_back(AthletePage(AsInt(r[athletes_col::kId]), lang));
    }
    for (const Row& r : db.ScanAll("countries")) {
      pages.push_back(CountryPage(AsString(r[countries_col::kCode]), lang));
    }
    for (const Row& r : db.ScanAll("news")) {
      pages.push_back(NewsPage(AsInt(r[news_col::kId]), lang));
    }
    for (const Row& r : db.ScanAll("venues")) {
      pages.push_back(VenuePage(AsString(r[0]), lang));
    }
    pages.push_back(NaganoPage(lang));
    pages.push_back(FunPage(lang));
  }
  if (config.french_news &&
      std::find(config.languages.begin(), config.languages.end(), "fr") ==
          config.languages.end()) {
    pages.push_back(NewsIndexPage("fr"));
    for (const Row& r : db.ScanAll("news")) {
      pages.push_back(NewsPage(AsInt(r[news_col::kId]), "fr"));
    }
  }
  return pages;
}

std::vector<std::string> OlympicSite::AllFragmentNames(
    const OlympicConfig& config, const Database& db) {
  std::vector<std::string> fragments;
  for (const std::string& lang : FullLanguages(config)) {
    fragments.push_back(MedalsFragment(lang));
    fragments.push_back(LatestNewsFragment(lang));
    for (const Row& r : db.ScanAll("events")) {
      fragments.push_back(EventFragment(AsInt(r[events_col::kId]), lang));
    }
  }
  if (config.french_news &&
      std::find(config.languages.begin(), config.languages.end(), "fr") ==
          config.languages.end()) {
    fragments.push_back(LatestNewsFragment("fr"));
  }
  return fragments;
}

// --- result-feed mutations ------------------------------------------------------------

Status OlympicSite::RecordResult(Database* db, int64_t event_id, int64_t rank,
                                 int64_t athlete_id, double score) {
  auto event = db->Get("events", Value(event_id));
  if (!event.ok()) return event.status();
  Status s = db->Upsert(
      "results", Row{Value(ResultKey(event_id, rank)), Value(event_id),
                     Value(rank), Value(athlete_id), Value(score)});
  if (!s.ok()) return s;
  Row row = event.value();
  if (AsString(row[events_col::kStatus]) == "scheduled") {
    row[events_col::kStatus] = std::string("in_progress");
    return db->Upsert("events", std::move(row));
  }
  return Status::Ok();
}

Status OlympicSite::CompleteEvent(Database* db, int64_t event_id) {
  auto event = db->Get("events", Value(event_id));
  if (!event.ok()) return event.status();

  auto results = db->Lookup("results", "event_id", Value(event_id));
  std::sort(results.begin(), results.end(), [](const Row& a, const Row& b) {
    return AsInt(a[results_col::kRank]) < AsInt(b[results_col::kRank]);
  });
  if (results.size() < 3) {
    return FailedPreconditionError("CompleteEvent: fewer than 3 results");
  }

  const int64_t gold = AsInt(results[0][results_col::kAthleteId]);
  const int64_t silver = AsInt(results[1][results_col::kAthleteId]);
  const int64_t bronze = AsInt(results[2][results_col::kAthleteId]);

  Status s = db->Upsert("medals", Row{Value(event_id), Value(gold),
                                      Value(silver), Value(bronze)});
  if (!s.ok()) return s;

  // Bump each medalist country's tally.
  const std::pair<int64_t, size_t> awards[] = {
      {gold, countries_col::kGolds},
      {silver, countries_col::kSilvers},
      {bronze, countries_col::kBronzes}};
  for (const auto& [athlete, column] : awards) {
    const std::string cc = AthleteCountry(*db, athlete);
    auto country = db->Get("countries", Value(cc));
    if (!country.ok()) return country.status();
    Row row = country.value();
    row[column] = AsInt(row[column]) + 1;
    s = db->Upsert("countries", std::move(row));
    if (!s.ok()) return s;
  }

  Row row = event.value();
  row[events_col::kStatus] = std::string("final");
  return db->Upsert("events", std::move(row));
}

Status OlympicSite::PublishPhoto(Database* db, int64_t photo_id,
                                 std::string_view caption,
                                 std::string_view subject_kind,
                                 std::string_view subject_id, int day) {
  return db->Upsert("photos",
                    Row{Value(photo_id), Value(std::string(caption)),
                        Value(std::string(subject_kind)),
                        Value(std::string(subject_id)), Value(int64_t(day))});
}

Status OlympicSite::PublishNews(Database* db, int64_t article_id, int day,
                                std::string_view title, std::string_view body,
                                int64_t sport_id) {
  return db->Upsert("news",
                    Row{Value(article_id), Value(int64_t(day)),
                        Value(std::string(title)), Value(std::string(body)),
                        Value(sport_id)});
}

}  // namespace nagano::pagegen
