// Page renderer with automatic dependency recording.
//
// Every cacheable object at the Olympic site — full pages and shared
// fragments — is produced by a registered generator. While a generator
// runs, it records the underlying data it read (database rows/tables,
// editorial files) and every fragment it spliced; the renderer then syncs
// those observations into the Object Dependence Graph. This is the
// "application program ... responsible for communicating data dependencies
// ... to the cache" of paper §2, automated so the ODG can never drift from
// what a page actually contains.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/object_cache.h"
#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "common/stats.h"
#include "odg/graph.h"
#include "pagegen/template.h"

namespace nagano::pagegen {

// Collects the underlying-data names a generator reads. Names follow the
// convention "<table>:<key>" for a row and "<table>:*" for a whole-table
// scan (e.g. the medal standings page depends on "countries:*").
//
// The optional weight expresses the importance of the dependence (paper
// Fig. 1): a result table is the substance of an event page (high weight)
// while the latest-news box is garnish (low weight). Weights feed the
// quantitative-obsolescence threshold policy; with the default weight the
// ODG stays unweighted.
class DependencyRecorder {
 public:
  void DependsOnData(std::string node_name, double weight = 1.0) {
    data_deps_.emplace_back(std::move(node_name), weight);
  }
  const std::vector<std::pair<std::string, double>>& data_deps() const {
    return data_deps_;
  }

 private:
  std::vector<std::pair<std::string, double>> data_deps_;
};

struct RenderRequest {
  std::string_view page;            // object name, e.g. "/event/12/results"
  DependencyRecorder& deps;         // record data dependencies here
  const FragmentResolver& fragments;  // pass to CompiledTemplate::Render
};

// Produces the page body. Fragment usage is recorded by the resolver; data
// usage by the recorder.
using PageGenerator = std::function<Result<std::string>(const RenderRequest&)>;

struct RendererStats {
  uint64_t pages_rendered = 0;
  uint64_t fragment_cache_hits = 0;  // fragments spliced straight from cache
  uint64_t generator_errors = 0;
  // Pages stored as composition plans (static chunks + fragment refs)
  // instead of flat bodies.
  uint64_t plans_stored = 0;
  // Renders that adopted a concurrent in-flight render's result instead of
  // running the generator again (fragment-granularity single-flight: two
  // pages racing on one hot fragment cost one fragment render).
  uint64_t renders_coalesced = 0;
};

struct RendererOptions : OptionsBase {
  // Store pages that splice at least one fragment as composition plans
  // (ordered static chunks + pinned fragment refs, cache::PlanChunk) rather
  // than flat bodies. A data change then re-renders only the touched
  // fragment; every embedding page is patched by fragment swap. false is
  // the whole-page baseline the fanout bench compares against.
  bool compose_pages = true;
  // Coalesce concurrent renders of the same object into one generator run
  // (single-flight, per object name — fragments included).
  bool coalesce_renders = true;
  metrics::Options metrics;

  Status Validate() const { return Status::Ok(); }
};

class PageRenderer {
 public:
  PageRenderer(odg::ObjectDependenceGraph* graph, cache::ObjectCache* cache,
               const metrics::Options& metrics_options = {});
  PageRenderer(odg::ObjectDependenceGraph* graph, cache::ObjectCache* cache,
               RendererOptions options);

  // Exact-name generator ("/medals") or prefix family ("/athlete/"). When
  // both match, exact wins; among prefixes, the longest wins.
  void RegisterExact(std::string name, PageGenerator generator);
  void RegisterPrefix(std::string prefix, PageGenerator generator);

  bool CanGenerate(std::string_view page) const;

  // Renders `page`, updates its ODG dependence edges, stores the body in
  // the cache, and returns it. Fragments referenced via {{>...}} are pulled
  // from the cache or rendered (and cached) recursively; include cycles are
  // an error.
  Result<std::string> RenderAndCache(std::string_view page);

  // Render without storing — used for never-cache pages and for measuring
  // raw generation cost.
  Result<std::string> RenderOnly(std::string_view page);

  RendererStats stats() const;

 private:
  struct RenderState {
    std::vector<std::string> stack;  // active renders, for cycle detection
  };

  // One in-progress render that concurrent requests for the same object
  // attach to instead of running the generator again.
  struct RenderFlight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Result<std::string> body{std::string()};  // overwritten at publish
  };

  Result<std::string> RenderInternal(std::string_view page, bool store,
                                     RenderState& state);
  // The actual generator run (no single-flight): runs the generator, splits
  // composition plans out of the flat output, syncs the ODG, and stores.
  Result<std::string> RenderUncoalesced(const std::string& page_name,
                                        const PageGenerator& generator,
                                        bool store, RenderState& state);
  // Splits `raw` (generator output with fragment markers) into `plan` and
  // returns the materialized marker-free bytes.
  Result<std::string> ExtractPlan(const std::string& raw, RenderState& state,
                                  std::vector<cache::PlanChunk>& plan);
  const PageGenerator* FindGenerator(std::string_view page) const;

  odg::ObjectDependenceGraph* graph_;
  cache::ObjectCache* cache_;
  RendererOptions options_;

  std::mutex flights_mutex_;
  std::unordered_map<std::string, std::shared_ptr<RenderFlight>> flights_;

  // Registration happens at site construction; every render takes the
  // shared side, so the trigger monitor's parallel re-render workers never
  // serialize on generator lookup.
  mutable std::shared_mutex registry_mutex_;
  std::map<std::string, PageGenerator> exact_;
  std::map<std::string, PageGenerator> prefixes_;

  // Registry-owned sharded counters — bumped on every render, and shared
  // locking would re-serialize the parallel re-render workers. stats() is a
  // thin snapshot view over these cells.
  metrics::Counter* pages_rendered_;
  metrics::Counter* fragment_cache_hits_;
  metrics::Counter* generator_errors_;
  metrics::Counter* plans_stored_;
  metrics::Counter* renders_coalesced_;
};

}  // namespace nagano::pagegen
