// Synthetic Olympic Games content model — the reproduction's stand-in for
// the Nagano results database and the 1998 site's page family (§3.1).
//
// The module provides:
//  * the database schema (sports, events, athletes, countries, results,
//    medals, news) and a deterministic population of it;
//  * page generators for the 1998 structure — per-day home pages, sport,
//    event, athlete, country, medal-standings and news pages, plus the
//    shared fragments of Fig. 15 (medal table, event summaries, latest
//    news) — registered against a PageRenderer;
//  * the change -> underlying-data-node mapper the trigger monitor uses:
//    given a committed ChangeRecord it names the ODG data vertices that
//    changed ("results:event:12", "medals:*", ...). Generators record
//    dependencies using the same names, which is what makes DUP precise
//    (the 1996 site lacked this and had to over-invalidate);
//  * mutation helpers that model the result feed: RecordResult,
//    CompleteEvent (awards medals and bumps country tallies), PublishNews.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "db/database.h"
#include "pagegen/renderer.h"

namespace nagano::pagegen {

struct OlympicConfig {
  int days = 16;
  int num_sports = 7;
  int events_per_sport = 10;       // spread across the days
  int athletes_per_event = 12;
  int num_countries = 24;
  int initial_news_articles = 20;
  uint64_t seed = 19980207;        // opening day of the Nagano games

  // §3.1: "approximately 87,000 unique pages in both English and
  // Japanese; all news articles were also available in French." The first
  // language is the default and serves unprefixed URLs ("/day/7"); others
  // get a prefix ("/ja/day/7"). French renders news pages only.
  std::vector<std::string> languages = {"en", "ja"};
  bool french_news = true;
};

class OlympicSite {
 public:
  // Creates the seven Olympic tables (sports, events, athletes, countries,
  // results, medals, news) without any rows — what a fresh replica needs
  // before the change log replays content into it.
  static Status CreateSchema(db::Database* db);

  // CreateSchema + deterministic population of the static content
  // (sports/events/athletes/countries and the pre-games news archive).
  // The database must be empty of these tables.
  static Status Build(const OlympicConfig& config, db::Database* db);

  // Registers every 1998-structure page and fragment generator.
  static void RegisterGenerators(const OlympicConfig& config,
                                 db::Database* db, PageRenderer* renderer);

  // Names the underlying-data ODG vertices affected by a committed change.
  // Used by the trigger monitor.
  static std::vector<std::string> MapChangeToDataNodes(
      const db::ChangeRecord& change, const db::Database& db);

  // Every page (not fragment) the site serves, for prefetch warm-up; the
  // paper's site cached all ~21,000 dynamic pages.
  static std::vector<std::string> AllPageNames(const OlympicConfig& config,
                                               const db::Database& db);
  // Every fragment name.
  static std::vector<std::string> AllFragmentNames(const OlympicConfig& config,
                                                   const db::Database& db);

  // --- result-feed mutations (what the scoring system produced) ---

  // Upserts one result row for (event, rank); marks the event in progress.
  static Status RecordResult(db::Database* db, int64_t event_id, int64_t rank,
                             int64_t athlete_id, double score);

  // Marks the event final, writes the medals row from ranks 1-3, and bumps
  // the three countries' tallies. One call fans out across event, sport,
  // day-home, athlete, country, and medal pages — the paper's "completion
  // of an event could cause over a hundred pages to change".
  static Status CompleteEvent(db::Database* db, int64_t event_id);

  static Status PublishNews(db::Database* db, int64_t article_id, int day,
                            std::string_view title, std::string_view body,
                            int64_t sport_id);

  // "Photographs were classified by hand and dynamically inserted into the
  // appropriate News, Results, Athlete, Country, Venue, and Today pages."
  // subject_kind is one of "event", "athlete", "country", "venue"; the
  // photo appears on that subject's pages (and the day home via the event).
  static Status PublishPhoto(db::Database* db, int64_t photo_id,
                             std::string_view caption,
                             std::string_view subject_kind,
                             std::string_view subject_id, int day);

  // --- id helpers shared with benches/tests ---
  // The default language ("en") serves unprefixed names; any other
  // language code prefixes pages with "/<lang>" and fragments with
  // "frag:<lang>:".
  static std::string DayHomePage(int day, std::string_view lang = "en");
  static std::string SportPage(int64_t sport_id, std::string_view lang = "en");
  static std::string EventPage(int64_t event_id, std::string_view lang = "en");
  static std::string AthletePage(int64_t athlete_id,
                                 std::string_view lang = "en");
  static std::string CountryPage(std::string_view code,
                                 std::string_view lang = "en");
  static std::string NewsPage(int64_t article_id, std::string_view lang = "en");
  static std::string EventFragment(int64_t event_id,
                                   std::string_view lang = "en");
  static std::string MedalsPage(std::string_view lang = "en");
  static std::string NewsIndexPage(std::string_view lang = "en");
  // Venue names are slugified into the URL ("White Ring" -> "White_Ring").
  static std::string VenuePage(std::string_view venue_name,
                               std::string_view lang = "en");
  static std::string NaganoPage(std::string_view lang = "en");
  static std::string FunPage(std::string_view lang = "en");
  static std::string MedalsFragment(std::string_view lang = "en");
  static std::string LatestNewsFragment(std::string_view lang = "en");
  static constexpr const char* kMedalsPage = "/medals";
  static constexpr const char* kNewsIndexPage = "/news";
  static constexpr const char* kMedalsFragment = "frag:medals";
  static constexpr const char* kLatestNewsFragment = "frag:news:latest";
};

}  // namespace nagano::pagegen
