#include "pagegen/renderer.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace nagano::pagegen {
namespace {

// Sentinels the composition-mode fragment resolver returns in place of the
// fragment body. Generators splice the resolver's result verbatim (raw
// {{{...}}} substitution), so the flat output can be split back into static
// chunks and fragment refs afterwards. The bytes contain control characters
// that never occur in rendered content.
constexpr std::string_view kFragMarkOpen = "\x01\x02";
constexpr std::string_view kFragMarkClose = "\x02\x01";

// How long a coalesced render waits for the leading flight before giving up
// and rendering on its own. Only a cross-thread include cycle (two leaders
// mutually waiting on each other's fragments) can hit this; the fallback
// render then reports the cycle through the ordinary stack check.
constexpr std::chrono::seconds kFlightFallback{2};

RendererOptions WithMetrics(const metrics::Options& metrics_options) {
  RendererOptions options;
  options.metrics = metrics_options;
  return options;
}

}  // namespace

PageRenderer::PageRenderer(odg::ObjectDependenceGraph* graph,
                           cache::ObjectCache* cache,
                           const metrics::Options& metrics_options)
    : PageRenderer(graph, cache, WithMetrics(metrics_options)) {}

PageRenderer::PageRenderer(odg::ObjectDependenceGraph* graph,
                           cache::ObjectCache* cache, RendererOptions options)
    : graph_(graph),
      cache_(cache),
      options_(ValidateOrDie(options, "RendererOptions")) {
  assert(graph_ != nullptr);
  assert(cache_ != nullptr);
  const auto scope = metrics::Scope::Resolve(options_.metrics, "renderer");
  pages_rendered_ = scope.GetCounter("nagano_renderer_pages_rendered_total",
                                     "successful page/fragment renders");
  fragment_cache_hits_ =
      scope.GetCounter("nagano_renderer_fragment_cache_hits_total",
                       "fragments spliced straight from cache");
  generator_errors_ = scope.GetCounter("nagano_renderer_generator_errors_total",
                                       "generator invocations that failed");
  plans_stored_ = scope.GetCounter("nagano_renderer_plans_stored_total",
                                   "pages stored as composition plans");
  renders_coalesced_ =
      scope.GetCounter("nagano_renderer_renders_coalesced_total",
                       "renders adopting a concurrent flight's result");
}

void PageRenderer::RegisterExact(std::string name, PageGenerator generator) {
  std::unique_lock lock(registry_mutex_);
  exact_[std::move(name)] = std::move(generator);
}

void PageRenderer::RegisterPrefix(std::string prefix, PageGenerator generator) {
  std::unique_lock lock(registry_mutex_);
  prefixes_[std::move(prefix)] = std::move(generator);
}

const PageGenerator* PageRenderer::FindGenerator(std::string_view page) const {
  // std::map node pointers are stable and generators are never erased, so
  // the returned pointer outlives the lock.
  std::shared_lock lock(registry_mutex_);
  if (auto it = exact_.find(std::string(page)); it != exact_.end()) {
    return &it->second;
  }
  // Longest matching prefix: scan candidates not past `page` in order.
  const PageGenerator* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, gen] : prefixes_) {
    if (page.starts_with(prefix) && prefix.size() >= best_len) {
      best = &gen;
      best_len = prefix.size();
    }
  }
  return best;
}

bool PageRenderer::CanGenerate(std::string_view page) const {
  return FindGenerator(page) != nullptr;
}

Result<std::string> PageRenderer::RenderAndCache(std::string_view page) {
  RenderState state;
  return RenderInternal(page, /*store=*/true, state);
}

Result<std::string> PageRenderer::RenderOnly(std::string_view page) {
  RenderState state;
  return RenderInternal(page, /*store=*/false, state);
}

Result<std::string> PageRenderer::RenderInternal(std::string_view page,
                                                 bool store,
                                                 RenderState& state) {
  const std::string page_name(page);
  if (std::find(state.stack.begin(), state.stack.end(), page_name) !=
      state.stack.end()) {
    return FailedPreconditionError("fragment include cycle at " + page_name);
  }
  const PageGenerator* generator = FindGenerator(page);
  if (generator == nullptr) {
    return NotFoundError("no generator for " + page_name);
  }

  // RenderOnly keeps fresh-render semantics, so only caching renders
  // coalesce.
  if (!store || !options_.coalesce_renders) {
    return RenderUncoalesced(page_name, *generator, store, state);
  }

  std::shared_ptr<RenderFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flights_mutex_);
    auto it = flights_.find(page_name);
    if (it == flights_.end()) {
      flight = std::make_shared<RenderFlight>();
      flights_.emplace(page_name, flight);
      leader = true;
    } else {
      flight = it->second;
    }
  }

  if (leader) {
    Result<std::string> body =
        RenderUncoalesced(page_name, *generator, store, state);
    {
      // Retire the flight before publishing: late arrivals start a fresh
      // render against the now-populated cache instead of joining a
      // finished one.
      std::lock_guard<std::mutex> lock(flights_mutex_);
      auto it = flights_.find(page_name);
      if (it != flights_.end() && it->second == flight) flights_.erase(it);
    }
    {
      std::lock_guard<std::mutex> lock(flight->mutex);
      flight->body = body;
      flight->done = true;
    }
    flight->cv.notify_all();
    return body;
  }

  {
    std::unique_lock<std::mutex> lock(flight->mutex);
    if (flight->cv.wait_for(lock, kFlightFallback,
                            [&] { return flight->done; })) {
      Result<std::string> body = flight->body;
      lock.unlock();
      renders_coalesced_->Increment();
      return body;
    }
  }
  // Leader stuck (cross-thread include cycle): render independently; the
  // stack check in the recursive render reports genuine cycles.
  return RenderUncoalesced(page_name, *generator, store, state);
}

Result<std::string> PageRenderer::RenderUncoalesced(
    const std::string& page_name, const PageGenerator& generator, bool store,
    RenderState& state) {
  state.stack.push_back(page_name);

  DependencyRecorder recorder;
  std::vector<std::string> fragments_used;
  uint64_t fragment_hits = 0;
  const bool compose = options_.compose_pages;

  // Fragments come from the cache when present; otherwise they are rendered
  // (and cached) recursively, sharing this render's cycle-detection stack.
  // In composition mode the resolver only *ensures* the fragment is cached
  // and hands the generator an opaque marker; the flat output is split on
  // the markers into this page's composition plan afterwards.
  FragmentResolver resolver =
      [&](std::string_view fragment) -> Result<std::string> {
    fragments_used.emplace_back(fragment);
    if (!compose) {
      if (auto cached = cache_->Peek(fragment)) {
        ++fragment_hits;
        return cached->body;
      }
      return RenderInternal(fragment, /*store=*/true, state);
    }
    if (cache_->Contains(fragment)) {
      ++fragment_hits;
    } else {
      Result<std::string> rendered =
          RenderInternal(fragment, /*store=*/true, state);
      if (!rendered.ok()) return rendered;
    }
    std::string marker(kFragMarkOpen);
    marker += fragment;
    marker += kFragMarkClose;
    return marker;
  };

  RenderRequest request{page_name, recorder, resolver};
  Result<std::string> body = generator(request);

  std::vector<cache::PlanChunk> plan;
  if (body.ok() && compose && !fragments_used.empty()) {
    // Still on the stack: the rare inline-fallback re-render inside
    // ExtractPlan shares this render's cycle detection.
    body = ExtractPlan(body.value(), state, plan);
  }

  state.stack.pop_back();

  if (!body.ok()) {
    generator_errors_->Increment();
    return body;
  }

  // Sync the ODG: this page's in-edges become exactly what this render
  // observed. Kind widening in EnsureNode turns a page that others embed
  // into kBoth automatically. SetInEdges short-circuits on the read lock
  // when the dependencies are unchanged — the steady state of re-renders —
  // so parallel workers do not serialize on the graph's write lock.
  const odg::NodeId page_node =
      graph_->EnsureNode(page_name, odg::NodeKind::kObject);
  std::vector<odg::Edge> sources;
  sources.reserve(recorder.data_deps().size() + fragments_used.size());
  for (const auto& [dep, weight] : recorder.data_deps()) {
    sources.push_back(odg::Edge{
        graph_->EnsureNode(dep, odg::NodeKind::kUnderlyingData), weight});
  }
  for (const std::string& frag : fragments_used) {
    sources.push_back(
        odg::Edge{graph_->EnsureNode(frag, odg::NodeKind::kBoth), 1.0});
  }
  graph_->SetInEdges(page_node, std::move(sources));

  if (store) {
    const bool has_fragment_chunk =
        std::any_of(plan.begin(), plan.end(),
                    [](const cache::PlanChunk& c) { return c.is_fragment(); });
    if (has_fragment_chunk) {
      cache_->PutPlan(page_name, std::move(plan));
      plans_stored_->Increment();
    } else {
      cache_->Put(page_name, body.value());
    }
  }

  pages_rendered_->Increment();
  if (fragment_hits != 0) fragment_cache_hits_->Increment(fragment_hits);
  return body;
}

Result<std::string> PageRenderer::ExtractPlan(
    const std::string& raw, RenderState& state,
    std::vector<cache::PlanChunk>& plan) {
  std::string pending;  // static bytes accumulated since the last fragment
  size_t pos = 0;
  while (pos < raw.size()) {
    const size_t open = raw.find(kFragMarkOpen, pos);
    if (open == std::string::npos) break;
    const size_t name_at = open + kFragMarkOpen.size();
    const size_t close = raw.find(kFragMarkClose, name_at);
    if (close == std::string::npos) break;
    pending.append(raw, pos, open - pos);
    const std::string fragment = raw.substr(name_at, close - name_at);
    pos = close + kFragMarkClose.size();

    auto source = cache_->Peek(fragment);
    if (source != nullptr && !source->is_plan()) {
      if (!pending.empty()) {
        cache::PlanChunk chunk;
        chunk.text = std::move(pending);
        pending.clear();
        plan.push_back(std::move(chunk));
      }
      cache::PlanChunk chunk;
      chunk.fragment = fragment;
      chunk.fragment_version = source->version;
      chunk.source = std::move(source);
      plan.push_back(std::move(chunk));
      continue;
    }
    // The fragment vanished between the resolver and here (capacity
    // eviction) or is itself plan-shaped — inline its bytes as static text
    // so chunk refs stay flat, single-span views.
    Result<std::string> inlined =
        source != nullptr ? Result<std::string>(source->Materialize())
                          : RenderInternal(fragment, /*store=*/false, state);
    if (!inlined.ok()) return inlined;
    pending += inlined.value();
  }
  pending.append(raw, pos, raw.size() - pos);
  if (!pending.empty()) {
    cache::PlanChunk chunk;
    chunk.text = std::move(pending);
    plan.push_back(std::move(chunk));
  }

  std::string materialized;
  size_t total = 0;
  for (const cache::PlanChunk& chunk : plan) total += chunk.bytes().size();
  materialized.reserve(total);
  for (const cache::PlanChunk& chunk : plan) materialized += chunk.bytes();
  return materialized;
}

RendererStats PageRenderer::stats() const {
  RendererStats out;
  out.pages_rendered = pages_rendered_->value();
  out.fragment_cache_hits = fragment_cache_hits_->value();
  out.generator_errors = generator_errors_->value();
  out.plans_stored = plans_stored_->value();
  out.renders_coalesced = renders_coalesced_->value();
  return out;
}

}  // namespace nagano::pagegen
