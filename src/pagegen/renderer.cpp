#include "pagegen/renderer.h"

#include <algorithm>
#include <cassert>

namespace nagano::pagegen {

PageRenderer::PageRenderer(odg::ObjectDependenceGraph* graph,
                           cache::ObjectCache* cache)
    : graph_(graph), cache_(cache) {
  assert(graph_ != nullptr);
  assert(cache_ != nullptr);
}

void PageRenderer::RegisterExact(std::string name, PageGenerator generator) {
  std::lock_guard<std::mutex> lock(mutex_);
  exact_[std::move(name)] = std::move(generator);
}

void PageRenderer::RegisterPrefix(std::string prefix, PageGenerator generator) {
  std::lock_guard<std::mutex> lock(mutex_);
  prefixes_[std::move(prefix)] = std::move(generator);
}

const PageGenerator* PageRenderer::FindGenerator(std::string_view page) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = exact_.find(std::string(page)); it != exact_.end()) {
    return &it->second;
  }
  // Longest matching prefix: scan candidates not past `page` in order.
  const PageGenerator* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, gen] : prefixes_) {
    if (page.starts_with(prefix) && prefix.size() >= best_len) {
      best = &gen;
      best_len = prefix.size();
    }
  }
  return best;
}

bool PageRenderer::CanGenerate(std::string_view page) const {
  return FindGenerator(page) != nullptr;
}

Result<std::string> PageRenderer::RenderAndCache(std::string_view page) {
  RenderState state;
  return RenderInternal(page, /*store=*/true, state);
}

Result<std::string> PageRenderer::RenderOnly(std::string_view page) {
  RenderState state;
  return RenderInternal(page, /*store=*/false, state);
}

Result<std::string> PageRenderer::RenderInternal(std::string_view page,
                                                 bool store,
                                                 RenderState& state) {
  const std::string page_name(page);
  if (std::find(state.stack.begin(), state.stack.end(), page_name) !=
      state.stack.end()) {
    return FailedPreconditionError("fragment include cycle at " + page_name);
  }
  const PageGenerator* generator = FindGenerator(page);
  if (generator == nullptr) {
    return NotFoundError("no generator for " + page_name);
  }

  state.stack.push_back(page_name);

  DependencyRecorder recorder;
  std::vector<std::string> fragments_used;
  uint64_t fragment_hits = 0;

  // Fragments come from the cache when present; otherwise they are rendered
  // (and cached) recursively, sharing this render's cycle-detection stack.
  FragmentResolver resolver =
      [&](std::string_view fragment) -> Result<std::string> {
    fragments_used.emplace_back(fragment);
    if (auto cached = cache_->Peek(fragment)) {
      ++fragment_hits;
      return cached->body;
    }
    return RenderInternal(fragment, /*store=*/true, state);
  };

  RenderRequest request{page, recorder, resolver};
  Result<std::string> body = (*generator)(request);

  state.stack.pop_back();

  if (!body.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.generator_errors;
    return body;
  }

  // Sync the ODG: this page's in-edges become exactly what this render
  // observed. Kind widening in EnsureNode turns a page that others embed
  // into kBoth automatically.
  const odg::NodeId page_node =
      graph_->EnsureNode(page_name, odg::NodeKind::kObject);
  graph_->ClearInEdges(page_node);
  for (const auto& [dep, weight] : recorder.data_deps()) {
    const odg::NodeId data_node =
        graph_->EnsureNode(dep, odg::NodeKind::kUnderlyingData);
    (void)graph_->AddDependence(data_node, page_node, weight);
  }
  for (const std::string& frag : fragments_used) {
    const odg::NodeId frag_node =
        graph_->EnsureNode(frag, odg::NodeKind::kBoth);
    (void)graph_->AddDependence(frag_node, page_node);
  }

  if (store) {
    cache_->Put(page_name, body.value());
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.pages_rendered;
    stats_.fragment_cache_hits += fragment_hits;
  }
  return body;
}

RendererStats PageRenderer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace nagano::pagegen
