#include "pagegen/renderer.h"

#include <algorithm>
#include <cassert>

namespace nagano::pagegen {

PageRenderer::PageRenderer(odg::ObjectDependenceGraph* graph,
                           cache::ObjectCache* cache,
                           const metrics::Options& metrics_options)
    : graph_(graph), cache_(cache) {
  assert(graph_ != nullptr);
  assert(cache_ != nullptr);
  const auto scope = metrics::Scope::Resolve(metrics_options, "renderer");
  pages_rendered_ = scope.GetCounter("nagano_renderer_pages_rendered_total",
                                     "successful page/fragment renders");
  fragment_cache_hits_ =
      scope.GetCounter("nagano_renderer_fragment_cache_hits_total",
                       "fragments spliced straight from cache");
  generator_errors_ = scope.GetCounter("nagano_renderer_generator_errors_total",
                                       "generator invocations that failed");
}

void PageRenderer::RegisterExact(std::string name, PageGenerator generator) {
  std::unique_lock lock(registry_mutex_);
  exact_[std::move(name)] = std::move(generator);
}

void PageRenderer::RegisterPrefix(std::string prefix, PageGenerator generator) {
  std::unique_lock lock(registry_mutex_);
  prefixes_[std::move(prefix)] = std::move(generator);
}

const PageGenerator* PageRenderer::FindGenerator(std::string_view page) const {
  // std::map node pointers are stable and generators are never erased, so
  // the returned pointer outlives the lock.
  std::shared_lock lock(registry_mutex_);
  if (auto it = exact_.find(std::string(page)); it != exact_.end()) {
    return &it->second;
  }
  // Longest matching prefix: scan candidates not past `page` in order.
  const PageGenerator* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, gen] : prefixes_) {
    if (page.starts_with(prefix) && prefix.size() >= best_len) {
      best = &gen;
      best_len = prefix.size();
    }
  }
  return best;
}

bool PageRenderer::CanGenerate(std::string_view page) const {
  return FindGenerator(page) != nullptr;
}

Result<std::string> PageRenderer::RenderAndCache(std::string_view page) {
  RenderState state;
  return RenderInternal(page, /*store=*/true, state);
}

Result<std::string> PageRenderer::RenderOnly(std::string_view page) {
  RenderState state;
  return RenderInternal(page, /*store=*/false, state);
}

Result<std::string> PageRenderer::RenderInternal(std::string_view page,
                                                 bool store,
                                                 RenderState& state) {
  const std::string page_name(page);
  if (std::find(state.stack.begin(), state.stack.end(), page_name) !=
      state.stack.end()) {
    return FailedPreconditionError("fragment include cycle at " + page_name);
  }
  const PageGenerator* generator = FindGenerator(page);
  if (generator == nullptr) {
    return NotFoundError("no generator for " + page_name);
  }

  state.stack.push_back(page_name);

  DependencyRecorder recorder;
  std::vector<std::string> fragments_used;
  uint64_t fragment_hits = 0;

  // Fragments come from the cache when present; otherwise they are rendered
  // (and cached) recursively, sharing this render's cycle-detection stack.
  FragmentResolver resolver =
      [&](std::string_view fragment) -> Result<std::string> {
    fragments_used.emplace_back(fragment);
    if (auto cached = cache_->Peek(fragment)) {
      ++fragment_hits;
      return cached->body;
    }
    return RenderInternal(fragment, /*store=*/true, state);
  };

  RenderRequest request{page, recorder, resolver};
  Result<std::string> body = (*generator)(request);

  state.stack.pop_back();

  if (!body.ok()) {
    generator_errors_->Increment();
    return body;
  }

  // Sync the ODG: this page's in-edges become exactly what this render
  // observed. Kind widening in EnsureNode turns a page that others embed
  // into kBoth automatically. SetInEdges short-circuits on the read lock
  // when the dependencies are unchanged — the steady state of re-renders —
  // so parallel workers do not serialize on the graph's write lock.
  const odg::NodeId page_node =
      graph_->EnsureNode(page_name, odg::NodeKind::kObject);
  std::vector<odg::Edge> sources;
  sources.reserve(recorder.data_deps().size() + fragments_used.size());
  for (const auto& [dep, weight] : recorder.data_deps()) {
    sources.push_back(odg::Edge{
        graph_->EnsureNode(dep, odg::NodeKind::kUnderlyingData), weight});
  }
  for (const std::string& frag : fragments_used) {
    sources.push_back(
        odg::Edge{graph_->EnsureNode(frag, odg::NodeKind::kBoth), 1.0});
  }
  graph_->SetInEdges(page_node, std::move(sources));

  if (store) {
    cache_->Put(page_name, body.value());
  }

  pages_rendered_->Increment();
  if (fragment_hits != 0) fragment_cache_hits_->Increment(fragment_hits);
  return body;
}

RendererStats PageRenderer::stats() const {
  RendererStats out;
  out.pages_rendered = pages_rendered_->value();
  out.fragment_cache_hits = fragment_cache_hits_->value();
  out.generator_errors = generator_errors_->value();
  return out;
}

}  // namespace nagano::pagegen
