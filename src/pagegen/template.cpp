#include "pagegen/template.h"

#include <cassert>
#include <cstdio>

namespace nagano::pagegen {

TemplateContext::Slot& TemplateContext::SlotFor(std::string key) {
  for (auto& s : slots_) {
    if (s.key == key) return s;
  }
  slots_.push_back(Slot{std::move(key), {}, {}, false});
  return slots_.back();
}

TemplateContext& TemplateContext::Set(std::string key, std::string value) {
  Slot& s = SlotFor(std::move(key));
  s.str = std::move(value);
  s.list.clear();
  s.is_list = false;
  return *this;
}

TemplateContext& TemplateContext::Set(std::string key, int64_t value) {
  return Set(std::move(key), std::to_string(value));
}

TemplateContext& TemplateContext::Set(std::string key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return Set(std::move(key), std::string(buf));
}

TemplateContext& TemplateContext::SetList(std::string key,
                                          std::vector<TemplateContext> items) {
  Slot& s = SlotFor(std::move(key));
  s.list = std::move(items);
  s.str.clear();
  s.is_list = true;
  return *this;
}

const std::string* TemplateContext::GetString(std::string_view key) const {
  for (const auto& s : slots_) {
    if (s.key == key && !s.is_list) return &s.str;
  }
  return nullptr;
}

const std::vector<TemplateContext>* TemplateContext::GetList(
    std::string_view key) const {
  for (const auto& s : slots_) {
    if (s.key == key && s.is_list) return &s.list;
  }
  return nullptr;
}

std::string HtmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

}  // namespace

class TemplateParser {
 public:
  explicit TemplateParser(std::string_view source) : src_(source) {}

  Result<std::vector<CompiledTemplate::Node>> Parse() {
    std::vector<CompiledTemplate::Node> roots;
    Status s = ParseNodes(roots, /*section=*/"");
    if (!s.ok()) return s;
    if (pos_ != src_.size()) {
      return InvalidArgumentError("unexpected {{/" + pending_close_ + "}}");
    }
    return roots;
  }

 private:
  using Node = CompiledTemplate::Node;
  using NodeType = CompiledTemplate::NodeType;

  // Parses until EOF or a {{/section}} matching `section`. On a section
  // close, leaves pos_ after the close tag.
  Status ParseNodes(std::vector<Node>& out, const std::string& section) {
    while (pos_ < src_.size()) {
      const size_t open = src_.find("{{", pos_);
      if (open == std::string_view::npos) {
        AppendText(out, src_.substr(pos_));
        pos_ = src_.size();
        break;
      }
      AppendText(out, src_.substr(pos_, open - pos_));

      // Triple mustache?
      bool raw = false;
      size_t tag_start = open + 2;
      std::string_view closer = "}}";
      if (tag_start < src_.size() && src_[tag_start] == '{') {
        raw = true;
        ++tag_start;
        closer = "}}}";
      }
      const size_t close = src_.find(closer, tag_start);
      if (close == std::string_view::npos) {
        return InvalidArgumentError("unterminated tag at offset " +
                                    std::to_string(open));
      }
      std::string_view tag = Trim(src_.substr(tag_start, close - tag_start));
      pos_ = close + closer.size();

      if (raw) {
        if (tag.empty()) return InvalidArgumentError("empty raw tag");
        out.push_back(Node{NodeType::kRawVariable, std::string(tag), {}});
        continue;
      }
      if (tag.empty()) return InvalidArgumentError("empty tag");

      switch (tag.front()) {
        case '!':
          break;  // comment
        case '>': {
          const std::string name(Trim(tag.substr(1)));
          if (name.empty()) return InvalidArgumentError("empty fragment name");
          out.push_back(Node{NodeType::kFragment, name, {}});
          break;
        }
        case '#':
        case '^': {
          const bool inverted = tag.front() == '^';
          const std::string name(Trim(tag.substr(1)));
          if (name.empty()) return InvalidArgumentError("empty section name");
          Node node{inverted ? NodeType::kInverted : NodeType::kSection, name, {}};
          Status s = ParseNodes(node.children, name);
          if (!s.ok()) return s;
          if (closed_section_ != name) {
            return InvalidArgumentError("section {{#" + name + "}} not closed");
          }
          closed_section_.clear();
          out.push_back(std::move(node));
          break;
        }
        case '/': {
          const std::string name(Trim(tag.substr(1)));
          if (section.empty() || name != section) {
            pending_close_ = name;
            // Rewind so the caller's caller sees the stray close.
            if (section.empty()) {
              return InvalidArgumentError("stray close tag {{/" + name + "}}");
            }
            return InvalidArgumentError("mismatched close tag {{/" + name +
                                        "}} inside {{#" + section + "}}");
          }
          closed_section_ = name;
          return Status::Ok();
        }
        default:
          out.push_back(Node{NodeType::kVariable, std::string(tag), {}});
      }
    }
    if (!section.empty()) {
      return InvalidArgumentError("section {{#" + section + "}} never closed");
    }
    return Status::Ok();
  }

  void AppendText(std::vector<Node>& out, std::string_view text) {
    if (text.empty()) return;
    if (!out.empty() && out.back().type == NodeType::kText) {
      out.back().text += text;
    } else {
      out.push_back(Node{NodeType::kText, std::string(text), {}});
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  std::string closed_section_;
  std::string pending_close_;
};

Result<CompiledTemplate> CompiledTemplate::Compile(std::string_view source) {
  TemplateParser parser(source);
  auto nodes = parser.Parse();
  if (!nodes.ok()) return nodes.status();
  CompiledTemplate t;
  t.roots_ = std::move(nodes).value();
  return t;
}

namespace {

const std::string* LookupString(
    const std::vector<const TemplateContext*>& scope, std::string_view key) {
  for (auto it = scope.rbegin(); it != scope.rend(); ++it) {
    if (const std::string* s = (*it)->GetString(key)) return s;
  }
  return nullptr;
}

const std::vector<TemplateContext>* LookupList(
    const std::vector<const TemplateContext*>& scope, std::string_view key) {
  for (auto it = scope.rbegin(); it != scope.rend(); ++it) {
    if (const auto* l = (*it)->GetList(key)) return l;
  }
  return nullptr;
}

}  // namespace

void CompiledTemplate::RenderNodes(
    const std::vector<Node>& nodes,
    const std::vector<const TemplateContext*>& scope,
    const FragmentResolver& fragments, RenderOutput& out) const {
  for (const Node& node : nodes) {
    switch (node.type) {
      case NodeType::kText:
        out.body += node.text;
        break;
      case NodeType::kVariable:
        if (const std::string* v = LookupString(scope, node.text)) {
          out.body += HtmlEscape(*v);
        }
        break;
      case NodeType::kRawVariable:
        if (const std::string* v = LookupString(scope, node.text)) {
          out.body += *v;
        }
        break;
      case NodeType::kSection: {
        if (const auto* list = LookupList(scope, node.text)) {
          for (const TemplateContext& item : *list) {
            auto inner = scope;
            inner.push_back(&item);
            RenderNodes(node.children, inner, fragments, out);
          }
        }
        break;
      }
      case NodeType::kInverted: {
        const auto* list = LookupList(scope, node.text);
        if (list == nullptr || list->empty()) {
          RenderNodes(node.children, scope, fragments, out);
        }
        break;
      }
      case NodeType::kFragment: {
        out.fragments_used.push_back(node.text);
        if (fragments) {
          Result<std::string> body = fragments(node.text);
          if (body.ok()) {
            out.body += body.value();
            break;
          }
        }
        out.missing_fragments.push_back(node.text);
        out.body += "<!-- missing fragment: " + HtmlEscape(node.text) + " -->";
        break;
      }
    }
  }
}

RenderOutput CompiledTemplate::Render(const TemplateContext& context,
                                      const FragmentResolver& fragments) const {
  RenderOutput out;
  RenderNodes(roots_, {&context}, fragments, out);
  return out;
}

size_t CompiledTemplate::node_count() const {
  size_t n = 0;
  // Iterative count to avoid exposing Node publicly.
  std::vector<const std::vector<Node>*> stack{&roots_};
  while (!stack.empty()) {
    const auto* nodes = stack.back();
    stack.pop_back();
    n += nodes->size();
    for (const Node& node : *nodes) {
      if (!node.children.empty()) stack.push_back(&node.children);
    }
  }
  return n;
}

}  // namespace nagano::pagegen
