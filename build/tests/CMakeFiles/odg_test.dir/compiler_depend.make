# Empty compiler generated dependencies file for odg_test.
# This may be replaced when dependencies are built.
