file(REMOVE_RECURSE
  "CMakeFiles/odg_test.dir/odg_test.cpp.o"
  "CMakeFiles/odg_test.dir/odg_test.cpp.o.d"
  "odg_test"
  "odg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
