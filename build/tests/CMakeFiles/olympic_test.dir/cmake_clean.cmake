file(REMOVE_RECURSE
  "CMakeFiles/olympic_test.dir/olympic_test.cpp.o"
  "CMakeFiles/olympic_test.dir/olympic_test.cpp.o.d"
  "olympic_test"
  "olympic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olympic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
