# Empty compiler generated dependencies file for olympic_test.
# This may be replaced when dependencies are built.
