# Empty dependencies file for access_log_test.
# This may be replaced when dependencies are built.
