file(REMOVE_RECURSE
  "CMakeFiles/access_log_test.dir/access_log_test.cpp.o"
  "CMakeFiles/access_log_test.dir/access_log_test.cpp.o.d"
  "access_log_test"
  "access_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
