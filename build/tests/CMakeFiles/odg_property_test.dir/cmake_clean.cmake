file(REMOVE_RECURSE
  "CMakeFiles/odg_property_test.dir/odg_property_test.cpp.o"
  "CMakeFiles/odg_property_test.dir/odg_property_test.cpp.o.d"
  "odg_property_test"
  "odg_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odg_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
