# Empty compiler generated dependencies file for odg_property_test.
# This may be replaced when dependencies are built.
