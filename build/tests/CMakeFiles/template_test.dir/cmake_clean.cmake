file(REMOVE_RECURSE
  "CMakeFiles/template_test.dir/template_test.cpp.o"
  "CMakeFiles/template_test.dir/template_test.cpp.o.d"
  "template_test"
  "template_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
