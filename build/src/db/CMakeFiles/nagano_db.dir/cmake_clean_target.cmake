file(REMOVE_RECURSE
  "libnagano_db.a"
)
