file(REMOVE_RECURSE
  "CMakeFiles/nagano_db.dir/database.cpp.o"
  "CMakeFiles/nagano_db.dir/database.cpp.o.d"
  "libnagano_db.a"
  "libnagano_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
