# Empty compiler generated dependencies file for nagano_db.
# This may be replaced when dependencies are built.
