file(REMOVE_RECURSE
  "CMakeFiles/nagano_cache.dir/fleet.cpp.o"
  "CMakeFiles/nagano_cache.dir/fleet.cpp.o.d"
  "CMakeFiles/nagano_cache.dir/object_cache.cpp.o"
  "CMakeFiles/nagano_cache.dir/object_cache.cpp.o.d"
  "libnagano_cache.a"
  "libnagano_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
