# Empty dependencies file for nagano_cache.
# This may be replaced when dependencies are built.
