file(REMOVE_RECURSE
  "libnagano_cache.a"
)
