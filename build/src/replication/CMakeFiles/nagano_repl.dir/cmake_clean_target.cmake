file(REMOVE_RECURSE
  "libnagano_repl.a"
)
