file(REMOVE_RECURSE
  "CMakeFiles/nagano_repl.dir/replication.cpp.o"
  "CMakeFiles/nagano_repl.dir/replication.cpp.o.d"
  "libnagano_repl.a"
  "libnagano_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
