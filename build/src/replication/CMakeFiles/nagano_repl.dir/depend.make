# Empty dependencies file for nagano_repl.
# This may be replaced when dependencies are built.
