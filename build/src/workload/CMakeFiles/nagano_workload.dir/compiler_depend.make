# Empty compiler generated dependencies file for nagano_workload.
# This may be replaced when dependencies are built.
