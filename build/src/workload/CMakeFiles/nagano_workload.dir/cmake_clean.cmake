file(REMOVE_RECURSE
  "CMakeFiles/nagano_workload.dir/feed.cpp.o"
  "CMakeFiles/nagano_workload.dir/feed.cpp.o.d"
  "CMakeFiles/nagano_workload.dir/navigation.cpp.o"
  "CMakeFiles/nagano_workload.dir/navigation.cpp.o.d"
  "CMakeFiles/nagano_workload.dir/profiles.cpp.o"
  "CMakeFiles/nagano_workload.dir/profiles.cpp.o.d"
  "CMakeFiles/nagano_workload.dir/sampler.cpp.o"
  "CMakeFiles/nagano_workload.dir/sampler.cpp.o.d"
  "libnagano_workload.a"
  "libnagano_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
