file(REMOVE_RECURSE
  "libnagano_workload.a"
)
