file(REMOVE_RECURSE
  "CMakeFiles/nagano_cluster.dir/fabric.cpp.o"
  "CMakeFiles/nagano_cluster.dir/fabric.cpp.o.d"
  "CMakeFiles/nagano_cluster.dir/net.cpp.o"
  "CMakeFiles/nagano_cluster.dir/net.cpp.o.d"
  "CMakeFiles/nagano_cluster.dir/sim.cpp.o"
  "CMakeFiles/nagano_cluster.dir/sim.cpp.o.d"
  "libnagano_cluster.a"
  "libnagano_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
