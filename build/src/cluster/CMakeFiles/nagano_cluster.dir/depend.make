# Empty dependencies file for nagano_cluster.
# This may be replaced when dependencies are built.
