file(REMOVE_RECURSE
  "libnagano_cluster.a"
)
