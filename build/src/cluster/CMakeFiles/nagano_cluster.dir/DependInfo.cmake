
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/fabric.cpp" "src/cluster/CMakeFiles/nagano_cluster.dir/fabric.cpp.o" "gcc" "src/cluster/CMakeFiles/nagano_cluster.dir/fabric.cpp.o.d"
  "/root/repo/src/cluster/net.cpp" "src/cluster/CMakeFiles/nagano_cluster.dir/net.cpp.o" "gcc" "src/cluster/CMakeFiles/nagano_cluster.dir/net.cpp.o.d"
  "/root/repo/src/cluster/sim.cpp" "src/cluster/CMakeFiles/nagano_cluster.dir/sim.cpp.o" "gcc" "src/cluster/CMakeFiles/nagano_cluster.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nagano_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
