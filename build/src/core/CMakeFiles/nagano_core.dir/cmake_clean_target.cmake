file(REMOVE_RECURSE
  "libnagano_core.a"
)
