# Empty compiler generated dependencies file for nagano_core.
# This may be replaced when dependencies are built.
