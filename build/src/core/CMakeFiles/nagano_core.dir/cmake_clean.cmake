file(REMOVE_RECURSE
  "CMakeFiles/nagano_core.dir/serving_site.cpp.o"
  "CMakeFiles/nagano_core.dir/serving_site.cpp.o.d"
  "libnagano_core.a"
  "libnagano_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
