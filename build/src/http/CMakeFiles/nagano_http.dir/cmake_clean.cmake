file(REMOVE_RECURSE
  "CMakeFiles/nagano_http.dir/client.cpp.o"
  "CMakeFiles/nagano_http.dir/client.cpp.o.d"
  "CMakeFiles/nagano_http.dir/message.cpp.o"
  "CMakeFiles/nagano_http.dir/message.cpp.o.d"
  "CMakeFiles/nagano_http.dir/server.cpp.o"
  "CMakeFiles/nagano_http.dir/server.cpp.o.d"
  "libnagano_http.a"
  "libnagano_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
