file(REMOVE_RECURSE
  "libnagano_http.a"
)
