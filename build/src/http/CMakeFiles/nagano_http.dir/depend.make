# Empty dependencies file for nagano_http.
# This may be replaced when dependencies are built.
