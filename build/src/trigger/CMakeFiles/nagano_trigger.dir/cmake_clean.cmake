file(REMOVE_RECURSE
  "CMakeFiles/nagano_trigger.dir/trigger_monitor.cpp.o"
  "CMakeFiles/nagano_trigger.dir/trigger_monitor.cpp.o.d"
  "libnagano_trigger.a"
  "libnagano_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
