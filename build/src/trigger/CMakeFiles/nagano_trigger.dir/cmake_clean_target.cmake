file(REMOVE_RECURSE
  "libnagano_trigger.a"
)
