# Empty compiler generated dependencies file for nagano_trigger.
# This may be replaced when dependencies are built.
