
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cpp" "src/common/CMakeFiles/nagano_common.dir/clock.cpp.o" "gcc" "src/common/CMakeFiles/nagano_common.dir/clock.cpp.o.d"
  "/root/repo/src/common/intern.cpp" "src/common/CMakeFiles/nagano_common.dir/intern.cpp.o" "gcc" "src/common/CMakeFiles/nagano_common.dir/intern.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/nagano_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/nagano_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/result.cpp" "src/common/CMakeFiles/nagano_common.dir/result.cpp.o" "gcc" "src/common/CMakeFiles/nagano_common.dir/result.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/nagano_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/nagano_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/nagano_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/nagano_common.dir/stats.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/common/CMakeFiles/nagano_common.dir/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/nagano_common.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
