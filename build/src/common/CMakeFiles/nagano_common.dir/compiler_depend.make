# Empty compiler generated dependencies file for nagano_common.
# This may be replaced when dependencies are built.
