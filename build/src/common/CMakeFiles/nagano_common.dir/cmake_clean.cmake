file(REMOVE_RECURSE
  "CMakeFiles/nagano_common.dir/clock.cpp.o"
  "CMakeFiles/nagano_common.dir/clock.cpp.o.d"
  "CMakeFiles/nagano_common.dir/intern.cpp.o"
  "CMakeFiles/nagano_common.dir/intern.cpp.o.d"
  "CMakeFiles/nagano_common.dir/logging.cpp.o"
  "CMakeFiles/nagano_common.dir/logging.cpp.o.d"
  "CMakeFiles/nagano_common.dir/result.cpp.o"
  "CMakeFiles/nagano_common.dir/result.cpp.o.d"
  "CMakeFiles/nagano_common.dir/rng.cpp.o"
  "CMakeFiles/nagano_common.dir/rng.cpp.o.d"
  "CMakeFiles/nagano_common.dir/stats.cpp.o"
  "CMakeFiles/nagano_common.dir/stats.cpp.o.d"
  "CMakeFiles/nagano_common.dir/thread_pool.cpp.o"
  "CMakeFiles/nagano_common.dir/thread_pool.cpp.o.d"
  "libnagano_common.a"
  "libnagano_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
