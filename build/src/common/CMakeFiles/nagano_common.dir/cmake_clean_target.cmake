file(REMOVE_RECURSE
  "libnagano_common.a"
)
