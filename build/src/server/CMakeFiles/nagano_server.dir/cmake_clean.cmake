file(REMOVE_RECURSE
  "CMakeFiles/nagano_server.dir/access_log.cpp.o"
  "CMakeFiles/nagano_server.dir/access_log.cpp.o.d"
  "CMakeFiles/nagano_server.dir/serving.cpp.o"
  "CMakeFiles/nagano_server.dir/serving.cpp.o.d"
  "libnagano_server.a"
  "libnagano_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
