file(REMOVE_RECURSE
  "libnagano_server.a"
)
