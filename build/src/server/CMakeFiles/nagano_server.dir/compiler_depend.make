# Empty compiler generated dependencies file for nagano_server.
# This may be replaced when dependencies are built.
