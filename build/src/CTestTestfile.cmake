# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("odg")
subdirs("cache")
subdirs("db")
subdirs("pagegen")
subdirs("trigger")
subdirs("http")
subdirs("server")
subdirs("replication")
subdirs("workload")
subdirs("cluster")
subdirs("core")
