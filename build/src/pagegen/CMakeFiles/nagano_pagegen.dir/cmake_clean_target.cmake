file(REMOVE_RECURSE
  "libnagano_pagegen.a"
)
