file(REMOVE_RECURSE
  "CMakeFiles/nagano_pagegen.dir/olympic.cpp.o"
  "CMakeFiles/nagano_pagegen.dir/olympic.cpp.o.d"
  "CMakeFiles/nagano_pagegen.dir/renderer.cpp.o"
  "CMakeFiles/nagano_pagegen.dir/renderer.cpp.o.d"
  "CMakeFiles/nagano_pagegen.dir/template.cpp.o"
  "CMakeFiles/nagano_pagegen.dir/template.cpp.o.d"
  "libnagano_pagegen.a"
  "libnagano_pagegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_pagegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
