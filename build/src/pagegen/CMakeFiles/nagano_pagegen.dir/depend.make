# Empty dependencies file for nagano_pagegen.
# This may be replaced when dependencies are built.
