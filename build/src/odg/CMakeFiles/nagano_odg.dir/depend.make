# Empty dependencies file for nagano_odg.
# This may be replaced when dependencies are built.
