
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/odg/dup.cpp" "src/odg/CMakeFiles/nagano_odg.dir/dup.cpp.o" "gcc" "src/odg/CMakeFiles/nagano_odg.dir/dup.cpp.o.d"
  "/root/repo/src/odg/graph.cpp" "src/odg/CMakeFiles/nagano_odg.dir/graph.cpp.o" "gcc" "src/odg/CMakeFiles/nagano_odg.dir/graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nagano_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
