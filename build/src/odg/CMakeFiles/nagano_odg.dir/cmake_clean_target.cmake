file(REMOVE_RECURSE
  "libnagano_odg.a"
)
