file(REMOVE_RECURSE
  "CMakeFiles/nagano_odg.dir/dup.cpp.o"
  "CMakeFiles/nagano_odg.dir/dup.cpp.o.d"
  "CMakeFiles/nagano_odg.dir/graph.cpp.o"
  "CMakeFiles/nagano_odg.dir/graph.cpp.o.d"
  "libnagano_odg.a"
  "libnagano_odg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nagano_odg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
