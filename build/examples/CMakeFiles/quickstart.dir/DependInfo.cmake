
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nagano_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trigger/CMakeFiles/nagano_trigger.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/nagano_server.dir/DependInfo.cmake"
  "/root/repo/build/src/pagegen/CMakeFiles/nagano_pagegen.dir/DependInfo.cmake"
  "/root/repo/build/src/odg/CMakeFiles/nagano_odg.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/nagano_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/nagano_db.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/nagano_http.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nagano_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
