# Empty dependencies file for replication_tour.
# This may be replaced when dependencies are built.
