file(REMOVE_RECURSE
  "CMakeFiles/replication_tour.dir/replication_tour.cpp.o"
  "CMakeFiles/replication_tour.dir/replication_tour.cpp.o.d"
  "replication_tour"
  "replication_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
