# Empty dependencies file for live_server.
# This may be replaced when dependencies are built.
