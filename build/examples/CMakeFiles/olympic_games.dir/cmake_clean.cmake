file(REMOVE_RECURSE
  "CMakeFiles/olympic_games.dir/olympic_games.cpp.o"
  "CMakeFiles/olympic_games.dir/olympic_games.cpp.o.d"
  "olympic_games"
  "olympic_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olympic_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
