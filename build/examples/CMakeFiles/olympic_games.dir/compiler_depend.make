# Empty compiler generated dependencies file for olympic_games.
# This may be replaced when dependencies are built.
