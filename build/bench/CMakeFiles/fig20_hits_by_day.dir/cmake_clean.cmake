file(REMOVE_RECURSE
  "CMakeFiles/fig20_hits_by_day.dir/fig20_hits_by_day.cpp.o"
  "CMakeFiles/fig20_hits_by_day.dir/fig20_hits_by_day.cpp.o.d"
  "fig20_hits_by_day"
  "fig20_hits_by_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_hits_by_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
