# Empty compiler generated dependencies file for fig20_hits_by_day.
# This may be replaced when dependencies are built.
