# Empty dependencies file for cgi_overhead.
# This may be replaced when dependencies are built.
