file(REMOVE_RECURSE
  "CMakeFiles/cgi_overhead.dir/cgi_overhead.cpp.o"
  "CMakeFiles/cgi_overhead.dir/cgi_overhead.cpp.o.d"
  "cgi_overhead"
  "cgi_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgi_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
