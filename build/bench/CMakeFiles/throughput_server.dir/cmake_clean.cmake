file(REMOVE_RECURSE
  "CMakeFiles/throughput_server.dir/throughput_server.cpp.o"
  "CMakeFiles/throughput_server.dir/throughput_server.cpp.o.d"
  "throughput_server"
  "throughput_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
