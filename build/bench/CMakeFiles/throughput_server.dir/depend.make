# Empty dependencies file for throughput_server.
# This may be replaced when dependencies are built.
