# Empty dependencies file for table2_response_usa.
# This may be replaced when dependencies are built.
