file(REMOVE_RECURSE
  "CMakeFiles/table2_response_usa.dir/table2_response_usa.cpp.o"
  "CMakeFiles/table2_response_usa.dir/table2_response_usa.cpp.o.d"
  "table2_response_usa"
  "table2_response_usa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_response_usa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
