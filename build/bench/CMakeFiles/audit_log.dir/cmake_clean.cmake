file(REMOVE_RECURSE
  "CMakeFiles/audit_log.dir/audit_log.cpp.o"
  "CMakeFiles/audit_log.dir/audit_log.cpp.o.d"
  "audit_log"
  "audit_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
