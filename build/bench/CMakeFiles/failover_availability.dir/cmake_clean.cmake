file(REMOVE_RECURSE
  "CMakeFiles/failover_availability.dir/failover_availability.cpp.o"
  "CMakeFiles/failover_availability.dir/failover_availability.cpp.o.d"
  "failover_availability"
  "failover_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
