# Empty dependencies file for failover_availability.
# This may be replaced when dependencies are built.
