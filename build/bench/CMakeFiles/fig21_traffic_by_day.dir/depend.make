# Empty dependencies file for fig21_traffic_by_day.
# This may be replaced when dependencies are built.
