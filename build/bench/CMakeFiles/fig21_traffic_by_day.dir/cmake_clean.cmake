file(REMOVE_RECURSE
  "CMakeFiles/fig21_traffic_by_day.dir/fig21_traffic_by_day.cpp.o"
  "CMakeFiles/fig21_traffic_by_day.dir/fig21_traffic_by_day.cpp.o.d"
  "fig21_traffic_by_day"
  "fig21_traffic_by_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_traffic_by_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
