file(REMOVE_RECURSE
  "CMakeFiles/update_latency.dir/update_latency.cpp.o"
  "CMakeFiles/update_latency.dir/update_latency.cpp.o.d"
  "update_latency"
  "update_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
