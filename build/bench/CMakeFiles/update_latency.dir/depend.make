# Empty dependencies file for update_latency.
# This may be replaced when dependencies are built.
