# Empty dependencies file for peak_minute.
# This may be replaced when dependencies are built.
