file(REMOVE_RECURSE
  "CMakeFiles/peak_minute.dir/peak_minute.cpp.o"
  "CMakeFiles/peak_minute.dir/peak_minute.cpp.o.d"
  "peak_minute"
  "peak_minute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peak_minute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
