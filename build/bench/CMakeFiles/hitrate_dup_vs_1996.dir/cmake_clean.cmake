file(REMOVE_RECURSE
  "CMakeFiles/hitrate_dup_vs_1996.dir/hitrate_dup_vs_1996.cpp.o"
  "CMakeFiles/hitrate_dup_vs_1996.dir/hitrate_dup_vs_1996.cpp.o.d"
  "hitrate_dup_vs_1996"
  "hitrate_dup_vs_1996.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hitrate_dup_vs_1996.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
