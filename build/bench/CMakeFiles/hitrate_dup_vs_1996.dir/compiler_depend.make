# Empty compiler generated dependencies file for hitrate_dup_vs_1996.
# This may be replaced when dependencies are built.
