# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hitrate_dup_vs_1996.
