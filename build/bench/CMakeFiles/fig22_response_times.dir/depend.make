# Empty dependencies file for fig22_response_times.
# This may be replaced when dependencies are built.
