file(REMOVE_RECURSE
  "CMakeFiles/fig22_response_times.dir/fig22_response_times.cpp.o"
  "CMakeFiles/fig22_response_times.dir/fig22_response_times.cpp.o.d"
  "fig22_response_times"
  "fig22_response_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_response_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
