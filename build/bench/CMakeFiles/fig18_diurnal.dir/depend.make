# Empty dependencies file for fig18_diurnal.
# This may be replaced when dependencies are built.
