file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_provisioning.dir/bandwidth_provisioning.cpp.o"
  "CMakeFiles/bandwidth_provisioning.dir/bandwidth_provisioning.cpp.o.d"
  "bandwidth_provisioning"
  "bandwidth_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
