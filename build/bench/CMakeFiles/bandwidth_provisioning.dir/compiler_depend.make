# Empty compiler generated dependencies file for bandwidth_provisioning.
# This may be replaced when dependencies are built.
