file(REMOVE_RECURSE
  "CMakeFiles/fig23_geo_breakdown.dir/fig23_geo_breakdown.cpp.o"
  "CMakeFiles/fig23_geo_breakdown.dir/fig23_geo_breakdown.cpp.o.d"
  "fig23_geo_breakdown"
  "fig23_geo_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_geo_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
