# Empty dependencies file for games_e2e.
# This may be replaced when dependencies are built.
