file(REMOVE_RECURSE
  "CMakeFiles/games_e2e.dir/games_e2e.cpp.o"
  "CMakeFiles/games_e2e.dir/games_e2e.cpp.o.d"
  "games_e2e"
  "games_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/games_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
