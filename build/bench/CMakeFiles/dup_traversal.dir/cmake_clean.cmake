file(REMOVE_RECURSE
  "CMakeFiles/dup_traversal.dir/dup_traversal.cpp.o"
  "CMakeFiles/dup_traversal.dir/dup_traversal.cpp.o.d"
  "dup_traversal"
  "dup_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dup_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
