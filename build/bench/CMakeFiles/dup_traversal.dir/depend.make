# Empty dependencies file for dup_traversal.
# This may be replaced when dependencies are built.
