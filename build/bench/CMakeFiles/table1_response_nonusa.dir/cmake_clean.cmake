file(REMOVE_RECURSE
  "CMakeFiles/table1_response_nonusa.dir/table1_response_nonusa.cpp.o"
  "CMakeFiles/table1_response_nonusa.dir/table1_response_nonusa.cpp.o.d"
  "table1_response_nonusa"
  "table1_response_nonusa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_response_nonusa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
