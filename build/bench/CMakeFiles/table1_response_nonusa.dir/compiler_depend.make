# Empty compiler generated dependencies file for table1_response_nonusa.
# This may be replaced when dependencies are built.
