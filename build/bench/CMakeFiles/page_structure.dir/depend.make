# Empty dependencies file for page_structure.
# This may be replaced when dependencies are built.
