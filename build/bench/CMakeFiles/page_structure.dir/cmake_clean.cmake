file(REMOVE_RECURSE
  "CMakeFiles/page_structure.dir/page_structure.cpp.o"
  "CMakeFiles/page_structure.dir/page_structure.cpp.o.d"
  "page_structure"
  "page_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
