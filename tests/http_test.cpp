#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/object_cache.h"
#include "http/client.h"
#include "http/message.h"
#include "http/server.h"
#include "odg/graph.h"
#include "pagegen/renderer.h"
#include "server/serving.h"

namespace nagano::http {
namespace {

// --- message model -------------------------------------------------------------

TEST(HttpMessageTest, RequestPathStripsQuery) {
  HttpRequest req;
  req.target = "/day/7?lang=en&x=1";
  EXPECT_EQ(req.Path(), "/day/7");
  req.target = "/plain";
  EXPECT_EQ(req.Path(), "/plain");
}

TEST(HttpMessageTest, QueryParam) {
  HttpRequest req;
  req.target = "/p?lang=en&day=7&flag";
  EXPECT_EQ(req.QueryParam("lang"), "en");
  EXPECT_EQ(req.QueryParam("day"), "7");
  EXPECT_EQ(req.QueryParam("flag"), "");
  EXPECT_FALSE(req.QueryParam("ghost").has_value());
}

TEST(HttpMessageTest, KeepAliveDefaults) {
  HttpRequest req;
  req.version = "HTTP/1.1";
  EXPECT_TRUE(req.KeepAlive());
  req.version = "HTTP/1.0";
  EXPECT_FALSE(req.KeepAlive());
  req.headers["Connection"] = "keep-alive";
  EXPECT_TRUE(req.KeepAlive());
  req.version = "HTTP/1.1";
  req.headers["Connection"] = "close";
  EXPECT_FALSE(req.KeepAlive());
}

TEST(HttpMessageTest, HeaderMapCaseInsensitive) {
  HttpRequest req;
  req.headers["content-type"] = "text/html";
  EXPECT_EQ(req.headers.count("Content-Type"), 1u);
  EXPECT_EQ(req.headers.at("CONTENT-TYPE"), "text/html");
}

TEST(HttpMessageTest, ResponseFactories) {
  const auto ok = HttpResponse::Ok("body");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "body");
  EXPECT_EQ(HttpResponse::NotFound().status, 404);
  EXPECT_EQ(HttpResponse::ServerError().status, 500);
  EXPECT_EQ(HttpResponse::ServiceUnavailable().status, 503);
}

TEST(HttpMessageTest, SerializeSetsContentLength) {
  auto r = HttpResponse::Ok("12345");
  const std::string wire = r.Serialize();
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n12345"));
}

// --- zero-copy serialization -----------------------------------------------------

TEST(HttpMessageTest, SerializeUsesBodyRef) {
  HttpResponse r;
  r.body_ref = std::make_shared<const std::string>("shared-entity-bytes");
  const std::string wire = r.Serialize();
  EXPECT_NE(wire.find("Content-Length: 19\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\nshared-entity-bytes"));
  EXPECT_EQ(r.BodySize(), 19u);
  EXPECT_EQ(&r.BodyView(), r.body_ref.get());
}

TEST(HttpMessageTest, SerializeUsesHeaderRefVerbatim) {
  HttpResponse r;
  r.body_ref = std::make_shared<const std::string>("abc");
  r.header_ref = std::make_shared<const std::string>(
      "Content-Length: 3\r\nX-Nagano-Version: 9\r\n");
  const std::string wire = r.Serialize();
  // Exactly one Content-Length — the one the prefix carries.
  EXPECT_EQ(wire.find("Content-Length: 3\r\n"),
            wire.rfind("Content-Length:"));
  EXPECT_NE(wire.find("X-Nagano-Version: 9\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n\r\nabc"));
}

TEST(HttpMessageTest, SerializeHeadersSplicesExtraLines) {
  auto r = HttpResponse::Ok("hello");
  std::string head;
  r.SerializeHeaders(head, "Date: Thu, 06 Aug 2026 00:00:00 GMT\r\n");
  EXPECT_TRUE(head.starts_with(
      "HTTP/1.1 200 OK\r\nDate: Thu, 06 Aug 2026 00:00:00 GMT\r\n"));
  EXPECT_NE(head.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_TRUE(head.ends_with("\r\n\r\n"));
}

TEST(HttpMessageTest, ReserializeDoesNotDuplicateContentLength) {
  // A parsed response carries Content-Length in its header map; writing it
  // back out must not emit a second copy.
  ResponseParser parser;
  ASSERT_TRUE(
      parser.Feed("HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody").ok());
  auto resp = parser.Next();
  ASSERT_TRUE(resp.has_value());
  const std::string wire = resp->Serialize();
  EXPECT_EQ(wire.find("Content-Length:"), wire.rfind("Content-Length:"));
  EXPECT_TRUE(wire.ends_with("\r\nbody"));
}

// --- parser ---------------------------------------------------------------------

TEST(RequestParserTest, ParsesSimpleGet) {
  RequestParser parser;
  ASSERT_TRUE(parser.Feed("GET /day/7 HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  auto req = parser.Next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/day/7");
  EXPECT_EQ(req->version, "HTTP/1.1");
  EXPECT_EQ(req->headers.at("Host"), "x");
  EXPECT_FALSE(parser.Next().has_value());
}

TEST(RequestParserTest, ParsesBodyByContentLength) {
  RequestParser parser;
  ASSERT_TRUE(
      parser.Feed("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").ok());
  auto req = parser.Next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->body, "hello");
}

TEST(RequestParserTest, IncrementalFeed) {
  RequestParser parser;
  const std::string wire = "GET /a HTTP/1.1\r\nHost: h\r\n\r\n";
  for (char c : wire) {
    ASSERT_TRUE(parser.Feed(std::string_view(&c, 1)).ok());
  }
  auto req = parser.Next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->target, "/a");
}

TEST(RequestParserTest, PipelinedRequests) {
  RequestParser parser;
  ASSERT_TRUE(parser
                  .Feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"
                        "GET /c HTTP/1.1\r\n\r\n")
                  .ok());
  EXPECT_EQ(parser.Next()->target, "/a");
  EXPECT_EQ(parser.Next()->target, "/b");
  EXPECT_EQ(parser.Next()->target, "/c");
  EXPECT_FALSE(parser.Next().has_value());
}

TEST(RequestParserTest, IncompleteBodyWaits) {
  RequestParser parser;
  ASSERT_TRUE(
      parser.Feed("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhel").ok());
  EXPECT_FALSE(parser.Next().has_value());
  ASSERT_TRUE(parser.Feed("lo world").ok());
  EXPECT_EQ(parser.Next()->body, std::string("hello world").substr(0, 10));
}

TEST(RequestParserTest, MalformedStartLine) {
  RequestParser parser;
  EXPECT_FALSE(parser.Feed("GARBAGE\r\n\r\n").ok());
}

TEST(RequestParserTest, MissingVersionRejected) {
  RequestParser parser;
  EXPECT_FALSE(parser.Feed("GET /x\r\n\r\n").ok());
}

TEST(RequestParserTest, BadVersionRejected) {
  RequestParser parser;
  EXPECT_FALSE(parser.Feed("GET /x SMTP/1.0\r\n\r\n").ok());
}

TEST(RequestParserTest, MalformedHeaderRejected) {
  RequestParser parser;
  EXPECT_FALSE(parser.Feed("GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n").ok());
  RequestParser parser2;
  EXPECT_FALSE(parser2.Feed("GET /x HTTP/1.1\r\n: empty\r\n\r\n").ok());
  RequestParser parser3;
  EXPECT_FALSE(
      parser3.Feed("GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n").ok());
}

TEST(RequestParserTest, BadContentLengthRejected) {
  RequestParser parser;
  EXPECT_FALSE(
      parser.Feed("POST /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n").ok());
}

TEST(RequestParserTest, OversizedHeaderRejected) {
  RequestParser parser;
  std::string huge = "GET /x HTTP/1.1\r\nX-Big: ";
  huge.append(RequestParser::kMaxHeaderBytes, 'a');
  EXPECT_FALSE(parser.Feed(huge).ok());
}

TEST(RequestParserTest, HeaderValueTrimmed) {
  RequestParser parser;
  ASSERT_TRUE(parser.Feed("GET /x HTTP/1.1\r\nHost:   spaced   \r\n\r\n").ok());
  EXPECT_EQ(parser.Next()->headers.at("Host"), "spaced");
}

TEST(ResponseParserTest, ParsesResponse) {
  ResponseParser parser;
  ASSERT_TRUE(parser
                  .Feed("HTTP/1.1 404 Not Found\r\nContent-Length: 4\r\n"
                        "\r\ngone")
                  .ok());
  auto resp = parser.Next();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
  EXPECT_EQ(resp->reason, "Not Found");
  EXPECT_EQ(resp->body, "gone");
}

TEST(ResponseParserTest, BadStatusRejected) {
  ResponseParser parser;
  EXPECT_FALSE(parser.Feed("HTTP/1.1 9999 Weird\r\n\r\n").ok());
  ResponseParser parser2;
  EXPECT_FALSE(parser2.Feed("HTTP/1.1 abc Oops\r\n\r\n").ok());
}

// Round-trip property: serialize then parse reproduces the message.
class RoundtripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundtripTest, RequestSurvivesWire) {
  HttpRequest req;
  req.method = GetParam() % 2 ? "GET" : "POST";
  req.target = "/page/" + std::to_string(GetParam());
  req.headers["Host"] = "nagano.olympic.org";
  req.headers["X-Trace"] = std::to_string(GetParam() * 7);
  if (req.method == "POST") req.body = std::string(GetParam() * 10, 'b');

  RequestParser parser;
  ASSERT_TRUE(parser.Feed(req.Serialize()).ok());
  auto out = parser.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->method, req.method);
  EXPECT_EQ(out->target, req.target);
  EXPECT_EQ(out->body, req.body);
  EXPECT_EQ(out->headers.at("Host"), "nagano.olympic.org");
}

TEST_P(RoundtripTest, ResponseSurvivesWire) {
  HttpResponse resp;
  resp.status = 200 + GetParam();
  resp.reason = "Custom Reason";
  resp.body = std::string(GetParam() * 100, 'x');
  resp.headers["X-Cache"] = "HIT";

  ResponseParser parser;
  ASSERT_TRUE(parser.Feed(resp.Serialize()).ok());
  auto out = parser.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, resp.status);
  EXPECT_EQ(out->reason, "Custom Reason");
  EXPECT_EQ(out->body, resp.body);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoundtripTest, ::testing::Values(0, 1, 3, 17, 64));

// --- live server ---------------------------------------------------------------------

class LiveServerTest : public ::testing::Test {
 protected:
  void StartEcho() {
    server_ = std::make_unique<HttpServer>([](const HttpRequest& req) {
      if (req.Path() == "/hello") return HttpResponse::Ok("world");
      if (req.Path() == "/echo") return HttpResponse::Ok(req.body);
      return HttpResponse::NotFound();
    });
    ASSERT_TRUE(server_->Start().ok());
  }
  std::unique_ptr<HttpServer> server_;
};

TEST_F(LiveServerTest, ServesGet) {
  StartEcho();
  auto resp = HttpClient::FetchOnce("127.0.0.1", server_->port(), "/hello");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_EQ(resp.value().body, "world");
}

TEST_F(LiveServerTest, Returns404) {
  StartEcho();
  auto resp = HttpClient::FetchOnce("127.0.0.1", server_->port(), "/ghost");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, 404);
}

TEST_F(LiveServerTest, KeepAliveServesManyOnOneConnection) {
  StartEcho();
  HttpClient client("127.0.0.1", server_->port());
  for (int i = 0; i < 20; ++i) {
    auto resp = client.Get("/hello");
    ASSERT_TRUE(resp.ok()) << i;
    EXPECT_EQ(resp.value().body, "world");
  }
  // All twenty went over one accepted connection.
  EXPECT_EQ(server_->stats().connections_accepted, 1u);
  EXPECT_EQ(server_->stats().requests_served, 20u);
}

TEST_F(LiveServerTest, ClientReuseAccountingAndStaleReconnect) {
  StartEcho();
  HttpClient client("127.0.0.1", server_->port());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Get("/hello").ok()) << i;
  }
  // One connect paid, four roundtrips rode the pooled socket.
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.connects(), 1u);
  EXPECT_EQ(client.reuses(), 4u);
  EXPECT_EQ(client.stale_reconnects(), 0u);
  EXPECT_GT(client.last_received_bytes(), 0u);

  // The server goes away and comes back (same situation as a keep-alive
  // socket expired server-side): the client's next roundtrip finds the
  // stale socket, reconnects transparently, and still answers.
  const uint16_t port = server_->port();
  server_->Stop();
  server_ = std::make_unique<HttpServer>(
      [](const HttpRequest&) { return HttpResponse::Ok("back"); },
      [port] {
        HttpServer::Options options;
        options.port = port;
        return options;
      }());
  ASSERT_TRUE(server_->Start().ok());

  auto resp = client.Get("/hello");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().body, "back");
  EXPECT_EQ(client.stale_reconnects(), 1u);
  EXPECT_EQ(client.connects(), 2u);
}

TEST_F(LiveServerTest, ClientHonorsConnectTimeoutAgainstDeadPort) {
  // A port with (almost certainly) no listener: the bounded connect must
  // fail fast with kUnavailable instead of hanging for the kernel default.
  HttpClient::Options options;
  options.connect_timeout = 50 * kMillisecond;
  options.io_timeout = 50 * kMillisecond;
  HttpClient client("127.0.0.1", 1, options);
  const auto t0 = std::chrono::steady_clock::now();
  auto resp = client.Get("/hello");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), ErrorCode::kUnavailable);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST_F(LiveServerTest, PostBodyEchoed) {
  StartEcho();
  HttpClient client("127.0.0.1", server_->port());
  HttpRequest req;
  req.method = "POST";
  req.target = "/echo";
  req.body = "payload-data";
  auto resp = client.Roundtrip(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().body, "payload-data");
}

TEST_F(LiveServerTest, ConcurrentClients) {
  StartEcho();
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      HttpClient client("127.0.0.1", server_->port());
      for (int i = 0; i < 25; ++i) {
        auto resp = client.Get("/hello");
        if (resp.ok() && resp.value().body == "world") ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kClients * 25);
}

TEST_F(LiveServerTest, MalformedRequestGets400) {
  StartEcho();
  HttpClient raw("127.0.0.1", server_->port());
  HttpRequest bad;
  bad.method = "GET";
  bad.target = "/x";
  // Send raw garbage via a hand-rolled request. Use the client socket by
  // crafting an invalid serialized form through a custom header name with a
  // space (serializer emits it verbatim; server parser must reject).
  bad.headers["Bad Header"] = "v";
  auto resp = raw.Roundtrip(bad);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, 400);
}

TEST_F(LiveServerTest, StopIsIdempotent) {
  StartEcho();
  server_->Stop();
  server_->Stop();
}

TEST_F(LiveServerTest, PortIsKernelAssigned) {
  StartEcho();
  EXPECT_GT(server_->port(), 0);
}

TEST(HttpServerTest, DoubleStartRejected) {
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok(""); });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());
  server.Stop();
}

TEST(HttpClientTest, ConnectToClosedPortFails) {
  auto resp = HttpClient::FetchOnce("127.0.0.1", 1, "/x");
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), ErrorCode::kUnavailable);
}

// --- multi-reactor serving -------------------------------------------------------

HttpServer::Options ReactorOptions(size_t reactors, AcceptMode mode) {
  HttpServer::Options options;
  options.reactors = reactors;
  options.accept_mode = mode;
  return options;
}

HttpResponse RouteAb(const HttpRequest& req) {
  if (req.Path() == "/a") return HttpResponse::Ok("alpha");
  if (req.Path() == "/b") return HttpResponse::Ok("bravo");
  return HttpResponse::NotFound();
}

// Two pipelined requests in one TCP segment; both responses must come back
// in order on the same connection.
void ExpectPipelinedPair(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string wire =
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));

  ResponseParser parser;
  std::vector<HttpResponse> responses;
  char buf[4096];
  while (responses.size() < 2) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    ASSERT_TRUE(parser.Feed(std::string_view(buf, size_t(n))).ok());
    while (auto r = parser.Next()) responses.push_back(*r);
  }
  ::close(fd);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].body, "alpha");
  EXPECT_EQ(responses[1].body, "bravo");
}

TEST(MultiReactorTest, PipelinedPairAtEveryReactorCount) {
  for (const size_t reactors : {size_t{1}, size_t{2}, size_t{8}}) {
    HttpServer server(RouteAb,
                      ReactorOptions(reactors, AcceptMode::kRoundRobin));
    ASSERT_TRUE(server.Start().ok()) << "reactors=" << reactors;
    // Several connections, so in round-robin mode the pair lands on
    // different reactors across iterations.
    for (int i = 0; i < 4; ++i) ExpectPipelinedPair(server.port());
    server.Stop();
  }
}

TEST(MultiReactorTest, PipelinedPairUnderReusePort) {
  HttpServer server(RouteAb, ReactorOptions(4, AcceptMode::kAuto));
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 4; ++i) ExpectPipelinedPair(server.port());
  server.Stop();
}

TEST(MultiReactorTest, RoundRobinDealsConnectionsEvenly) {
  HttpServer server(RouteAb, ReactorOptions(4, AcceptMode::kRoundRobin));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.accept_mode(), AcceptMode::kRoundRobin);
  EXPECT_EQ(server.reactors(), 4u);
  // Eight sequential one-shot connections: the round-robin acceptor deals
  // exactly two to each reactor.
  for (int i = 0; i < 8; ++i) {
    auto resp = HttpClient::FetchOnce("127.0.0.1", server.port(), "/a");
    ASSERT_TRUE(resp.ok()) << i;
    EXPECT_EQ(resp.value().body, "alpha");
  }
  const auto per_reactor = server.reactor_requests();
  ASSERT_EQ(per_reactor.size(), 4u);
  uint64_t total = 0;
  for (uint64_t count : per_reactor) {
    EXPECT_EQ(count, 2u);
    total += count;
  }
  EXPECT_EQ(total, server.stats().requests_served);
  server.Stop();
}

TEST(MultiReactorTest, AutoResolvesAndServes) {
  HttpServer server(RouteAb, ReactorOptions(2, AcceptMode::kAuto));
  ASSERT_TRUE(server.Start().ok());
  // kAuto resolves to a concrete mode; either way the server must serve.
  EXPECT_NE(server.accept_mode(), AcceptMode::kAuto);
  auto resp = HttpClient::FetchOnce("127.0.0.1", server.port(), "/b");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().body, "bravo");
  server.Stop();
}

TEST(MultiReactorTest, ZeroReactorsRejected) {
  HttpServer::Options options;
  options.reactors = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(MultiReactorTest, BodyCopyCounterSeparatesRefsFromOwned) {
  auto shared = std::make_shared<const std::string>("ref-counted-page");
  HttpServer server(
      [shared](const HttpRequest& req) {
        if (req.Path() == "/ref") {
          HttpResponse r;
          r.body_ref = shared;
          return r;
        }
        return HttpResponse::Ok("owned-body");
      },
      HttpServer::Options());
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 3; ++i) {
    auto resp = client.Get("/ref");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.value().body, "ref-counted-page");
  }
  // A reference-served body is never materialized into the write path.
  EXPECT_EQ(server.stats().body_copies, 0u);
  auto owned = client.Get("/owned");
  ASSERT_TRUE(owned.ok());
  EXPECT_EQ(owned.value().body, "owned-body");
  EXPECT_EQ(server.stats().body_copies, 1u);
  server.Stop();
}

TEST(MultiReactorTest, ResponsesCarryDateHeader) {
  HttpServer server(RouteAb, HttpServer::Options());
  ASSERT_TRUE(server.Start().ok());
  auto resp = HttpClient::FetchOnce("127.0.0.1", server.port(), "/a");
  ASSERT_TRUE(resp.ok());
  auto it = resp.value().headers.find("Date");
  ASSERT_NE(it, resp.value().headers.end());
  EXPECT_TRUE(it->second.ends_with(" GMT"));
  // Calendar time, not monotonic uptime rendered as an epoch date.
  tm now_utc{};
  const time_t now = ::time(nullptr);
  gmtime_r(&now, &now_utc);
  EXPECT_NE(it->second.find(std::to_string(1900 + now_utc.tm_year)),
            std::string::npos)
      << it->second;
  server.Stop();
}

// --- admission control -----------------------------------------------------------

// End-to-end admission control: a render slot held open by one request, the
// next cold miss shed over the wire.
class AdmissionTest : public ::testing::Test {
 protected:
  static cache::ObjectCache::Options StaleRetaining() {
    cache::ObjectCache::Options options;
    options.retain_stale = true;
    return options;
  }

  AdmissionTest() : cache_(StaleRetaining()), renderer_(&graph_, &cache_) {
    renderer_.RegisterExact("/slow", [this](const pagegen::RenderRequest&) {
      entered_.store(true);
      const auto give_up =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (!release_.load() && std::chrono::steady_clock::now() < give_up) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return Result<std::string>("finally done");
    });
  }

  // Occupies the single render slot from a background thread (directly, not
  // over HTTP: a handler parked on the lone reactor would block the event
  // loop and the probe would never reach admission control at all).
  std::thread HoldRenderSlot(server::DynamicPageServer* program) {
    std::thread holder([program] {
      EXPECT_EQ(program->Serve("/slow").cls,
                server::ServeClass::kCacheMissGenerated);
    });
    while (!entered_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return holder;
  }

  odg::ObjectDependenceGraph graph_;
  cache::ObjectCache cache_;
  pagegen::PageRenderer renderer_;
  std::atomic<bool> entered_{false};
  std::atomic<bool> release_{false};
};

TEST_F(AdmissionTest, QueueOverflowGets503WithRetryAfter) {
  renderer_.RegisterExact("/cold", [](const pagegen::RenderRequest&) {
    return Result<std::string>("cold page");
  });
  server::DynamicPageServer::Options options;
  options.max_concurrent_renders = 1;
  server::DynamicPageServer program(&cache_, &renderer_, options);
  server::HttpFrontEnd front(&program);
  ASSERT_TRUE(front.Start().ok());

  std::thread holder = HoldRenderSlot(&program);
  // The slot is taken and /cold has no cached copy to fall back on: shed.
  auto shed = HttpClient::FetchOnce("127.0.0.1", front.port(), "/cold");
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed.value().status, 503);
  auto retry = shed.value().headers.find("Retry-After");
  ASSERT_NE(retry, shed.value().headers.end());
  // One render's worth of drain time, rounded up to whole seconds.
  EXPECT_EQ(retry->second, "1");

  release_.store(true);
  holder.join();
  // Queue drained: the same page now renders normally.
  auto again = HttpClient::FetchOnce("127.0.0.1", front.port(), "/cold");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().status, 200);
  EXPECT_EQ(again.value().body, "cold page");

  EXPECT_EQ(program.stats().shed, 1u);
  EXPECT_EQ(program.stats().shed_softened, 0u);
  front.Stop();
}

TEST_F(AdmissionTest, StaleCopyPreferredOverRejection) {
  renderer_.RegisterExact("/news", [](const pagegen::RenderRequest&) {
    return Result<std::string>("latest medal table");
  });
  server::DynamicPageServer::Options options;
  options.max_concurrent_renders = 1;
  server::DynamicPageServer program(&cache_, &renderer_, options);
  server::HttpFrontEnd front(&program);
  ASSERT_TRUE(front.Start().ok());

  // Prime a last-known-good copy, then invalidate it (retained stale).
  ASSERT_EQ(program.Serve("/news").cls,
            server::ServeClass::kCacheMissGenerated);
  ASSERT_TRUE(cache_.Invalidate("/news"));

  std::thread holder = HoldRenderSlot(&program);
  // Shedding would reject, but a stale body exists — availability first.
  auto resp = HttpClient::FetchOnce("127.0.0.1", front.port(), "/news");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_EQ(resp.value().body, "latest medal table");
  EXPECT_EQ(resp.value().headers.at("X-Cache"), "STALE");
  EXPECT_EQ(resp.value().headers.count("X-Nagano-Stale"), 1u);

  release_.store(true);
  holder.join();
  EXPECT_EQ(program.stats().shed, 0u);
  EXPECT_EQ(program.stats().shed_softened, 1u);
  EXPECT_EQ(program.stats().stale_serves, 1u);
  front.Stop();
}

// --- write-stall guard -----------------------------------------------------------

// Slow-client flood: connections that request huge pages and never read a
// byte must be paused at the pending-write cap — without starving fast
// clients sharing the same reactor.
TEST(WriteStallTest, SlowClientFloodBoundedWithoutStarvingFastClients) {
  // Bigger than the kernel's maximum send buffer (tcp_wmem max), so a
  // non-draining peer is guaranteed to leave unflushed bytes queued.
  const std::string big(6 << 20, 'B');
  HttpServer::Options options;
  options.reactors = 1;  // flooders and fast clients share one event loop
  options.max_pending_write_bytes = 64 * 1024;
  HttpServer server(
      [&big](const HttpRequest& req) {
        if (req.Path() == "/big") return HttpResponse::Ok(big);
        return HttpResponse::Ok("tiny");
      },
      options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kFlooders = 3;
  std::vector<int> flood_fds;
  for (int i = 0; i < kFlooders; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    int rcvbuf = 4096;  // tiny receive window: the server backs up fast
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    // Pipeline several huge requests, then never read.
    std::string wire;
    for (int j = 0; j < 4; ++j) wire += "GET /big HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_EQ(::write(fd, wire.data(), wire.size()),
              static_cast<ssize_t>(wire.size()));
    flood_fds.push_back(fd);
  }

  // Every flooder should trip the stall guard once its queue tops the cap.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().write_stalls < kFlooders &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.stats().write_stalls, static_cast<uint64_t>(kFlooders));

  // Fast clients on the same (stalled) reactor are served promptly.
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 20; ++i) {
    auto resp = client.Get("/hello");
    ASSERT_TRUE(resp.ok()) << i;
    EXPECT_EQ(resp.value().body, "tiny");
  }

  // A paused flooder stops being answered: of the 4 pipelined requests,
  // only the head of each queue was turned into a response.
  EXPECT_EQ(server.stats().requests_served,
            static_cast<uint64_t>(kFlooders + 20));

  for (int fd : flood_fds) ::close(fd);
  server.Stop();
}

}  // namespace
}  // namespace nagano::http
