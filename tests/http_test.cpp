#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "http/client.h"
#include "http/message.h"
#include "http/server.h"

namespace nagano::http {
namespace {

// --- message model -------------------------------------------------------------

TEST(HttpMessageTest, RequestPathStripsQuery) {
  HttpRequest req;
  req.target = "/day/7?lang=en&x=1";
  EXPECT_EQ(req.Path(), "/day/7");
  req.target = "/plain";
  EXPECT_EQ(req.Path(), "/plain");
}

TEST(HttpMessageTest, QueryParam) {
  HttpRequest req;
  req.target = "/p?lang=en&day=7&flag";
  EXPECT_EQ(req.QueryParam("lang"), "en");
  EXPECT_EQ(req.QueryParam("day"), "7");
  EXPECT_EQ(req.QueryParam("flag"), "");
  EXPECT_FALSE(req.QueryParam("ghost").has_value());
}

TEST(HttpMessageTest, KeepAliveDefaults) {
  HttpRequest req;
  req.version = "HTTP/1.1";
  EXPECT_TRUE(req.KeepAlive());
  req.version = "HTTP/1.0";
  EXPECT_FALSE(req.KeepAlive());
  req.headers["Connection"] = "keep-alive";
  EXPECT_TRUE(req.KeepAlive());
  req.version = "HTTP/1.1";
  req.headers["Connection"] = "close";
  EXPECT_FALSE(req.KeepAlive());
}

TEST(HttpMessageTest, HeaderMapCaseInsensitive) {
  HttpRequest req;
  req.headers["content-type"] = "text/html";
  EXPECT_EQ(req.headers.count("Content-Type"), 1u);
  EXPECT_EQ(req.headers.at("CONTENT-TYPE"), "text/html");
}

TEST(HttpMessageTest, ResponseFactories) {
  const auto ok = HttpResponse::Ok("body");
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "body");
  EXPECT_EQ(HttpResponse::NotFound().status, 404);
  EXPECT_EQ(HttpResponse::ServerError().status, 500);
  EXPECT_EQ(HttpResponse::ServiceUnavailable().status, 503);
}

TEST(HttpMessageTest, SerializeSetsContentLength) {
  auto r = HttpResponse::Ok("12345");
  const std::string wire = r.Serialize();
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("\r\n12345"));
}

// --- parser ---------------------------------------------------------------------

TEST(RequestParserTest, ParsesSimpleGet) {
  RequestParser parser;
  ASSERT_TRUE(parser.Feed("GET /day/7 HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  auto req = parser.Next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/day/7");
  EXPECT_EQ(req->version, "HTTP/1.1");
  EXPECT_EQ(req->headers.at("Host"), "x");
  EXPECT_FALSE(parser.Next().has_value());
}

TEST(RequestParserTest, ParsesBodyByContentLength) {
  RequestParser parser;
  ASSERT_TRUE(
      parser.Feed("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").ok());
  auto req = parser.Next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->body, "hello");
}

TEST(RequestParserTest, IncrementalFeed) {
  RequestParser parser;
  const std::string wire = "GET /a HTTP/1.1\r\nHost: h\r\n\r\n";
  for (char c : wire) {
    ASSERT_TRUE(parser.Feed(std::string_view(&c, 1)).ok());
  }
  auto req = parser.Next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->target, "/a");
}

TEST(RequestParserTest, PipelinedRequests) {
  RequestParser parser;
  ASSERT_TRUE(parser
                  .Feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"
                        "GET /c HTTP/1.1\r\n\r\n")
                  .ok());
  EXPECT_EQ(parser.Next()->target, "/a");
  EXPECT_EQ(parser.Next()->target, "/b");
  EXPECT_EQ(parser.Next()->target, "/c");
  EXPECT_FALSE(parser.Next().has_value());
}

TEST(RequestParserTest, IncompleteBodyWaits) {
  RequestParser parser;
  ASSERT_TRUE(
      parser.Feed("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhel").ok());
  EXPECT_FALSE(parser.Next().has_value());
  ASSERT_TRUE(parser.Feed("lo world").ok());
  EXPECT_EQ(parser.Next()->body, std::string("hello world").substr(0, 10));
}

TEST(RequestParserTest, MalformedStartLine) {
  RequestParser parser;
  EXPECT_FALSE(parser.Feed("GARBAGE\r\n\r\n").ok());
}

TEST(RequestParserTest, MissingVersionRejected) {
  RequestParser parser;
  EXPECT_FALSE(parser.Feed("GET /x\r\n\r\n").ok());
}

TEST(RequestParserTest, BadVersionRejected) {
  RequestParser parser;
  EXPECT_FALSE(parser.Feed("GET /x SMTP/1.0\r\n\r\n").ok());
}

TEST(RequestParserTest, MalformedHeaderRejected) {
  RequestParser parser;
  EXPECT_FALSE(parser.Feed("GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n").ok());
  RequestParser parser2;
  EXPECT_FALSE(parser2.Feed("GET /x HTTP/1.1\r\n: empty\r\n\r\n").ok());
  RequestParser parser3;
  EXPECT_FALSE(
      parser3.Feed("GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n").ok());
}

TEST(RequestParserTest, BadContentLengthRejected) {
  RequestParser parser;
  EXPECT_FALSE(
      parser.Feed("POST /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n").ok());
}

TEST(RequestParserTest, OversizedHeaderRejected) {
  RequestParser parser;
  std::string huge = "GET /x HTTP/1.1\r\nX-Big: ";
  huge.append(RequestParser::kMaxHeaderBytes, 'a');
  EXPECT_FALSE(parser.Feed(huge).ok());
}

TEST(RequestParserTest, HeaderValueTrimmed) {
  RequestParser parser;
  ASSERT_TRUE(parser.Feed("GET /x HTTP/1.1\r\nHost:   spaced   \r\n\r\n").ok());
  EXPECT_EQ(parser.Next()->headers.at("Host"), "spaced");
}

TEST(ResponseParserTest, ParsesResponse) {
  ResponseParser parser;
  ASSERT_TRUE(parser
                  .Feed("HTTP/1.1 404 Not Found\r\nContent-Length: 4\r\n"
                        "\r\ngone")
                  .ok());
  auto resp = parser.Next();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
  EXPECT_EQ(resp->reason, "Not Found");
  EXPECT_EQ(resp->body, "gone");
}

TEST(ResponseParserTest, BadStatusRejected) {
  ResponseParser parser;
  EXPECT_FALSE(parser.Feed("HTTP/1.1 9999 Weird\r\n\r\n").ok());
  ResponseParser parser2;
  EXPECT_FALSE(parser2.Feed("HTTP/1.1 abc Oops\r\n\r\n").ok());
}

// Round-trip property: serialize then parse reproduces the message.
class RoundtripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundtripTest, RequestSurvivesWire) {
  HttpRequest req;
  req.method = GetParam() % 2 ? "GET" : "POST";
  req.target = "/page/" + std::to_string(GetParam());
  req.headers["Host"] = "nagano.olympic.org";
  req.headers["X-Trace"] = std::to_string(GetParam() * 7);
  if (req.method == "POST") req.body = std::string(GetParam() * 10, 'b');

  RequestParser parser;
  ASSERT_TRUE(parser.Feed(req.Serialize()).ok());
  auto out = parser.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->method, req.method);
  EXPECT_EQ(out->target, req.target);
  EXPECT_EQ(out->body, req.body);
  EXPECT_EQ(out->headers.at("Host"), "nagano.olympic.org");
}

TEST_P(RoundtripTest, ResponseSurvivesWire) {
  HttpResponse resp;
  resp.status = 200 + GetParam();
  resp.reason = "Custom Reason";
  resp.body = std::string(GetParam() * 100, 'x');
  resp.headers["X-Cache"] = "HIT";

  ResponseParser parser;
  ASSERT_TRUE(parser.Feed(resp.Serialize()).ok());
  auto out = parser.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, resp.status);
  EXPECT_EQ(out->reason, "Custom Reason");
  EXPECT_EQ(out->body, resp.body);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoundtripTest, ::testing::Values(0, 1, 3, 17, 64));

// --- live server ---------------------------------------------------------------------

class LiveServerTest : public ::testing::Test {
 protected:
  void StartEcho() {
    server_ = std::make_unique<HttpServer>([](const HttpRequest& req) {
      if (req.Path() == "/hello") return HttpResponse::Ok("world");
      if (req.Path() == "/echo") return HttpResponse::Ok(req.body);
      return HttpResponse::NotFound();
    });
    ASSERT_TRUE(server_->Start().ok());
  }
  std::unique_ptr<HttpServer> server_;
};

TEST_F(LiveServerTest, ServesGet) {
  StartEcho();
  auto resp = HttpClient::FetchOnce("127.0.0.1", server_->port(), "/hello");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_EQ(resp.value().body, "world");
}

TEST_F(LiveServerTest, Returns404) {
  StartEcho();
  auto resp = HttpClient::FetchOnce("127.0.0.1", server_->port(), "/ghost");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, 404);
}

TEST_F(LiveServerTest, KeepAliveServesManyOnOneConnection) {
  StartEcho();
  HttpClient client("127.0.0.1", server_->port());
  for (int i = 0; i < 20; ++i) {
    auto resp = client.Get("/hello");
    ASSERT_TRUE(resp.ok()) << i;
    EXPECT_EQ(resp.value().body, "world");
  }
  // All twenty went over one accepted connection.
  EXPECT_EQ(server_->stats().connections_accepted, 1u);
  EXPECT_EQ(server_->stats().requests_served, 20u);
}

TEST_F(LiveServerTest, PostBodyEchoed) {
  StartEcho();
  HttpClient client("127.0.0.1", server_->port());
  HttpRequest req;
  req.method = "POST";
  req.target = "/echo";
  req.body = "payload-data";
  auto resp = client.Roundtrip(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().body, "payload-data");
}

TEST_F(LiveServerTest, ConcurrentClients) {
  StartEcho();
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      HttpClient client("127.0.0.1", server_->port());
      for (int i = 0; i < 25; ++i) {
        auto resp = client.Get("/hello");
        if (resp.ok() && resp.value().body == "world") ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kClients * 25);
}

TEST_F(LiveServerTest, MalformedRequestGets400) {
  StartEcho();
  HttpClient raw("127.0.0.1", server_->port());
  HttpRequest bad;
  bad.method = "GET";
  bad.target = "/x";
  // Send raw garbage via a hand-rolled request. Use the client socket by
  // crafting an invalid serialized form through a custom header name with a
  // space (serializer emits it verbatim; server parser must reject).
  bad.headers["Bad Header"] = "v";
  auto resp = raw.Roundtrip(bad);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, 400);
}

TEST_F(LiveServerTest, StopIsIdempotent) {
  StartEcho();
  server_->Stop();
  server_->Stop();
}

TEST_F(LiveServerTest, PortIsKernelAssigned) {
  StartEcho();
  EXPECT_GT(server_->port(), 0);
}

TEST(HttpServerTest, DoubleStartRejected) {
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok(""); });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());
  server.Stop();
}

TEST(HttpClientTest, ConnectToClosedPortFails) {
  auto resp = HttpClient::FetchOnce("127.0.0.1", 1, "/x");
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace nagano::http
