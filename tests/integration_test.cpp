// End-to-end suites over the assembled ServingSite: prefetch, DUP
// consistency under a realistic result feed, the hit-rate comparison that
// is the paper's headline claim, and the full stack over real HTTP.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/serving_site.h"
#include "http/client.h"
#include "server/serving.h"
#include "workload/feed.h"
#include "workload/sampler.h"

namespace nagano {
namespace {

using core::ServingSite;
using core::SiteOptions;

SiteOptions SmallSite(trigger::CachePolicy policy) {
  SiteOptions options;
  options.olympic.days = 4;
  options.olympic.num_sports = 3;
  options.olympic.events_per_sport = 4;
  options.olympic.athletes_per_event = 6;
  options.olympic.num_countries = 8;
  options.olympic.initial_news_articles = 5;
  options.trigger.policy = policy;
  if (policy == trigger::CachePolicy::kConservative1996) {
    options.trigger.conservative_prefixes =
        trigger::OlympicConservativePrefixes();
  }
  return options;
}

TEST(ServingSiteTest, CreateAndPrefetch) {
  auto site = ServingSite::Create(SmallSite(trigger::CachePolicy::kDupUpdateInPlace));
  ASSERT_TRUE(site.ok());
  const auto count = site.value()->PrefetchAll();
  ASSERT_TRUE(count.ok());
  EXPECT_GT(count.value(), 50u);
  EXPECT_EQ(site.value()->cache().size(), count.value());
  // Prefetch built the full ODG.
  EXPECT_GT(site.value()->graph().edge_count(), 100u);
}

TEST(ServingSiteTest, ServeClassesBeforeAndAfterPrefetch) {
  auto site_or = ServingSite::Create(SmallSite(trigger::CachePolicy::kDupUpdateInPlace));
  ASSERT_TRUE(site_or.ok());
  auto& site = *site_or.value();

  EXPECT_EQ(site.Serve("/day/1").cls, server::ServeClass::kCacheMissGenerated);
  EXPECT_EQ(site.Serve("/day/1").cls, server::ServeClass::kCacheHit);
  ASSERT_TRUE(site.PrefetchAll().ok());
  EXPECT_EQ(site.Serve("/event/3").cls, server::ServeClass::kCacheHit);
  EXPECT_EQ(site.Serve("/nope").cls, server::ServeClass::kNotFound);
}

TEST(ServingSiteTest, UpdateLatencyWellUnderPaperBound) {
  auto site_or = ServingSite::Create(SmallSite(trigger::CachePolicy::kDupUpdateInPlace));
  ASSERT_TRUE(site_or.ok());
  auto& site = *site_or.value();
  ASSERT_TRUE(site.PrefetchAll().ok());
  site.StartTrigger();

  const auto latency = site.MeasureUpdateLatencyMs(1, 1, 1, 97.5);
  ASSERT_TRUE(latency.ok()) << latency.status().ToString();
  EXPECT_GT(latency.value(), 0.0);
  EXPECT_LT(latency.value(), 60'000.0);  // paper: within sixty seconds
  site.StopTrigger();
}

TEST(ServingSiteTest, LatencyProbeRequiresPrefetch) {
  auto site_or = ServingSite::Create(SmallSite(trigger::CachePolicy::kDupUpdateInPlace));
  ASSERT_TRUE(site_or.ok());
  auto& site = *site_or.value();
  site.StartTrigger();
  EXPECT_EQ(site.MeasureUpdateLatencyMs(1, 1, 1, 97.5).status().code(),
            ErrorCode::kFailedPrecondition);
  site.StopTrigger();
}

// Runs a compressed games day against the given policy and returns the
// dynamic-page hit rate under a Zipf request mix interleaved with the feed.
double RunDayAndMeasureHitRate(trigger::CachePolicy policy, uint64_t seed) {
  auto site_or = ServingSite::Create(SmallSite(policy));
  EXPECT_TRUE(site_or.ok());
  auto& site = *site_or.value();
  EXPECT_TRUE(site.PrefetchAll().ok());
  site.StartTrigger();

  workload::PageSampler sampler(site.olympic_config(), site.db());
  sampler.SetCurrentDay(1);
  workload::ResultFeed feed(&site.db(), workload::FeedOptions{}, seed);
  const auto schedule = feed.BuildDaySchedule(1);

  Rng rng(seed);
  size_t cursor = 0;
  const int requests_per_update = 40;
  while (cursor < schedule.size()) {
    EXPECT_TRUE(feed.Apply(schedule[cursor++]).ok());
    // In the 1998 system updates are applied on the trigger monitor's
    // threads while serving continues; quiesce per update to make the
    // measurement deterministic.
    site.Quiesce();
    for (int r = 0; r < requests_per_update; ++r) {
      site.Serve(sampler.Sample(rng));
    }
  }
  site.StopTrigger();
  return site.page_server().stats().CacheHitRate();
}

TEST(HitRateComparisonTest, DupUpdateInPlaceNearPerfect) {
  // §5: "As a result of DUP and prefetching, we were able to achieve cache
  // hit rates close to 100%."
  const double hit_rate =
      RunDayAndMeasureHitRate(trigger::CachePolicy::kDupUpdateInPlace, 77);
  EXPECT_GT(hit_rate, 0.99);
}

TEST(HitRateComparisonTest, Conservative1996MuchWorse) {
  // §2: the 1996 site achieved ~80%; bulk invalidation after every scoring
  // update forces constant regeneration.
  const double rate96 =
      RunDayAndMeasureHitRate(trigger::CachePolicy::kConservative1996, 77);
  const double rate98 =
      RunDayAndMeasureHitRate(trigger::CachePolicy::kDupUpdateInPlace, 77);
  EXPECT_LT(rate96, 0.92);
  EXPECT_GT(rate98 - rate96, 0.05);
}

TEST(HitRateComparisonTest, DupInvalidateBetween) {
  const double inval =
      RunDayAndMeasureHitRate(trigger::CachePolicy::kDupInvalidate, 77);
  const double in_place =
      RunDayAndMeasureHitRate(trigger::CachePolicy::kDupUpdateInPlace, 77);
  const double rate96 =
      RunDayAndMeasureHitRate(trigger::CachePolicy::kConservative1996, 77);
  EXPECT_GE(in_place, inval);
  EXPECT_GE(inval, rate96);
}

TEST(ServingSiteTest, NoEvictionsAtFullScale) {
  // "All dynamic pages could be cached in memory without overflow ...
  // the system never had to apply a cache replacement algorithm."
  auto site_or = ServingSite::Create(SmallSite(trigger::CachePolicy::kDupUpdateInPlace));
  ASSERT_TRUE(site_or.ok());
  auto& site = *site_or.value();
  ASSERT_TRUE(site.PrefetchAll().ok());
  site.StartTrigger();
  workload::ResultFeed feed(&site.db(), workload::FeedOptions{}, 3);
  ASSERT_TRUE(feed.RunDay(1).ok());
  site.Quiesce();
  site.StopTrigger();
  EXPECT_EQ(site.cache().stats().evictions, 0u);
}

// Full stack: ServingSite behind the epoll HTTP server, driven by a real
// HTTP client, with the trigger monitor refreshing pages between fetches.
TEST(FullStackTest, LiveHttpUpdatesVisible) {
  auto site_or = ServingSite::Create(SmallSite(trigger::CachePolicy::kDupUpdateInPlace));
  ASSERT_TRUE(site_or.ok());
  auto& site = *site_or.value();
  ASSERT_TRUE(site.PrefetchAll().ok());
  site.StartTrigger();

  server::HttpFrontEnd front(&site.page_server(), {});
  ASSERT_TRUE(front.Start().ok());

  http::HttpClient client("127.0.0.1", front.port());
  auto before = client.Get("/event/1");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().status, 200);
  EXPECT_EQ(before.value().headers.at("X-Cache"), "HIT");
  EXPECT_EQ(before.value().body.find("77.70"), std::string::npos);

  ASSERT_TRUE(site.RecordResult(1, 1, 1, 77.70).ok());
  site.Quiesce();

  auto after = client.Get("/event/1");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().headers.at("X-Cache"), "HIT");  // never missed
  EXPECT_NE(after.value().body.find("77.70"), std::string::npos);

  front.Stop();
  site.StopTrigger();
}

TEST(FullStackTest, HttpServesEveryPage) {
  auto site_or = ServingSite::Create(SmallSite(trigger::CachePolicy::kDupUpdateInPlace));
  ASSERT_TRUE(site_or.ok());
  auto& site = *site_or.value();
  ASSERT_TRUE(site.PrefetchAll().ok());

  server::HttpFrontEnd front(&site.page_server(), {});
  ASSERT_TRUE(front.Start().ok());
  http::HttpClient client("127.0.0.1", front.port());

  size_t fetched = 0;
  for (const auto& page : pagegen::OlympicSite::AllPageNames(
           site.olympic_config(), site.db())) {
    auto resp = client.Get(page);
    ASSERT_TRUE(resp.ok()) << page;
    EXPECT_EQ(resp.value().status, 200) << page;
    EXPECT_FALSE(resp.value().body.empty()) << page;
    ++fetched;
  }
  EXPECT_EQ(front.http_stats().requests_served, fetched);
  front.Stop();
}

}  // namespace
}  // namespace nagano
