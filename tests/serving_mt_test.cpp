// Multi-reactor serving end to end: the assembled site (cache + renderer +
// DynamicPageServer) behind HttpFrontEnd at reactors 1 / 2 / 8 must give
// every client byte-identical pages, never copy a cache-hit body into the
// write path, and shut down cleanly; per-reactor fault-injection sites let
// a drill kill one event loop's sockets while its siblings keep serving.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "core/serving_site.h"
#include "http/client.h"

namespace nagano {
namespace {

core::SiteOptions SmallSite() {
  core::SiteOptions options;
  options.olympic.days = 4;
  options.olympic.num_sports = 3;
  options.olympic.events_per_sport = 4;
  options.olympic.athletes_per_event = 6;
  options.olympic.num_countries = 8;
  return options;
}

std::vector<std::string> ProbePages() {
  return {"/", "/day/1", "/day/2", "/sport/1", "/sport/2",
          "/event/1", "/event/2", "/medals", "/static/about"};
}

server::FrontEndOptions FrontEndWith(size_t reactors,
                                     http::AcceptMode mode,
                                     std::string instance = {},
                                     fault::FaultInjector* faults = nullptr) {
  server::FrontEndOptions options;
  options.http.reactors = reactors;
  options.http.accept_mode = mode;
  options.http.metrics.instance = std::move(instance);
  options.http.faults = faults;
  return options;
}

// Fetches every probe page over several keep-alive connections; returns
// path -> body.
std::map<std::string, std::string> FetchAll(uint16_t port) {
  std::map<std::string, std::string> bodies;
  for (int round = 0; round < 3; ++round) {
    http::HttpClient client("127.0.0.1", port);
    for (const auto& path : ProbePages()) {
      auto resp = client.Get(path);
      if (!resp.ok() || resp.value().status != 200) {
        ADD_FAILURE() << "GET " << path << " failed: "
                      << (resp.ok() ? std::to_string(resp.value().status)
                                    : resp.status().ToString());
        continue;
      }
      auto it = bodies.find(path);
      if (it == bodies.end()) {
        bodies.emplace(path, resp.value().body);
      } else {
        EXPECT_EQ(it->second, resp.value().body)
            << path << " changed between connections";
      }
    }
  }
  return bodies;
}

TEST(ServingMtTest, IdenticalResponsesAtEveryReactorCount) {
  auto site_or = core::ServingSite::Create(SmallSite());
  ASSERT_TRUE(site_or.ok());
  auto& site = *site_or.value();
  ASSERT_TRUE(site.PrefetchAll().ok());
  site.page_server().AddStaticPage("/static/about", "about the games\n");

  std::map<std::string, std::string> reference;
  for (const size_t reactors : {size_t{1}, size_t{2}, size_t{8}}) {
    server::HttpFrontEnd front(
        &site.page_server(),
        FrontEndWith(reactors, http::AcceptMode::kRoundRobin));
    ASSERT_TRUE(front.Start().ok()) << "reactors=" << reactors;
    const auto bodies = FetchAll(front.port());
    ASSERT_EQ(bodies.size(), ProbePages().size());
    if (reference.empty()) {
      reference = bodies;
    } else {
      EXPECT_EQ(bodies, reference)
          << "reactors=" << reactors << " diverged from single-reactor run";
    }
    // Cache hits and static pages travel by reference — a hit-dominated
    // run materializes no bodies (the one miss class here is none: the
    // site is prefetched).
    EXPECT_EQ(front.http_stats().body_copies, 0u) << "reactors=" << reactors;
    front.Stop();  // clean shutdown with connections torn down
    front.Stop();  // idempotent
  }
  EXPECT_FALSE(reference.empty());
  EXPECT_NE(reference.at("/day/1"), reference.at("/day/2"));
}

TEST(ServingMtTest, ConcurrentClientsAcrossReactors) {
  auto site_or = core::ServingSite::Create(SmallSite());
  ASSERT_TRUE(site_or.ok());
  auto& site = *site_or.value();
  ASSERT_TRUE(site.PrefetchAll().ok());

  server::HttpFrontEnd front(&site.page_server(),
                             FrontEndWith(4, http::AcceptMode::kRoundRobin));
  ASSERT_TRUE(front.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequests = 30;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      http::HttpClient client("127.0.0.1", front.port());
      const auto pages = ProbePages();
      for (int i = 0; i < kRequests; ++i) {
        auto resp = client.Get(pages[(c + i) % (pages.size() - 1)]);
        if (resp.ok() && resp.value().status == 200) ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kRequests);

  // Every reactor took a share: 8 connections dealt round-robin over 4
  // reactors is exactly 2 connections (2 * kRequests requests) each.
  const auto per_reactor = front.reactor_requests();
  ASSERT_EQ(per_reactor.size(), 4u);
  for (uint64_t count : per_reactor) {
    EXPECT_EQ(count, 2u * kRequests);
  }
  EXPECT_EQ(front.http_stats().body_copies, 0u);
  front.Stop();
}

// Kill one reactor's accept path: connections dealt to it die, its siblings
// keep serving, and the drill is visible in the injector timeline.
TEST(ServingMtTest, SingleReactorAcceptKillLeavesSiblingsServing) {
  auto site_or = core::ServingSite::Create(SmallSite());
  ASSERT_TRUE(site_or.ok());
  auto& site = *site_or.value();
  ASSERT_TRUE(site.PrefetchAll().ok());

  fault::FaultPlan plan;
  plan.seed = 42;
  fault::FaultRule rule;
  rule.subsystem = "http";
  rule.site = "mt-drill/r0";  // only reactor 0's sockets
  rule.operation = "accept";
  plan.rules.push_back(rule);
  fault::FaultInjector faults(std::move(plan));

  server::HttpFrontEnd front(
      &site.page_server(),
      FrontEndWith(4, http::AcceptMode::kRoundRobin, "mt-drill", &faults));
  ASSERT_TRUE(front.Start().ok());

  // Round-robin deals connection i to reactor i % 4: every 4th connection
  // dies at accept, the rest serve normally.
  int served = 0, killed = 0;
  for (int i = 0; i < 12; ++i) {
    auto resp = http::HttpClient::FetchOnce("127.0.0.1", front.port(), "/");
    if (resp.ok() && resp.value().status == 200) {
      ++served;
    } else {
      ++killed;
    }
  }
  EXPECT_EQ(killed, 3);
  EXPECT_EQ(served, 9);
  EXPECT_GE(faults.injected_total(), 3u);
  const auto per_reactor = front.reactor_requests();
  ASSERT_EQ(per_reactor.size(), 4u);
  EXPECT_EQ(per_reactor[0], 0u);  // the dead reactor never served
  front.Stop();
}

// read/write kills against one reactor close only that reactor's
// connections mid-flight.
TEST(ServingMtTest, SingleReactorReadAndWriteKills) {
  auto site_or = core::ServingSite::Create(SmallSite());
  ASSERT_TRUE(site_or.ok());
  auto& site = *site_or.value();
  ASSERT_TRUE(site.PrefetchAll().ok());

  for (const char* operation : {"read", "write"}) {
    fault::FaultPlan plan;
    plan.seed = 43;
    fault::FaultRule rule;
    rule.subsystem = "http";
    rule.site = std::string("mt-drill-") + operation + "/r1";
    rule.operation = operation;
    plan.rules.push_back(rule);
    fault::FaultInjector faults(std::move(plan));

    server::HttpFrontEnd front(
        &site.page_server(),
        FrontEndWith(2, http::AcceptMode::kRoundRobin,
                     std::string("mt-drill-") + operation, &faults));
    ASSERT_TRUE(front.Start().ok()) << operation;

    int served = 0, killed = 0;
    for (int i = 0; i < 10; ++i) {
      auto resp = http::HttpClient::FetchOnce("127.0.0.1", front.port(), "/");
      if (resp.ok() && resp.value().status == 200) {
        ++served;
      } else {
        ++killed;
      }
    }
    // Reactor 0's half of the connections serve; reactor 1's die at the
    // injected socket operation.
    EXPECT_EQ(served, 5) << operation;
    EXPECT_EQ(killed, 5) << operation;
    EXPECT_GE(faults.injected_total(), 5u) << operation;
    front.Stop();
  }
}

// With reactors == 1 the fault site stays the bare instance name, so
// existing single-site drills keep firing (site-name back-compat).
TEST(ServingMtTest, SingleReactorKeepsLegacyFaultSite) {
  auto site_or = core::ServingSite::Create(SmallSite());
  ASSERT_TRUE(site_or.ok());
  auto& site = *site_or.value();
  ASSERT_TRUE(site.PrefetchAll().ok());

  fault::FaultPlan plan;
  plan.seed = 44;
  fault::FaultRule rule;
  rule.subsystem = "http";
  rule.site = "legacy-drill";  // no /r0 suffix
  rule.operation = "accept";
  rule.max_fires = 1;
  plan.rules.push_back(rule);
  fault::FaultInjector faults(std::move(plan));

  server::HttpFrontEnd front(
      &site.page_server(),
      FrontEndWith(1, http::AcceptMode::kRoundRobin, "legacy-drill", &faults));
  ASSERT_TRUE(front.Start().ok());
  auto first = http::HttpClient::FetchOnce("127.0.0.1", front.port(), "/");
  EXPECT_FALSE(first.ok());
  auto second = http::HttpClient::FetchOnce("127.0.0.1", front.port(), "/");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().status, 200);
  front.Stop();
}

}  // namespace
}  // namespace nagano
