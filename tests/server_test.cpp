#include <gtest/gtest.h>

#include <string>

#include "cache/object_cache.h"
#include "http/client.h"
#include "odg/graph.h"
#include "pagegen/renderer.h"
#include "server/serving.h"

namespace nagano::server {
namespace {

class ServerProgramTest : public ::testing::Test {
 protected:
  void SetUp() override {
    renderer_.RegisterExact("/dyn", [this](const pagegen::RenderRequest&) {
      ++renders_;
      return Result<std::string>("dynamic body v" + std::to_string(renders_));
    });
    renderer_.RegisterPrefix("/user/", [](const pagegen::RenderRequest& req) {
      return Result<std::string>("personal " + std::string(req.page));
    });
  }

  odg::ObjectDependenceGraph graph_;
  cache::ObjectCache cache_;
  pagegen::PageRenderer renderer_{&graph_, &cache_};
  int renders_ = 0;
};

TEST_F(ServerProgramTest, StaticPageServed) {
  DynamicPageServer program(&cache_, &renderer_);
  program.AddStaticPage("/about", "static content");
  const auto out = program.Serve("/about");
  EXPECT_EQ(out.cls, ServeClass::kStatic);
  EXPECT_EQ(out.body, "static content");
  EXPECT_EQ(out.cpu_cost, program.costs().static_page);
  EXPECT_EQ(program.stats().static_hits, 1u);
}

TEST_F(ServerProgramTest, FirstDynamicRequestGeneratesThenCaches) {
  DynamicPageServer program(&cache_, &renderer_);
  const auto miss = program.Serve("/dyn");
  EXPECT_EQ(miss.cls, ServeClass::kCacheMissGenerated);
  EXPECT_EQ(miss.cpu_cost, program.costs().generate_dynamic);
  EXPECT_EQ(miss.body, "dynamic body v1");

  const auto hit = program.Serve("/dyn");
  EXPECT_EQ(hit.cls, ServeClass::kCacheHit);
  EXPECT_EQ(hit.cpu_cost, program.costs().cached_dynamic);
  EXPECT_EQ(hit.body, "dynamic body v1");  // cached copy, not regenerated
  EXPECT_EQ(renders_, 1);

  const auto stats = program.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_DOUBLE_EQ(stats.CacheHitRate(), 0.5);
}

TEST_F(ServerProgramTest, CachedDynamicCostsLikeStatic) {
  // §2: "Cached dynamic pages can be served ... at roughly the same rates
  // as static pages."
  DynamicPageServer program(&cache_, &renderer_);
  program.Serve("/dyn");
  const auto hit = program.Serve("/dyn");
  EXPECT_EQ(hit.cpu_cost, program.costs().cached_dynamic);
  EXPECT_LE(hit.cpu_cost, 2 * program.costs().static_page);
  // And an uncached dynamic page costs orders of magnitude more.
  EXPECT_GE(program.costs().generate_dynamic, 50 * program.costs().static_page);
}

TEST_F(ServerProgramTest, NotFound) {
  DynamicPageServer program(&cache_, &renderer_);
  const auto out = program.Serve("/ghost");
  EXPECT_EQ(out.cls, ServeClass::kNotFound);
  EXPECT_EQ(program.stats().not_found, 1u);
}

TEST_F(ServerProgramTest, NeverCachePrefixBypassesCache) {
  DynamicPageServer::Options options;
  options.never_cache_prefixes = {"/user/"};
  DynamicPageServer program(&cache_, &renderer_, options);
  const auto first = program.Serve("/user/alice");
  const auto second = program.Serve("/user/alice");
  EXPECT_EQ(first.cls, ServeClass::kCacheMissGenerated);
  EXPECT_EQ(second.cls, ServeClass::kCacheMissGenerated);
  EXPECT_FALSE(cache_.Contains("/user/alice"));
}

TEST_F(ServerProgramTest, SkipBodyOnSimPath) {
  DynamicPageServer program(&cache_, &renderer_);
  program.Serve("/dyn");
  const auto out = program.Serve("/dyn", /*include_body=*/false);
  EXPECT_EQ(out.cls, ServeClass::kCacheHit);
  EXPECT_TRUE(out.body.empty());
  EXPECT_GT(out.bytes, 0u);
}

TEST_F(ServerProgramTest, TriggerUpdatedPageServedWithoutRegeneration) {
  // Update-in-place externally (as the trigger monitor does); the server
  // program serves the fresh copy as a plain hit.
  DynamicPageServer program(&cache_, &renderer_);
  program.Serve("/dyn");
  cache_.Put("/dyn", "externally refreshed");
  const auto hit = program.Serve("/dyn");
  EXPECT_EQ(hit.cls, ServeClass::kCacheHit);
  EXPECT_EQ(hit.body, "externally refreshed");
  EXPECT_EQ(renders_, 1);
}

// --- HTTP front end -------------------------------------------------------------

TEST_F(ServerProgramTest, HttpFrontEndServes) {
  DynamicPageServer program(&cache_, &renderer_);
  program.AddStaticPage("/about", "static content");

  HttpFrontEnd front(&program, {});
  ASSERT_TRUE(front.Start().ok());

  auto resp =
      http::HttpClient::FetchOnce("127.0.0.1", front.port(), "/about");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_EQ(resp.value().body, "static content");
  EXPECT_EQ(resp.value().headers.at("X-Cache"), "STATIC");

  auto dyn = http::HttpClient::FetchOnce("127.0.0.1", front.port(), "/dyn");
  ASSERT_TRUE(dyn.ok());
  EXPECT_EQ(dyn.value().headers.at("X-Cache"), "MISS");

  auto dyn2 = http::HttpClient::FetchOnce("127.0.0.1", front.port(), "/dyn");
  ASSERT_TRUE(dyn2.ok());
  EXPECT_EQ(dyn2.value().headers.at("X-Cache"), "HIT");
  EXPECT_EQ(dyn2.value().body, "dynamic body v1");

  auto missing =
      http::HttpClient::FetchOnce("127.0.0.1", front.port(), "/ghost");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);
  front.Stop();
}

TEST_F(ServerProgramTest, HttpFrontEndRejectsNonGet) {
  DynamicPageServer program(&cache_, &renderer_);
  HttpFrontEnd front(&program, {});
  ASSERT_TRUE(front.Start().ok());

  http::HttpClient client("127.0.0.1", front.port());
  http::HttpRequest req;
  req.method = "DELETE";
  req.target = "/dyn";
  auto resp = client.Roundtrip(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, 405);
  front.Stop();
}

TEST_F(ServerProgramTest, HttpFrontEndHeadOmitsBody) {
  DynamicPageServer program(&cache_, &renderer_);
  program.AddStaticPage("/about", "static content");
  HttpFrontEnd front(&program, {});
  ASSERT_TRUE(front.Start().ok());

  http::HttpClient client("127.0.0.1", front.port());
  http::HttpRequest req;
  req.method = "HEAD";
  req.target = "/about";
  auto resp = client.Roundtrip(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, 200);
  EXPECT_TRUE(resp.value().body.empty());
  front.Stop();
}

}  // namespace
}  // namespace nagano::server
