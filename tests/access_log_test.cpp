#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "server/access_log.h"

namespace nagano::server {
namespace {

TEST(AccessLogTest, AppendAndSnapshot) {
  AccessLog log;
  log.Append(5 * kSecond, "/day/1", ServeClass::kCacheHit, 1024,
             FromMillis(12), 2);
  ASSERT_EQ(log.size(), 1u);
  const auto records = log.Snapshot();
  EXPECT_EQ(records[0].at, 5 * kSecond);
  EXPECT_EQ(log.PageName(records[0].page_id), "/day/1");
  EXPECT_EQ(records[0].cls, ServeClass::kCacheHit);
  EXPECT_EQ(records[0].bytes, 1024u);
  EXPECT_EQ(records[0].response_us, 12'000u);
  EXPECT_EQ(records[0].region, 2);
}

TEST(AccessLogTest, PageIdsInterned) {
  AccessLog log;
  for (int i = 0; i < 100; ++i) {
    log.Append(i, "/medals", ServeClass::kCacheHit, 1, 0);
  }
  const auto records = log.Snapshot();
  for (const auto& r : records) EXPECT_EQ(r.page_id, records[0].page_id);
}

TEST(AccessLogTest, OverwideFieldsSaturateAndAreCounted) {
  metrics::MetricRegistry registry;
  metrics::Options options;
  options.registry = &registry;
  options.instance = "clamp";
  AccessLog log(options);
  metrics::Counter* clamps = registry.GetCounter(
      "nagano_access_log_field_clamps_total", {{"site", "clamp"}});

  // A response slower than uint32_t microseconds saturates instead of
  // wrapping around to a fast-looking record.
  const TimeNs too_slow = (static_cast<TimeNs>(UINT32_MAX) + 5) * kMicrosecond;
  log.Append(0, "/slow", ServeClass::kCacheHit, 10, too_slow);
  // A negative duration (misbehaving clock) pins to zero.
  log.Append(0, "/backwards", ServeClass::kCacheHit, 10, -kSecond);
  // In-range records never touch the counter.
  log.Append(0, "/fine", ServeClass::kCacheHit, 10, FromMillis(5));

  const auto records = log.Snapshot();
  EXPECT_EQ(records[0].response_us, UINT32_MAX);
  EXPECT_EQ(records[1].response_us, 0u);
  EXPECT_EQ(records[2].response_us, 5'000u);
  EXPECT_EQ(clamps->value(), 2u);
}

TEST(AccessLogTest, Clear) {
  AccessLog log;
  log.Append(0, "/x", ServeClass::kStatic, 1, 0);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(AccessLogTest, ConcurrentAppends) {
  AccessLog log;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < 1000; ++i) {
        log.Append(i, "/p" + std::to_string(t), ServeClass::kCacheHit, 10, 0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.size(), 4000u);
}

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two "days" of traffic: day 0 has 3 hits on /a and 1 on /b; day 1 has
    // 2 hits on /b. One miss on day 1.
    log_.Append(1 * kHour, "/a", ServeClass::kCacheHit, 100, FromMillis(10), 0);
    log_.Append(2 * kHour, "/a", ServeClass::kCacheHit, 100, FromMillis(20), 0);
    log_.Append(26 * kHour, "/b", ServeClass::kCacheHit, 300, FromMillis(30), 1);
    log_.Append(2 * kHour + kMinute, "/a", ServeClass::kCacheHit, 100,
                FromMillis(10), 0);
    log_.Append(3 * kHour, "/b", ServeClass::kStatic, 50, FromMillis(5), 1);
    log_.Append(27 * kHour, "/b", ServeClass::kCacheMissGenerated, 300,
                FromMillis(500), 1);
  }
  AccessLog log_;
};

TEST_F(AnalyzerTest, Totals) {
  LogAnalyzer analyzer(log_);
  EXPECT_EQ(analyzer.TotalHits(), 6u);
  EXPECT_EQ(analyzer.TotalBytes(), 100u + 100u + 300u + 100u + 50u + 300u);
}

TEST_F(AnalyzerTest, HitsByDay) {
  LogAnalyzer analyzer(log_);
  const auto by_day = analyzer.HitsByDay(2);
  EXPECT_DOUBLE_EQ(by_day.at(0), 4.0);
  EXPECT_DOUBLE_EQ(by_day.at(1), 2.0);
}

TEST_F(AnalyzerTest, BytesByDay) {
  LogAnalyzer analyzer(log_);
  const auto by_day = analyzer.BytesByDay(2);
  EXPECT_DOUBLE_EQ(by_day.at(0), 350.0);
  EXPECT_DOUBLE_EQ(by_day.at(1), 600.0);
}

TEST_F(AnalyzerTest, HitsByHourFoldsDays) {
  LogAnalyzer analyzer(log_);
  const auto by_hour = analyzer.HitsByHour();
  EXPECT_DOUBLE_EQ(by_hour.at(2), 3.0);  // 2h, 2h01, 26h (=2h next day)
  EXPECT_DOUBLE_EQ(by_hour.at(1), 1.0);
  EXPECT_DOUBLE_EQ(by_hour.at(3), 2.0);  // 3h and 27h
}

TEST_F(AnalyzerTest, PeakMinute) {
  AccessLog log;
  for (int i = 0; i < 5; ++i) {
    log.Append(10 * kMinute + i * kSecond, "/a", ServeClass::kCacheHit, 1, 0);
  }
  log.Append(11 * kMinute, "/a", ServeClass::kCacheHit, 1, 0);
  LogAnalyzer analyzer(log);
  const auto [minute, hits] = analyzer.PeakMinute();
  EXPECT_EQ(minute, 10);
  EXPECT_EQ(hits, 5u);
}

TEST_F(AnalyzerTest, ServeClassBreakdownAndHitRate) {
  LogAnalyzer analyzer(log_);
  const auto by_class = analyzer.ByServeClass();
  EXPECT_EQ(by_class.at(ServeClass::kCacheHit), 4u);
  EXPECT_EQ(by_class.at(ServeClass::kStatic), 1u);
  EXPECT_EQ(by_class.at(ServeClass::kCacheMissGenerated), 1u);
  EXPECT_DOUBLE_EQ(analyzer.DynamicHitRate(), 4.0 / 5.0);
}

TEST_F(AnalyzerTest, TopPages) {
  LogAnalyzer analyzer(log_);
  const auto top = analyzer.TopPages(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, "/a");
  EXPECT_EQ(top[0].second, 3u);
  const auto both = analyzer.TopPages(10);
  EXPECT_EQ(both.size(), 2u);
  EXPECT_EQ(both[1].second, 3u);  // /b also 3 hits, tie-broken by name
}

TEST_F(AnalyzerTest, ResponseSecondsPerRegion) {
  LogAnalyzer analyzer(log_);
  const auto all = analyzer.ResponseSeconds();
  EXPECT_EQ(all.count(), 6u);
  const auto region1 = analyzer.ResponseSeconds(1);
  EXPECT_EQ(region1.count(), 3u);
  EXPECT_GT(region1.max(), 0.4);  // the 500ms miss
}

TEST_F(AnalyzerTest, EpochOffsetsDays) {
  LogAnalyzer analyzer(log_, 24 * kHour);  // epoch at hour 24
  const auto by_day = analyzer.HitsByDay(2);
  EXPECT_DOUBLE_EQ(by_day.at(0), 2.0);  // only the 26h/27h records remain >= 0
}

}  // namespace
}  // namespace nagano::server
