#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "odg/dup.h"
#include "odg/graph.h"

namespace nagano::odg {
namespace {

std::vector<NodeId> AffectedIds(const DupResult& r) {
  std::vector<NodeId> ids;
  for (const auto& a : r.affected) ids.push_back(a.id);
  return ids;
}

bool Contains(const DupResult& r, NodeId id) {
  const auto ids = AffectedIds(r);
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

double ObsolescenceOf(const DupResult& r, NodeId id) {
  for (const auto& a : r.affected) {
    if (a.id == id) return a.obsolescence;
  }
  return -1.0;
}

// --- graph basics -----------------------------------------------------------

TEST(GraphTest, EnsureNodeIdempotent) {
  ObjectDependenceGraph g;
  const NodeId a = g.EnsureNode("a", NodeKind::kObject);
  EXPECT_EQ(g.EnsureNode("a", NodeKind::kObject), a);
  EXPECT_EQ(g.node_count(), 1u);
}

TEST(GraphTest, KindWidensToBoth) {
  ObjectDependenceGraph g;
  const NodeId a = g.EnsureNode("a", NodeKind::kObject);
  EXPECT_EQ(g.kind(a), NodeKind::kObject);
  g.EnsureNode("a", NodeKind::kUnderlyingData);
  EXPECT_EQ(g.kind(a), NodeKind::kBoth);
}

TEST(GraphTest, FindUnknownReturnsInvalid) {
  ObjectDependenceGraph g;
  EXPECT_EQ(g.Find("ghost"), kInvalidNode);
  g.EnsureNode("real", NodeKind::kObject);
  EXPECT_NE(g.Find("real"), kInvalidNode);
}

TEST(GraphTest, NameRoundtrip) {
  ObjectDependenceGraph g;
  const NodeId a = g.EnsureNode("results:event:12", NodeKind::kUnderlyingData);
  EXPECT_EQ(g.name(a), "results:event:12");
}

TEST(GraphTest, AddDependenceCreatesEdge) {
  ObjectDependenceGraph g;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId o = g.EnsureNode("o", NodeKind::kObject);
  EXPECT_TRUE(g.AddDependence(d, o).ok());
  EXPECT_TRUE(g.HasEdge(d, o));
  EXPECT_FALSE(g.HasEdge(o, d));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphTest, AddDependenceDuplicateIsReweight) {
  ObjectDependenceGraph g;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId o = g.EnsureNode("o", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d, o, 1.0).ok());
  ASSERT_TRUE(g.AddDependence(d, o, 5.0).ok());
  EXPECT_EQ(g.edge_count(), 1u);
  const auto edges = g.OutEdges(d);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_DOUBLE_EQ(edges[0].weight, 5.0);
  const auto in = g.InEdges(o);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_DOUBLE_EQ(in[0].weight, 5.0);
}

TEST(GraphTest, SelfEdgeRejected) {
  ObjectDependenceGraph g;
  const NodeId a = g.EnsureNode("a", NodeKind::kBoth);
  EXPECT_EQ(g.AddDependence(a, a).code(), ErrorCode::kInvalidArgument);
}

TEST(GraphTest, NonPositiveWeightRejected) {
  ObjectDependenceGraph g;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId o = g.EnsureNode("o", NodeKind::kObject);
  EXPECT_EQ(g.AddDependence(d, o, 0.0).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(g.AddDependence(d, o, -1.0).code(), ErrorCode::kInvalidArgument);
}

TEST(GraphTest, UnknownNodeRejected) {
  ObjectDependenceGraph g;
  const NodeId a = g.EnsureNode("a", NodeKind::kObject);
  EXPECT_EQ(g.AddDependence(a, 999).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(g.AddDependence(999, a).code(), ErrorCode::kInvalidArgument);
}

TEST(GraphTest, RemoveDependence) {
  ObjectDependenceGraph g;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId o = g.EnsureNode("o", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d, o).ok());
  EXPECT_TRUE(g.RemoveDependence(d, o).ok());
  EXPECT_FALSE(g.HasEdge(d, o));
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.RemoveDependence(d, o).code(), ErrorCode::kNotFound);
}

TEST(GraphTest, ClearInEdgesDropsOnlyIncoming) {
  ObjectDependenceGraph g;
  const NodeId d1 = g.EnsureNode("d1", NodeKind::kUnderlyingData);
  const NodeId d2 = g.EnsureNode("d2", NodeKind::kUnderlyingData);
  const NodeId frag = g.EnsureNode("frag", NodeKind::kBoth);
  const NodeId page = g.EnsureNode("page", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d1, frag).ok());
  ASSERT_TRUE(g.AddDependence(d2, frag).ok());
  ASSERT_TRUE(g.AddDependence(frag, page).ok());

  g.ClearInEdges(frag);
  EXPECT_FALSE(g.HasEdge(d1, frag));
  EXPECT_FALSE(g.HasEdge(d2, frag));
  EXPECT_TRUE(g.HasEdge(frag, page));  // outgoing edge survives
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphTest, VersionBumpsOnMutation) {
  ObjectDependenceGraph g;
  const uint64_t v0 = g.stats().version;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId o = g.EnsureNode("o", NodeKind::kObject);
  EXPECT_GT(g.stats().version, v0);
  const uint64_t v1 = g.stats().version;
  ASSERT_TRUE(g.AddDependence(d, o).ok());
  EXPECT_GT(g.stats().version, v1);
}

// --- IsSimple ------------------------------------------------------------------

TEST(GraphTest, BipartiteUnweightedIsSimple) {
  ObjectDependenceGraph g;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId o1 = g.EnsureNode("o1", NodeKind::kObject);
  const NodeId o2 = g.EnsureNode("o2", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d, o1).ok());
  ASSERT_TRUE(g.AddDependence(d, o2).ok());
  EXPECT_TRUE(g.IsSimple());
}

TEST(GraphTest, CustomWeightBreaksSimplicity) {
  ObjectDependenceGraph g;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId o = g.EnsureNode("o", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d, o, 2.0).ok());
  EXPECT_FALSE(g.IsSimple());
}

TEST(GraphTest, IntermediateVertexBreaksSimplicity) {
  ObjectDependenceGraph g;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId frag = g.EnsureNode("frag", NodeKind::kBoth);
  const NodeId page = g.EnsureNode("page", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d, frag).ok());
  EXPECT_TRUE(g.IsSimple());  // frag has only incoming so far
  ASSERT_TRUE(g.AddDependence(frag, page).ok());
  EXPECT_FALSE(g.IsSimple());
}

// --- DUP: simple path --------------------------------------------------------------

TEST(DupTest, SimpleGraphUsesFastPath) {
  ObjectDependenceGraph g;
  const NodeId d1 = g.EnsureNode("d1", NodeKind::kUnderlyingData);
  const NodeId d2 = g.EnsureNode("d2", NodeKind::kUnderlyingData);
  const NodeId o1 = g.EnsureNode("o1", NodeKind::kObject);
  const NodeId o2 = g.EnsureNode("o2", NodeKind::kObject);
  const NodeId o3 = g.EnsureNode("o3", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d1, o1).ok());
  ASSERT_TRUE(g.AddDependence(d1, o2).ok());
  ASSERT_TRUE(g.AddDependence(d2, o3).ok());

  const NodeId changed[] = {d1};
  const auto r = DupEngine::ComputeAffected(g, changed);
  EXPECT_TRUE(r.used_simple_path);
  EXPECT_EQ(AffectedIds(r), (std::vector<NodeId>{o1, o2}));
  EXPECT_DOUBLE_EQ(ObsolescenceOf(r, o1), 1.0);
}

TEST(DupTest, SimplePathCanBeDisabled) {
  ObjectDependenceGraph g;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId o = g.EnsureNode("o", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d, o).ok());

  DupOptions options;
  options.enable_simple_fast_path = false;
  const NodeId changed[] = {d};
  const auto r = DupEngine::ComputeAffected(g, changed, options);
  EXPECT_FALSE(r.used_simple_path);
  EXPECT_EQ(AffectedIds(r), (std::vector<NodeId>{o}));
}

TEST(DupTest, EmptyChangeSet) {
  ObjectDependenceGraph g;
  g.EnsureNode("d", NodeKind::kUnderlyingData);
  const auto r = DupEngine::ComputeAffected(g, {});
  EXPECT_TRUE(r.affected.empty());
}

TEST(DupTest, UnknownChangedIdsIgnored) {
  ObjectDependenceGraph g;
  g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId changed[] = {12345};
  const auto r = DupEngine::ComputeAffected(g, changed);
  EXPECT_TRUE(r.affected.empty());
}

// --- DUP: general path -----------------------------------------------------------------

TEST(DupTest, TransitivePropagation) {
  // d -> frag -> page: change to d affects both, fragment first.
  ObjectDependenceGraph g;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId frag = g.EnsureNode("frag", NodeKind::kBoth);
  const NodeId page = g.EnsureNode("page", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d, frag).ok());
  ASSERT_TRUE(g.AddDependence(frag, page).ok());

  const NodeId changed[] = {d};
  const auto r = DupEngine::ComputeAffected(g, changed);
  EXPECT_FALSE(r.used_simple_path);
  ASSERT_EQ(r.affected.size(), 2u);
  EXPECT_EQ(r.affected[0].id, frag);  // dependency order: fragment first
  EXPECT_EQ(r.affected[1].id, page);
  EXPECT_DOUBLE_EQ(r.affected[0].obsolescence, 1.0);
  EXPECT_DOUBLE_EQ(r.affected[1].obsolescence, 1.0);
}

TEST(DupTest, ChangedNodesExcludedFromAffected) {
  ObjectDependenceGraph g;
  const NodeId both = g.EnsureNode("both", NodeKind::kBoth);
  const NodeId page = g.EnsureNode("page", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(both, page).ok());
  const NodeId changed[] = {both};
  const auto r = DupEngine::ComputeAffected(g, changed);
  EXPECT_FALSE(Contains(r, both));
  EXPECT_TRUE(Contains(r, page));
}

TEST(DupTest, PureDataIntermediatesNotReported) {
  // d -> mid(data) -> o: mid is underlying data only, never cached.
  ObjectDependenceGraph g;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId mid = g.EnsureNode("mid", NodeKind::kUnderlyingData);
  const NodeId o = g.EnsureNode("o", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d, mid).ok());
  ASSERT_TRUE(g.AddDependence(mid, o).ok());
  const NodeId changed[] = {d};
  const auto r = DupEngine::ComputeAffected(g, changed);
  EXPECT_FALSE(Contains(r, mid));
  EXPECT_TRUE(Contains(r, o));
  EXPECT_EQ(r.visited, 3u);
}

TEST(DupTest, PaperFigure1Weights) {
  // Figure 1: go1 --5--> go5, go2 --1--> go5, go2,go3,go4 --1--> go6,
  // go5,go6 --1--> go7. Change go2.
  ObjectDependenceGraph g;
  const NodeId go1 = g.EnsureNode("go1", NodeKind::kUnderlyingData);
  const NodeId go2 = g.EnsureNode("go2", NodeKind::kUnderlyingData);
  const NodeId go3 = g.EnsureNode("go3", NodeKind::kUnderlyingData);
  const NodeId go4 = g.EnsureNode("go4", NodeKind::kUnderlyingData);
  const NodeId go5 = g.EnsureNode("go5", NodeKind::kBoth);
  const NodeId go6 = g.EnsureNode("go6", NodeKind::kBoth);
  const NodeId go7 = g.EnsureNode("go7", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(go1, go5, 5.0).ok());
  ASSERT_TRUE(g.AddDependence(go2, go5, 1.0).ok());
  ASSERT_TRUE(g.AddDependence(go2, go6, 1.0).ok());
  ASSERT_TRUE(g.AddDependence(go3, go6, 1.0).ok());
  ASSERT_TRUE(g.AddDependence(go4, go6, 1.0).ok());
  ASSERT_TRUE(g.AddDependence(go5, go7, 1.0).ok());
  ASSERT_TRUE(g.AddDependence(go6, go7, 1.0).ok());

  const NodeId changed[] = {go2};
  const auto r = DupEngine::ComputeAffected(g, changed);
  // Paper: "DUP determines that nodes go5 and go6 also change. By
  // transitivity, go7 also changes."
  EXPECT_TRUE(Contains(r, go5));
  EXPECT_TRUE(Contains(r, go6));
  EXPECT_TRUE(Contains(r, go7));
  // go5's obsolescence is small: only 1 of its 6 units of input changed.
  EXPECT_NEAR(ObsolescenceOf(r, go5), 1.0 / 6.0, 1e-9);
  EXPECT_NEAR(ObsolescenceOf(r, go6), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(ObsolescenceOf(r, go7), (1.0 / 6.0 + 1.0 / 3.0) / 2.0, 1e-9);

  // Changing go1 instead makes go5 heavily obsolete.
  const NodeId changed1[] = {go1};
  const auto r1 = DupEngine::ComputeAffected(g, changed1);
  EXPECT_NEAR(ObsolescenceOf(r1, go5), 5.0 / 6.0, 1e-9);
  EXPECT_FALSE(Contains(r1, go6));
}

TEST(DupTest, ThresholdSuppressesSlightlyObsolete) {
  // The paper: "save considerable CPU cycles by allowing pages to remain in
  // the cache which are only slightly obsolete."
  ObjectDependenceGraph g;
  const NodeId big = g.EnsureNode("big", NodeKind::kUnderlyingData);
  const NodeId small = g.EnsureNode("small", NodeKind::kUnderlyingData);
  const NodeId page = g.EnsureNode("page", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(big, page, 9.0).ok());
  ASSERT_TRUE(g.AddDependence(small, page, 1.0).ok());

  DupOptions options;
  options.obsolescence_threshold = 0.5;
  const NodeId changed_small[] = {small};
  EXPECT_TRUE(
      DupEngine::ComputeAffected(g, changed_small, options).affected.empty());
  const NodeId changed_big[] = {big};
  EXPECT_EQ(
      DupEngine::ComputeAffected(g, changed_big, options).affected.size(), 1u);
}

TEST(DupTest, MultipleChangedInputsAccumulate) {
  ObjectDependenceGraph g;
  const NodeId a = g.EnsureNode("a", NodeKind::kUnderlyingData);
  const NodeId b = g.EnsureNode("b", NodeKind::kUnderlyingData);
  const NodeId o = g.EnsureNode("o", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(a, o, 3.0).ok());
  ASSERT_TRUE(g.AddDependence(b, o, 1.0).ok());
  DupOptions options;
  options.enable_simple_fast_path = false;
  const NodeId changed[] = {a, b};
  const auto r = DupEngine::ComputeAffected(g, changed, options);
  EXPECT_DOUBLE_EQ(ObsolescenceOf(r, o), 1.0);  // all inputs changed
}

TEST(DupTest, CycleHandledViaScc) {
  // a -> x <-> y -> o : x,y mutually dependent (kBoth), both become
  // obsolete; o downstream of the cycle.
  ObjectDependenceGraph g;
  const NodeId a = g.EnsureNode("a", NodeKind::kUnderlyingData);
  const NodeId x = g.EnsureNode("x", NodeKind::kBoth);
  const NodeId y = g.EnsureNode("y", NodeKind::kBoth);
  const NodeId o = g.EnsureNode("o", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(a, x).ok());
  ASSERT_TRUE(g.AddDependence(x, y).ok());
  ASSERT_TRUE(g.AddDependence(y, x).ok());
  ASSERT_TRUE(g.AddDependence(y, o).ok());

  const NodeId changed[] = {a};
  const auto r = DupEngine::ComputeAffected(g, changed);
  EXPECT_TRUE(Contains(r, x));
  EXPECT_TRUE(Contains(r, y));
  EXPECT_TRUE(Contains(r, o));
  // Members of the SCC share the component obsolescence.
  EXPECT_DOUBLE_EQ(ObsolescenceOf(r, x), ObsolescenceOf(r, y));
  // x and y must both precede o in the regeneration order.
  const auto ids = AffectedIds(r);
  const auto pos_o = std::find(ids.begin(), ids.end(), o) - ids.begin();
  const auto pos_x = std::find(ids.begin(), ids.end(), x) - ids.begin();
  const auto pos_y = std::find(ids.begin(), ids.end(), y) - ids.begin();
  EXPECT_LT(pos_x, pos_o);
  EXPECT_LT(pos_y, pos_o);
}

TEST(DupTest, DisconnectedComponentsUntouched) {
  ObjectDependenceGraph g;
  const NodeId d1 = g.EnsureNode("d1", NodeKind::kUnderlyingData);
  const NodeId o1 = g.EnsureNode("o1", NodeKind::kObject);
  const NodeId d2 = g.EnsureNode("d2", NodeKind::kUnderlyingData);
  const NodeId o2 = g.EnsureNode("o2", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d1, o1).ok());
  ASSERT_TRUE(g.AddDependence(d2, o2).ok());
  const NodeId changed[] = {d1};
  const auto r = DupEngine::ComputeAffected(g, changed);
  EXPECT_TRUE(Contains(r, o1));
  EXPECT_FALSE(Contains(r, o2));
}

TEST(DupTest, DiamondCountedOnce) {
  ObjectDependenceGraph g;
  const NodeId d = g.EnsureNode("d", NodeKind::kUnderlyingData);
  const NodeId f1 = g.EnsureNode("f1", NodeKind::kBoth);
  const NodeId f2 = g.EnsureNode("f2", NodeKind::kBoth);
  const NodeId page = g.EnsureNode("page", NodeKind::kObject);
  ASSERT_TRUE(g.AddDependence(d, f1).ok());
  ASSERT_TRUE(g.AddDependence(d, f2).ok());
  ASSERT_TRUE(g.AddDependence(f1, page).ok());
  ASSERT_TRUE(g.AddDependence(f2, page).ok());
  const NodeId changed[] = {d};
  const auto r = DupEngine::ComputeAffected(g, changed);
  EXPECT_EQ(r.affected.size(), 3u);
  const auto ids = AffectedIds(r);
  EXPECT_EQ(std::count(ids.begin(), ids.end(), page), 1);
  EXPECT_DOUBLE_EQ(ObsolescenceOf(r, page), 1.0);
}

}  // namespace
}  // namespace nagano::odg
