#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/intern.h"
#include "common/queue.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace nagano {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing page");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "missing page");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing page");
}

TEST(StatusTest, AllErrorFactoriesProduceDistinctCodes) {
  std::set<ErrorCode> codes = {
      NotFoundError("").code(),          AlreadyExistsError("").code(),
      InvalidArgumentError("").code(),   FailedPreconditionError("").code(),
      UnavailableError("").code(),       ResourceExhaustedError("").code(),
      DataLossError("").code(),          InternalError("").code(),
  };
  EXPECT_EQ(codes.size(), 8u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("body"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "body");
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBelow(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t x = rng.NextInt(3, 6);
    ASSERT_GE(x, 3);
    ASSERT_LE(x, 6);
    saw_lo |= (x == 3);
    saw_hi |= (x == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.NextBool(0.3);
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(rng.NextGaussian(10.0, 2.0));
  EXPECT_NEAR(stat.mean(), 10.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(23);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 2);
}

// --- Zipf ---------------------------------------------------------------------

TEST(ZipfTest, RankZeroIsHottest) {
  Rng rng(31);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfTest, MatchesTheoreticalHead) {
  Rng rng(37);
  ZipfDistribution zipf(1000, 1.0);
  // H(1000) ≈ 7.485; p(rank 0) ≈ 1/7.485 ≈ 0.1336.
  int head = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) head += (zipf.Sample(rng) == 0);
  EXPECT_NEAR(head / double(n), 0.1336, 0.01);
}

TEST(ZipfTest, SkewZeroIsUniform) {
  Rng rng(41);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(ZipfTest, SingleElement) {
  Rng rng(43);
  ZipfDistribution zipf(1, 1.0);
  EXPECT_EQ(zipf.Sample(rng), 0u);
}

// --- RunningStat -----------------------------------------------------------------

TEST(RunningStatTest, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  RunningStat a, b, all;
  Rng rng(47);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextGaussian(3, 1);
    a.Add(x);
    all.Add(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double x = rng.NextGaussian(8, 2);
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

// --- Histogram -------------------------------------------------------------------

TEST(HistogramTest, Empty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, MeanExact) {
  Histogram h;
  for (double x : {1.0, 2.0, 3.0, 4.0}) h.Add(x);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 4.0);
}

TEST(HistogramTest, PercentileWithinBucketError) {
  Histogram h;
  Rng rng(53);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.NextExponential(100.0);
    values.push_back(x);
    h.Add(x);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = values[static_cast<size_t>(q * (values.size() - 1))];
    EXPECT_NEAR(h.Percentile(q), exact, exact * 0.05) << "q=" << q;
  }
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Add(1.0);
  a.Add(10.0);
  b.Add(100.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 100.0);
  EXPECT_EQ(a.min(), 1.0);
}

TEST(HistogramTest, HandlesZeroAndNegative) {
  Histogram h;
  h.Add(0.0);
  h.Add(-5.0);  // clamped into the first bucket
  h.Add(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), -5.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(3.0);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

// --- TimeSeries --------------------------------------------------------------------

TEST(TimeSeriesTest, AccumulateAndPeak) {
  TimeSeries ts(24);
  ts.Add(3, 5.0);
  ts.Add(3, 2.0);
  ts.Add(7, 10.0);
  EXPECT_DOUBLE_EQ(ts.at(3), 7.0);
  EXPECT_DOUBLE_EQ(ts.total(), 17.0);
  EXPECT_EQ(ts.PeakSlot(), 7u);
}

TEST(TimeSeriesTest, OutOfRangeIgnoredButCounted) {
  TimeSeries ts(4);
  ts.Add(99, 1.0);
  ts.Add(4, 1.0);  // first slot past the end
  EXPECT_DOUBLE_EQ(ts.total(), 0.0);
  EXPECT_EQ(ts.overflow(), 2u);
  ts.Add(3, 1.0);
  EXPECT_EQ(ts.overflow(), 2u);  // in-range adds don't count
}

TEST(TimeSeriesTest, AsciiChartHasOneRowPerSlot) {
  TimeSeries ts(3);
  ts.Add(0, 1);
  ts.Add(1, 2);
  ts.Add(2, 4);
  const std::string chart =
      AsciiBarChart(ts, {"a", "b", "c"}, 10);
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 3);
  EXPECT_NE(chart.find("##########"), std::string::npos);  // peak row full
}

// --- Clock --------------------------------------------------------------------------

TEST(ClockTest, SimClockAdvances) {
  SimClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.AdvanceTo(1000);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(ClockTest, RealClockMonotonic) {
  RealClock& clock = RealClock::Instance();
  const TimeNs a = clock.Now();
  const TimeNs b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(ClockTest, UnitConversions) {
  EXPECT_EQ(FromMillis(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMillis(kMillisecond), 1.0);
  EXPECT_EQ(kDay, 24 * kHour);
}

// --- BlockingQueue ------------------------------------------------------------------

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
}

TEST(BlockingQueueTest, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseDrainsThenNullopt) {
  BlockingQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_FALSE(q.Push(8));
  EXPECT_EQ(q.Pop(), 7);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, BoundedTryPush) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, ConcurrentProducersConsumers) {
  BlockingQueue<int> q(64);
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4;
  std::atomic<int64_t> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[3 + p].join();
  q.Close();
  for (int c = 0; c < 3; ++c) threads[c].join();
  EXPECT_EQ(received.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(),
            int64_t(kProducers) * kPerProducer * (kPerProducer + 1) / 2);
}

// --- ThreadPool -------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.tasks_completed(), 100u);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, DestructorDrains) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

// --- StringInterner -----------------------------------------------------------------------

TEST(InternerTest, SameStringSameId) {
  StringInterner interner;
  const InternId a = interner.Intern("alpha");
  const InternId b = interner.Intern("alpha");
  EXPECT_EQ(a, b);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, IdsAreDense) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("b"), 1u);
  EXPECT_EQ(interner.Intern("c"), 2u);
}

TEST(InternerTest, NameRoundtrip) {
  StringInterner interner;
  const InternId id = interner.Intern("/day/7");
  EXPECT_EQ(interner.Name(id), "/day/7");
}

TEST(InternerTest, LookupWithoutIntern) {
  StringInterner interner;
  EXPECT_EQ(interner.Lookup("ghost"), kInvalidInternId);
  interner.Intern("ghost");
  EXPECT_NE(interner.Lookup("ghost"), kInvalidInternId);
}

TEST(InternerTest, ConcurrentInternConsistent) {
  StringInterner interner;
  std::vector<std::thread> threads;
  std::vector<std::vector<InternId>> ids(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        ids[t].push_back(interner.Intern("key" + std::to_string(i % 100)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(interner.size(), 100u);
  for (int t = 1; t < 4; ++t) {
    for (int i = 0; i < 500; ++i) EXPECT_EQ(ids[t][i], ids[0][i]);
  }
}

}  // namespace
}  // namespace nagano
