// Concurrency stress for the metrics registry: writer threads hammer
// counters/gauges/histograms while reader threads take snapshots and render
// the Prometheus exposition, and registrar threads race get-or-create on the
// same identities. Run under TSan by the ci.sh tsan leg (`-L stress`).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace nagano::metrics {
namespace {

TEST(MetricsStressTest, WritersSnapshottersAndRegistrarsRace) {
  MetricRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kSnapshotters = 2;
  constexpr int kRegistrars = 2;
  constexpr uint64_t kIncrementsPerWriter = 50'000;

  Counter* shared = registry.GetCounter("nagano_stress_shared_total");
  Gauge* gauge = registry.GetGauge("nagano_stress_gauge");
  Histogram* histogram = registry.GetHistogram("nagano_stress_ms");

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (uint64_t i = 0; i < kIncrementsPerWriter; ++i) {
        shared->Increment();
        gauge->Add(w % 2 == 0 ? 1.0 : -1.0);
        if (i % 64 == 0) histogram->Observe(static_cast<double>(i % 1000));
      }
    });
  }
  for (int s = 0; s < kSnapshotters; ++s) {
    threads.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto samples = registry.Snapshot();
        EXPECT_GE(samples.size(), 3u);
        const std::string text = registry.RenderPrometheus();
        EXPECT_FALSE(text.empty());
        // The shared counter is monotone across snapshots.
        const uint64_t now = shared->value();
        EXPECT_GE(now, last);
        last = now;
      }
    });
  }
  // Get-or-create racing on the same identities must converge on one cell
  // per identity and never invalidate cells already handed out.
  std::atomic<int> distinct_mismatch{0};
  for (int r = 0; r < kRegistrars; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2'000; ++i) {
        Counter* c = registry.GetCounter(
            "nagano_stress_race_total", {{"k", std::to_string(i % 16)}});
        c->Increment();
        if (registry.GetCounter("nagano_stress_shared_total") != shared) {
          distinct_mismatch.fetch_add(1);
        }
      }
    });
  }

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(shared->value(), kWriters * kIncrementsPerWriter);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);  // +1/-1 writers balance out
  EXPECT_EQ(distinct_mismatch.load(), 0);
  uint64_t race_total = 0;
  for (int i = 0; i < 16; ++i) {
    race_total += registry
                      .GetCounter("nagano_stress_race_total",
                                  {{"k", std::to_string(i)}})
                      ->value();
  }
  EXPECT_EQ(race_total, kRegistrars * 2'000u);
}

}  // namespace
}  // namespace nagano::metrics
