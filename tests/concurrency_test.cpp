// Concurrency stress suite for the structures on the trigger monitor's hot
// path: ObjectCache shards, CacheFleet distribution, BlockingQueue, and
// ThreadPool shutdown. These tests are labelled `stress` so the CI matrix
// runs them under ThreadSanitizer (see ci.sh) — their value is as much the
// interleavings they generate under TSan as the assertions they make.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cache/fleet.h"
#include "cache/object_cache.h"
#include "common/queue.h"
#include "common/thread_pool.h"
#include "db/database.h"
#include "odg/graph.h"
#include "pagegen/olympic.h"
#include "pagegen/renderer.h"
#include "trigger/trigger_monitor.h"

namespace nagano {
namespace {

std::string Key(int i) { return "/page/" + std::to_string(i); }

// --- ObjectCache: readers racing Put / UpdateInPlace / Invalidate -----------

TEST(CacheConcurrencyTest, ReadersRacingPutUpdateInvalidate) {
  cache::ObjectCache cache;
  constexpr int kKeys = 64;
  constexpr int kWriterRounds = 400;
  for (int i = 0; i < kKeys; ++i) cache.Put(Key(i), "seed");

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> lookups{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < kKeys; ++i) {
          auto obj = cache.Lookup(Key(i));
          ++n;
          if (obj != nullptr) {
            // The snapshot a reader holds stays internally consistent even
            // while writers replace the entry.
            EXPECT_FALSE(obj->body.empty());
            EXPECT_GE(obj->version, 1u);
          }
        }
      }
      lookups.fetch_add(n, std::memory_order_relaxed);
    });
  }

  std::thread putter([&] {
    for (int r = 0; r < kWriterRounds; ++r) {
      for (int i = 0; i < kKeys; i += 2) cache.Put(Key(i), "put-" + std::to_string(r));
    }
  });
  std::thread updater([&] {
    for (int r = 0; r < kWriterRounds; ++r) {
      for (int i = 1; i < kKeys; i += 2) {
        cache.UpdateInPlace(Key(i), "upd-" + std::to_string(r));
      }
    }
  });
  std::thread invalidator([&] {
    for (int r = 0; r < kWriterRounds; ++r) {
      for (int i = 3; i < kKeys; i += 8) {
        cache.Invalidate(Key(i));
        cache.Put(Key(i), "back-" + std::to_string(r));
      }
    }
  });

  putter.join();
  updater.join();
  invalidator.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  const cache::CacheStats stats = cache.stats();
  // Every Lookup counted exactly one hit or miss.
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  // Entry bookkeeping balances: inserts in, invalidations/evictions out.
  EXPECT_EQ(stats.inserts - stats.invalidations - stats.evictions,
            stats.entries);
  EXPECT_EQ(stats.entries, cache.Snapshot().size());
  EXPECT_GT(stats.updates_in_place, 0u);
  EXPECT_EQ(stats.evictions, 0u);  // unbounded configuration
}

TEST(CacheConcurrencyTest, PinnedEntriesSurviveEvictionChurn) {
  cache::ObjectCache::Options options;
  options.shards = 4;
  options.capacity_bytes = 16 * 1024;
  cache::ObjectCache cache(options);

  constexpr int kHot = 8;
  auto hot_key = [](int i) { return "/hot/" + std::to_string(i); };
  for (int i = 0; i < kHot; ++i) {
    cache.Put(hot_key(i), "hot-body-" + std::to_string(i));
    cache.Pin(hot_key(i), true);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < kHot; ++i) {
          auto obj = cache.Lookup(hot_key(i));
          // Pinned == the paper's hot pages: never evicted, never a miss.
          ASSERT_NE(obj, nullptr);
          EXPECT_EQ(obj->body, "hot-body-" + std::to_string(i));
        }
      }
    });
  }

  std::vector<std::thread> churners;
  for (int t = 0; t < 3; ++t) {
    churners.emplace_back([&, t] {
      const std::string filler(512, 'x');
      for (int i = 0; i < 2000; ++i) {
        cache.Put("/cold/" + std::to_string(t) + "/" + std::to_string(i),
                  filler);
      }
    });
  }
  for (auto& t : churners) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_GT(cache.stats().evictions, 0u);
  for (int i = 0; i < kHot; ++i) {
    EXPECT_TRUE(cache.Contains(hot_key(i))) << hot_key(i);
  }
}

// --- CacheFleet: distribution racing per-node reads -------------------------

TEST(FleetConcurrencyTest, PutAllInvalidateAllRacingNodeGets) {
  cache::CacheFleet fleet(4);
  constexpr int kKeys = 32;
  for (int i = 0; i < kKeys; ++i) fleet.PutAll(Key(i), "seed");

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t node = 0; node < fleet.size(); ++node) {
    readers.emplace_back([&, node] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < kKeys; ++i) {
          auto obj = fleet.node(node).Lookup(Key(i));
          if (obj != nullptr) {
            // Every observable body is one a distributor actually wrote.
            EXPECT_TRUE(obj->body == "seed" || obj->body == "final" ||
                        obj->body.starts_with("v"));
          }
        }
      }
    });
  }

  std::thread distributor([&] {
    for (int round = 0; round < 300; ++round) {
      for (int i = 0; i < kKeys; ++i) {
        fleet.PutAll(Key(i), "v" + std::to_string(round));
      }
      if (round % 7 == 0) {
        fleet.InvalidateAll(Key(round % kKeys));
      }
    }
    // Converge: one final full push.
    for (int i = 0; i < kKeys; ++i) fleet.PutAll(Key(i), "final");
  });

  distributor.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_TRUE(fleet.AllNodesIdentical());
  const cache::CacheStats total = fleet.TotalStats();
  EXPECT_EQ(total.entries, kKeys * fleet.size());
  EXPECT_GT(total.updates_in_place, 0u);
}

// --- BlockingQueue: MPMC with exact accounting ------------------------------

TEST(QueueConcurrencyTest, MpmcDrainAccountsForEveryPush) {
  BlockingQueue<int> queue;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;

  std::atomic<long long> pushed_sum{0};
  std::atomic<long long> popped_sum{0};
  std::atomic<uint64_t> popped_count{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      long long sum = 0;
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        if (queue.Push(value)) sum += value;
      }
      pushed_sum.fetch_add(sum, std::memory_order_relaxed);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      long long sum = 0;
      uint64_t n = 0;
      while (auto item = queue.Pop()) {
        sum += *item;
        ++n;
      }
      popped_sum.fetch_add(sum, std::memory_order_relaxed);
      popped_count.fetch_add(n, std::memory_order_relaxed);
    });
  }

  for (auto& t : producers) t.join();
  queue.Close();  // consumers drain the remainder then exit
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped_count.load(), uint64_t{kProducers} * kPerProducer);
  EXPECT_EQ(popped_sum.load(), pushed_sum.load());
  EXPECT_EQ(queue.size(), 0u);
}

// --- ThreadPool: shutdown audit regressions ---------------------------------

TEST(ThreadPoolShutdownTest, ShutdownDrainsEveryQueuedTask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  }
  pool.Shutdown();  // drain-then-join: nothing queued may be dropped
  EXPECT_EQ(ran.load(), 500);
  EXPECT_FALSE(pool.Submit([] {}));  // closed for business
}

TEST(ThreadPoolShutdownTest, ConcurrentShutdownIsIdempotent) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { ran.fetch_add(1); });
  }
  std::thread a([&] { pool.Shutdown(); });
  std::thread b([&] { pool.Shutdown(); });
  a.join();
  b.join();
  pool.Shutdown();  // and once more for good measure
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolShutdownTest, ThrowingTasksNeitherHangWaitNorKillWorkers) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&, i] {
      if (i % 2 == 0) throw std::runtime_error("render failed");
      ran.fetch_add(1);
    });
  }
  pool.Wait();  // must return even though half the tasks threw
  EXPECT_EQ(pool.tasks_completed(), 100u);
  EXPECT_EQ(pool.tasks_failed(), 50u);
  EXPECT_EQ(ran.load(), 50);
}

// --- TriggerMonitor: Stop() drains, Quiesce() never hangs -------------------

TEST(TriggerShutdownTest, StopDrainsQueuedChangesAndQuiesceReturns) {
  pagegen::OlympicConfig config;
  config.days = 2;
  config.num_sports = 2;
  config.events_per_sport = 2;
  config.athletes_per_event = 4;
  config.num_countries = 4;
  config.initial_news_articles = 2;

  db::Database db{db::DatabaseOptions{}};
  ASSERT_TRUE(pagegen::OlympicSite::Build(config, &db).ok());
  odg::ObjectDependenceGraph graph;
  cache::ObjectCache cache;
  pagegen::PageRenderer renderer(&graph, &cache);
  pagegen::OlympicSite::RegisterGenerators(config, &db, &renderer);
  ASSERT_TRUE(renderer.RenderAndCache("/event/1").ok());

  trigger::TriggerOptions options;
  options.policy = trigger::CachePolicy::kDupUpdateInPlace;
  options.worker_threads = 4;
  trigger::TriggerMonitor monitor(
      &db, &graph, &cache, &renderer,
      [&db](const db::ChangeRecord& change) {
        return pagegen::OlympicSite::MapChangeToDataNodes(change, db);
      },
      options);

  monitor.Start();
  for (int rank = 1; rank <= 4; ++rank) {
    ASSERT_TRUE(
        pagegen::OlympicSite::RecordResult(&db, 1, rank, rank, 90.0 - rank)
            .ok());
  }
  // Stop without quiescing: drain-then-join must still process everything.
  monitor.Stop();
  // After a drained Stop, the quiesce barrier is already satisfied — if a
  // queued change had been dropped with its counter stuck, this would hang
  // (and the ctest timeout would flag it).
  monitor.Quiesce();

  const auto stats = monitor.stats();
  EXPECT_GT(stats.changes_processed, 0u);
  EXPECT_GT(stats.objects_updated, 0u);
  const auto cached = cache.Peek("/event/1");
  ASSERT_NE(cached, nullptr);
  const auto fresh = renderer.RenderOnly("/event/1");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(cached->Materialize(), fresh.value());
  monitor.Stop();  // idempotent
}

}  // namespace
}  // namespace nagano
