// Property suite for the sharded storage tier (ISSUE 8): per-shard dense
// change-log sequences that survive Checkpoint()/Recover(), parallel shard
// replay that is byte-identical to serial replay, and fault isolation — a
// torn tail on one shard's WAL stream wedges only that shard.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "db/database.h"
#include "db/shard_map.h"
#include "wal/wal.h"

namespace nagano::db {
namespace {

constexpr size_t kShards = 4;

// Self-cleaning mkdtemp directory for the per-shard WAL trees.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/nagano_shard_XXXXXX";
    const char* created = ::mkdtemp(tmpl);
    EXPECT_NE(created, nullptr);
    path = created;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

wal::ShardWalSet OpenSet(const std::string& dir, size_t shards,
                         metrics::MetricRegistry* registry) {
  wal::WalOptions base;
  base.dir = dir;
  base.metrics.registry = registry;
  auto set = wal::OpenShardWals(std::move(base), shards);
  EXPECT_TRUE(set.ok()) << set.status().ToString();
  return std::move(set).value();
}

Database MakeShardedDb(const wal::ShardWalSet& set,
                       metrics::MetricRegistry* registry,
                       size_t recovery_threads = 0) {
  DatabaseOptions options;
  options.metrics.registry = registry;
  options.shards = set.wals.size();
  options.shard_wals = set.pointers();
  options.recovery_threads = recovery_threads;
  return Database(std::move(options));
}

void CreateEventsTable(Database& db) {
  ASSERT_TRUE(db.CreateTable("events",
                             {{"event_id", ColumnType::kInt},
                              {"name", ColumnType::kString},
                              {"score", ColumnType::kDouble}})
                  .ok());
}

void UpsertN(Database& db, int from, int to) {
  for (int i = from; i <= to; ++i) {
    ASSERT_TRUE(db.Upsert("events", {Value(int64_t(i)),
                                     Value("e" + std::to_string(i)),
                                     Value(double(i))})
                    .ok());
  }
}

uint32_t OwnerOf(int key) {
  return HashShardMap::Instance().ShardOf("events", std::to_string(key),
                                          kShards);
}

// Drops the final frame of a shard's newest WAL segment — the crash the
// paper's recovery story must survive: one stream's unsynced tail is lost
// mid-frame while its siblings are intact.
void TearShardTail(const std::string& base_dir, uint32_t shard) {
  const std::string dir = base_dir + "/shard-" + std::to_string(shard);
  std::filesystem::path victim;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".seg") continue;
    if (victim.empty() || entry.path().filename() > victim.filename()) {
      victim = entry.path();
    }
  }
  ASSERT_FALSE(victim.empty()) << "no segment in " << dir;
  const auto size = std::filesystem::file_size(victim);
  ASSERT_GT(size, 8u);
  ASSERT_EQ(::truncate(victim.c_str(), static_cast<off_t>(size - 8)), 0);
}

std::map<std::string, std::vector<Row>> Snapshot(const Database& db) {
  std::map<std::string, std::vector<Row>> tables;
  for (const auto& name : db.TableNames()) tables[name] = db.ScanAll(name);
  return tables;
}

// --- shard map -------------------------------------------------------------

TEST(ShardMapTest, DeterministicAndInRange) {
  const HashShardMap& map = HashShardMap::Instance();
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = std::to_string(i);
    const uint32_t shard = map.ShardOf("events", key, kShards);
    EXPECT_LT(shard, kShards);
    EXPECT_EQ(shard, map.ShardOf("events", key, kShards));  // stable
    // Placement hashes the key only: an entity's rows co-locate across
    // tables, so cross-table updates for one entity stay on one shard.
    EXPECT_EQ(shard, map.ShardOf("results", key, kShards));
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), kShards);  // no empty shard over 1000 keys
  EXPECT_EQ(map.ShardOf("events", "42", 1), 0u);
  EXPECT_EQ(map.ShardOf("events", "42", 0), 0u);
}

TEST(ShardMapTest, OpenShardWalsLaysOutPerShardStreams) {
  TempDir dir;
  metrics::MetricRegistry registry;
  auto set = OpenSet(dir.path, kShards, &registry);
  ASSERT_EQ(set.wals.size(), kShards);
  EXPECT_EQ(set.pointers().size(), kShards);
  for (size_t k = 0; k < kShards; ++k) {
    EXPECT_NE(set.pointers()[k], nullptr);
    EXPECT_TRUE(std::filesystem::is_directory(dir.path + "/shard-" +
                                              std::to_string(k)));
  }
}

// --- cursor feed across shards ---------------------------------------------

TEST(DbShardTest, ReadChangesMergesShardsInGlobalOrder) {
  DatabaseOptions options;
  options.shards = kShards;
  Database db(std::move(options));
  CreateEventsTable(db);
  UpsertN(db, 1, 40);

  auto batch = db.ReadChanges(ChangeCursor{});
  ASSERT_TRUE(batch.ok());
  const auto& records = batch.value().records;
  ASSERT_EQ(records.size(), 40u);
  std::vector<uint64_t> per_shard_next(kShards, 1);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seqno, i + 1);  // global order, dense
    EXPECT_EQ(records[i].shard, OwnerOf(int(i + 1)));
    // Per-shard numbering is dense in commit order within each shard.
    EXPECT_EQ(records[i].shard_seqno, per_shard_next[records[i].shard]++);
  }

  // Paging through with a small limit replays the identical stream.
  std::vector<ChangeRecord> paged;
  ChangeCursor cursor;
  while (true) {
    auto page = db.ReadChanges(cursor, 7);
    ASSERT_TRUE(page.ok());
    if (page.value().records.empty()) break;
    for (auto& r : page.value().records) paged.push_back(std::move(r));
    cursor = std::move(page.value().next);
  }
  ASSERT_EQ(paged.size(), records.size());
  for (size_t i = 0; i < paged.size(); ++i) {
    EXPECT_EQ(paged[i].seqno, records[i].seqno);
  }

  // The single-shard feed view.
  for (uint32_t k = 0; k < kShards; ++k) {
    auto tail = db.ReadShardChanges(k, 0);
    ASSERT_TRUE(tail.ok());
    for (size_t i = 0; i < tail.value().size(); ++i) {
      EXPECT_EQ(tail.value()[i].shard, k);
      EXPECT_EQ(tail.value()[i].shard_seqno, i + 1);
    }
  }
  EXPECT_EQ(db.ReadShardChanges(kShards, 0).status().code(),
            ErrorCode::kInvalidArgument);
}

// --- property (a): per-shard seqnos stay dense across Checkpoint/Recover ---

TEST(DbShardTest, PerShardSeqnosDenseAcrossCheckpointAndRecover) {
  TempDir dir;
  std::map<std::string, std::vector<Row>> reference;
  ChangeCursor applied_before;
  {
    metrics::MetricRegistry registry;
    auto set = OpenSet(dir.path, kShards, &registry);
    Database db = MakeShardedDb(set, &registry);
    CreateEventsTable(db);
    ASSERT_TRUE(db.CreateIndex("events", "name").ok());
    UpsertN(db, 1, 40);
    ASSERT_TRUE(db.Checkpoint().ok());
    UpsertN(db, 41, 60);  // post-checkpoint tail, spread across shards
    ASSERT_TRUE(db.Delete("events", Value(int64_t(3))).ok());
    ASSERT_TRUE(db.Sync().ok());
    reference = Snapshot(db);
    applied_before = db.AppliedCursor();
    ASSERT_EQ(db.LastSeqno(), 61u);
  }

  metrics::MetricRegistry registry;
  auto set = OpenSet(dir.path, kShards, &registry);
  Database recovered = MakeShardedDb(set, &registry, /*recovery_threads=*/4);
  ASSERT_TRUE(recovered.Recover().ok());
  const auto& report = recovered.last_recovery();
  ASSERT_EQ(report.shards.size(), kShards);
  EXPECT_TRUE(report.healthy());
  EXPECT_EQ(report.missing_records, 0u);

  // The recovered store resumes the exact per-shard numbering.
  EXPECT_EQ(recovered.LastSeqno(), 61u);
  ASSERT_EQ(recovered.AppliedCursor().positions, applied_before.positions);
  EXPECT_EQ(Snapshot(recovered), reference);

  uint64_t replayed = 0;
  for (uint32_t k = 0; k < kShards; ++k) {
    const auto& shard = report.shards[k];
    replayed += shard.replayed;
    // The rebuilt in-memory tail (checkpoint watermark .. tip) is dense in
    // the shard's own seqno space and ascending in the global one.
    const uint64_t head_pos = recovered.RetainedCursor().at(k);
    ASSERT_EQ(head_pos, shard.shard_seqno - shard.replayed);
    auto tail = recovered.ReadShardChanges(k, head_pos);
    ASSERT_TRUE(tail.ok()) << tail.status().ToString();
    ASSERT_EQ(tail.value().size(), shard.replayed);
    uint64_t last_global = shard.checkpoint_seqno;
    for (size_t i = 0; i < tail.value().size(); ++i) {
      EXPECT_EQ(tail.value()[i].shard_seqno, head_pos + i + 1);
      EXPECT_GT(tail.value()[i].seqno, last_global);
      last_global = tail.value()[i].seqno;
    }
    // Reading from before the retained head is a per-shard data-loss error,
    // not a silent skip.
    if (head_pos > 0) {
      EXPECT_EQ(recovered.ReadShardChanges(k, head_pos - 1).status().code(),
                ErrorCode::kDataLoss);
    }
  }
  EXPECT_EQ(replayed, 21u);  // 20 upserts + 1 delete after the checkpoint

  // New commits continue densely in both seqno spaces.
  ASSERT_TRUE(recovered
                  .Upsert("events", {Value(int64_t(100)),
                                     Value(std::string("post")), Value(1.0)})
                  .ok());
  EXPECT_EQ(recovered.LastSeqno(), 62u);
  const uint32_t owner = OwnerOf(100);
  EXPECT_EQ(recovered.AppliedCursor().at(owner),
            applied_before.at(owner) + 1);
}

// --- property (b): replay order/parallelism never changes the result -------

TEST(DbShardTest, ParallelReplayIsByteIdenticalAcrossThreadCounts) {
  TempDir dir;
  std::map<std::string, std::vector<Row>> reference;
  {
    metrics::MetricRegistry registry;
    auto set = OpenSet(dir.path, kShards, &registry);
    Database db = MakeShardedDb(set, &registry);
    CreateEventsTable(db);
    UpsertN(db, 1, 30);
    ASSERT_TRUE(db.Checkpoint().ok());
    UpsertN(db, 31, 80);
    for (int i = 2; i <= 80; i += 7) {
      ASSERT_TRUE(db.Delete("events", Value(int64_t(i))).ok());
    }
    reference = Snapshot(db);
  }

  // Serial replay, two-way, and full-width parallel replay must all
  // reconstruct the same bytes — shard streams are independent, so the
  // interleaving the thread pool happens to pick cannot matter.
  uint64_t last_seqno = 0;
  for (size_t threads : {1u, 2u, 4u}) {
    metrics::MetricRegistry registry;
    auto set = OpenSet(dir.path, kShards, &registry);
    Database recovered = MakeShardedDb(set, &registry, threads);
    ASSERT_TRUE(recovered.Recover().ok()) << "threads=" << threads;
    EXPECT_TRUE(recovered.last_recovery().healthy());
    EXPECT_EQ(Snapshot(recovered), reference) << "threads=" << threads;
    if (last_seqno == 0) {
      last_seqno = recovered.LastSeqno();
    } else {
      EXPECT_EQ(recovered.LastSeqno(), last_seqno);
    }
  }
}

// --- property (c): a torn tail wedges one shard, not the store -------------

TEST(DbShardTest, TornTailOnOneShardWedgesOnlyThatShard) {
  TempDir dir;
  uint32_t victim = kShards;  // a shard that does NOT own the last commit
  std::vector<int> keys_by_shard[kShards];
  {
    metrics::MetricRegistry registry;
    auto set = OpenSet(dir.path, kShards, &registry);
    Database db = MakeShardedDb(set, &registry);
    CreateEventsTable(db);
    UpsertN(db, 1, 40);
    for (int i = 1; i <= 40; ++i) keys_by_shard[OwnerOf(i)].push_back(i);
    for (uint32_t k = 0; k < kShards; ++k) {
      ASSERT_GE(keys_by_shard[k].size(), 2u) << "degenerate key spread";
      if (k != OwnerOf(40)) victim = k;
    }
  }
  ASSERT_LT(victim, kShards);
  TearShardTail(dir.path, victim);

  metrics::MetricRegistry registry;
  auto set = OpenSet(dir.path, kShards, &registry);
  Database recovered = MakeShardedDb(set, &registry, /*recovery_threads=*/4);
  // Partial recovery is still a successful recovery: the healthy shards
  // come up serving while the wounded one is flagged for healing.
  ASSERT_TRUE(recovered.Recover().ok());
  const auto& report = recovered.last_recovery();
  ASSERT_EQ(report.shards.size(), kShards);
  EXPECT_FALSE(report.healthy());
  // The tear dropped a record that other shards' watermarks prove existed.
  EXPECT_GE(report.missing_records, 1u);
  for (uint32_t k = 0; k < kShards; ++k) {
    if (k == victim) {
      EXPECT_EQ(report.shards[k].status.code(), ErrorCode::kDataLoss);
      EXPECT_GT(report.shards[k].torn_bytes, 0u);
    } else {
      EXPECT_TRUE(report.shards[k].status.ok()) << "shard " << k;
      EXPECT_EQ(report.shards[k].torn_bytes, 0u);
    }
  }

  // Healthy shards serve every one of their rows; the victim lost exactly
  // its final commit and nothing else.
  const int torn_key = keys_by_shard[victim].back();
  EXPECT_EQ(recovered.Get("events", Value(int64_t(torn_key))).status().code(),
            ErrorCode::kNotFound);
  for (uint32_t k = 0; k < kShards; ++k) {
    for (const int key : keys_by_shard[k]) {
      if (key == torn_key) continue;
      EXPECT_TRUE(recovered.Get("events", Value(int64_t(key))).ok())
          << "shard " << k << " key " << key;
    }
  }

  // The victim's feed restarts at its recovered watermark: a replication
  // consumer re-pulls the lost record from the master, exactly-once.
  const uint64_t victim_mark = recovered.AppliedCursor().at(victim);
  EXPECT_EQ(victim_mark, keys_by_shard[victim].size() - 1);
}

// --- group commit ----------------------------------------------------------

TEST(DbShardTest, GroupCommitSyncFlushesEveryShardStream) {
  TempDir dir;
  {
    metrics::MetricRegistry registry;
    wal::WalOptions base;
    base.dir = dir.path;
    base.metrics.registry = &registry;
    base.sync_policy = wal::SyncPolicy::kGroupCommit;
    base.group_commit_interval = kHour;  // never auto-fires in this test
    auto set = wal::OpenShardWals(std::move(base), kShards);
    ASSERT_TRUE(set.ok()) << set.status().ToString();
    Database db = MakeShardedDb(set.value(), &registry);
    CreateEventsTable(db);
    UpsertN(db, 1, 20);
    // The cross-shard group-commit barrier: one Sync() makes every shard's
    // appended tail durable.
    ASSERT_TRUE(db.Sync().ok());
    for (const auto& shard_wal : set.value().wals) {
      EXPECT_GT(shard_wal->stats().fsyncs, 0u);
    }
  }
  metrics::MetricRegistry registry;
  auto set = OpenSet(dir.path, kShards, &registry);
  Database recovered = MakeShardedDb(set, &registry);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_TRUE(recovered.last_recovery().healthy());
  EXPECT_EQ(recovered.LastSeqno(), 20u);
  EXPECT_EQ(recovered.RowCount("events"), 20u);
}

}  // namespace
}  // namespace nagano::db
