#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "db/database.h"
#include "wal/wal.h"

namespace nagano::db {
namespace {

void CreateEventsTable(Database& db) {
  ASSERT_TRUE(db.CreateTable("events",
                             {{"event_id", ColumnType::kInt},
                              {"name", ColumnType::kString},
                              {"score", ColumnType::kDouble}})
                  .ok());
}

TEST(DbTest, CreateTableDuplicateFails) {
  Database db;
  EXPECT_TRUE(db.CreateTable("t", {{"k", ColumnType::kInt}}).ok());
  EXPECT_EQ(db.CreateTable("t", {{"k", ColumnType::kInt}}).code(),
            ErrorCode::kAlreadyExists);
}

TEST(DbTest, CreateTableValidation) {
  Database db;
  EXPECT_EQ(db.CreateTable("t", {}).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(db.CreateTable("t", {{"k", ColumnType::kInt}}, 5).code(),
            ErrorCode::kInvalidArgument);
}

TEST(DbTest, HasTableAndNames) {
  Database db;
  EXPECT_FALSE(db.HasTable("x"));
  ASSERT_TRUE(db.CreateTable("beta", {{"k", ColumnType::kInt}}).ok());
  ASSERT_TRUE(db.CreateTable("alpha", {{"k", ColumnType::kInt}}).ok());
  EXPECT_TRUE(db.HasTable("alpha"));
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(DbTest, ColumnIndex) {
  Database db;
  CreateEventsTable(db);
  EXPECT_EQ(db.ColumnIndex("events", "name").value(), 1u);
  EXPECT_EQ(db.ColumnIndex("events", "ghost").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(db.ColumnIndex("ghost", "name").status().code(),
            ErrorCode::kNotFound);
}

TEST(DbTest, UpsertAndGet) {
  Database db;
  CreateEventsTable(db);
  ASSERT_TRUE(
      db.Upsert("events", {Value(int64_t(1)), Value(std::string("Ski Jump")),
                           Value(99.5)})
          .ok());
  auto row = db.Get("events", Value(int64_t(1)));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(std::get<std::string>(row.value()[1]), "Ski Jump");
  EXPECT_DOUBLE_EQ(std::get<double>(row.value()[2]), 99.5);
}

TEST(DbTest, GetMissing) {
  Database db;
  CreateEventsTable(db);
  EXPECT_EQ(db.Get("events", Value(int64_t(7))).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(db.Get("ghost", Value(int64_t(7))).status().code(),
            ErrorCode::kNotFound);
}

TEST(DbTest, UpsertArityAndTypeValidation) {
  Database db;
  CreateEventsTable(db);
  EXPECT_EQ(db.Upsert("events", {Value(int64_t(1))}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(db.Upsert("events", {Value(std::string("oops")),
                                 Value(std::string("x")), Value(1.0)})
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(DbTest, UpsertOverwrites) {
  Database db;
  CreateEventsTable(db);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(1.0)})
                  .ok());
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("b")), Value(2.0)})
                  .ok());
  EXPECT_EQ(db.RowCount("events"), 1u);
  EXPECT_EQ(std::get<std::string>(db.Get("events", Value(int64_t(1))).value()[1]),
            "b");
}

TEST(DbTest, DeleteRemovesRow) {
  Database db;
  CreateEventsTable(db);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(1.0)})
                  .ok());
  EXPECT_TRUE(db.Delete("events", Value(int64_t(1))).ok());
  EXPECT_EQ(db.RowCount("events"), 0u);
  EXPECT_EQ(db.Delete("events", Value(int64_t(1))).code(),
            ErrorCode::kNotFound);
}

TEST(DbTest, ScanWithPredicate) {
  Database db;
  CreateEventsTable(db);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(db.Upsert("events",
                          {Value(int64_t(i)), Value(std::string("e")),
                           Value(double(i))})
                    .ok());
  }
  const auto rows = db.Scan("events", [](const Row& r) {
    return std::get<double>(r[2]) > 7.0;
  });
  EXPECT_EQ(rows.size(), 3u);
}

TEST(DbTest, ScanOrderIsKeyOrder) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"k", ColumnType::kString}}).ok());
  for (const char* k : {"charlie", "alpha", "bravo"}) {
    ASSERT_TRUE(db.Upsert("t", {Value(std::string(k))}).ok());
  }
  const auto rows = db.ScanAll("t");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(std::get<std::string>(rows[0][0]), "alpha");
  EXPECT_EQ(std::get<std::string>(rows[2][0]), "charlie");
}

TEST(DbTest, KeyStringEncodings) {
  EXPECT_EQ(KeyString(Value(int64_t(42))), "42");
  EXPECT_EQ(KeyString(Value(int64_t(-7))), "-7");
  EXPECT_EQ(KeyString(Value(std::string("JPN"))), "JPN");
  EXPECT_EQ(KeyString(Value(1.5)), "1.5");
}

TEST(DbTest, TypeMatches) {
  EXPECT_TRUE(TypeMatches(Value(int64_t(1)), ColumnType::kInt));
  EXPECT_FALSE(TypeMatches(Value(int64_t(1)), ColumnType::kDouble));
  EXPECT_TRUE(TypeMatches(Value(1.0), ColumnType::kDouble));
  EXPECT_TRUE(TypeMatches(Value(std::string("x")), ColumnType::kString));
}

// --- secondary indexes -----------------------------------------------------------

TEST(DbIndexTest, CreateIndexValidation) {
  Database db;
  CreateEventsTable(db);
  EXPECT_EQ(db.CreateIndex("ghost", "name").code(), ErrorCode::kNotFound);
  EXPECT_EQ(db.CreateIndex("events", "ghost").code(), ErrorCode::kNotFound);
  EXPECT_TRUE(db.CreateIndex("events", "name").ok());
  EXPECT_TRUE(db.CreateIndex("events", "name").ok());  // idempotent
  EXPECT_TRUE(db.HasIndex("events", "name"));
  EXPECT_FALSE(db.HasIndex("events", "score"));
}

TEST(DbIndexTest, IndexBuiltFromExistingRows) {
  Database db;
  CreateEventsTable(db);
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(db.Upsert("events", {Value(int64_t(i)),
                                     Value(std::string(i % 2 ? "odd" : "even")),
                                     Value(0.0)})
                    .ok());
  }
  ASSERT_TRUE(db.CreateIndex("events", "name").ok());
  EXPECT_EQ(db.Lookup("events", "name", Value(std::string("odd"))).size(), 3u);
  EXPECT_EQ(db.Lookup("events", "name", Value(std::string("even"))).size(), 3u);
}

TEST(DbIndexTest, IndexMaintainedAcrossMutations) {
  Database db;
  CreateEventsTable(db);
  ASSERT_TRUE(db.CreateIndex("events", "name").ok());
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(2)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  EXPECT_EQ(db.Lookup("events", "name", Value(std::string("a"))).size(), 2u);

  // Update row 1's name: it must move between index buckets.
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("b")), Value(0.0)})
                  .ok());
  EXPECT_EQ(db.Lookup("events", "name", Value(std::string("a"))).size(), 1u);
  EXPECT_EQ(db.Lookup("events", "name", Value(std::string("b"))).size(), 1u);

  ASSERT_TRUE(db.Delete("events", Value(int64_t(2))).ok());
  EXPECT_TRUE(db.Lookup("events", "name", Value(std::string("a"))).empty());
}

TEST(DbIndexTest, LookupWithoutIndexFallsBackToScan) {
  Database db;
  CreateEventsTable(db);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("x")), Value(2.5)})
                  .ok());
  const auto rows = db.Lookup("events", "score", Value(2.5));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(rows[0][0]), 1);
  EXPECT_TRUE(db.Lookup("events", "ghost", Value(1.0)).empty());
}

TEST(DbIndexTest, LookupMatchesScanUnderRandomOps) {
  // Property: indexed Lookup agrees with a predicate Scan after arbitrary
  // upsert/delete interleavings.
  Database db;
  CreateEventsTable(db);
  ASSERT_TRUE(db.CreateIndex("events", "name").ok());
  Rng rng(404);
  for (int step = 0; step < 800; ++step) {
    const int64_t key = static_cast<int64_t>(rng.NextBelow(30));
    if (rng.NextBool(0.75)) {
      ASSERT_TRUE(db.Upsert("events",
                            {Value(key),
                             Value("g" + std::to_string(rng.NextBelow(5))),
                             Value(0.0)})
                      .ok());
    } else {
      (void)db.Delete("events", Value(key));
    }
    const std::string group = "g" + std::to_string(rng.NextBelow(5));
    const auto indexed = db.Lookup("events", "name", Value(group));
    const auto scanned = db.Scan("events", [&](const Row& r) {
      return std::get<std::string>(r[1]) == group;
    });
    ASSERT_EQ(indexed.size(), scanned.size()) << "step " << step;
    for (size_t i = 0; i < indexed.size(); ++i) {
      EXPECT_EQ(std::get<int64_t>(indexed[i][0]),
                std::get<int64_t>(scanned[i][0]));
    }
  }
}

TEST(DbIndexTest, ReplicatedApplyMaintainsReplicaIndexes) {
  Database master;
  CreateEventsTable(master);
  Database replica;
  CreateEventsTable(replica);
  ASSERT_TRUE(replica.CreateIndex("events", "name").ok());

  ASSERT_TRUE(master.Upsert("events", {Value(int64_t(1)),
                                       Value(std::string("a")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(master.Upsert("events", {Value(int64_t(1)),
                                       Value(std::string("b")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(master.Delete("events", Value(int64_t(1))).ok());
  for (const auto& change : master.ChangesSince(0)) {
    ASSERT_TRUE(replica.ApplyReplicated(change).ok());
  }
  EXPECT_TRUE(replica.Lookup("events", "name", Value(std::string("a"))).empty());
  EXPECT_TRUE(replica.Lookup("events", "name", Value(std::string("b"))).empty());
}

// --- change log ----------------------------------------------------------------

TEST(DbChangeLogTest, SeqnosAreDense) {
  Database db;
  CreateEventsTable(db);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(db.Upsert("events", {Value(int64_t(i)),
                                     Value(std::string("e")), Value(0.0)})
                    .ok());
  }
  EXPECT_EQ(db.LastSeqno(), 5u);
  const auto changes = db.ChangesSince(0);
  ASSERT_EQ(changes.size(), 5u);
  for (size_t i = 0; i < changes.size(); ++i) {
    EXPECT_EQ(changes[i].seqno, i + 1);
  }
}

TEST(DbChangeLogTest, ChangesSinceFiltersAndLimits) {
  Database db;
  CreateEventsTable(db);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(db.Upsert("events", {Value(int64_t(i)),
                                     Value(std::string("e")), Value(0.0)})
                    .ok());
  }
  EXPECT_EQ(db.ChangesSince(7).size(), 3u);
  EXPECT_EQ(db.ChangesSince(7, 2).size(), 2u);
  EXPECT_EQ(db.ChangesSince(10).size(), 0u);
  EXPECT_EQ(db.ChangesSince(3)[0].seqno, 4u);
}

TEST(DbChangeLogTest, RecordsCarryRowImage) {
  Database db;
  CreateEventsTable(db);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(3)),
                                   Value(std::string("Luge")), Value(55.0)})
                  .ok());
  const auto changes = db.ChangesSince(0);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].op, ChangeOp::kInsert);
  EXPECT_EQ(changes[0].table, "events");
  EXPECT_EQ(changes[0].key, "3");
  ASSERT_EQ(changes[0].row.size(), 3u);
  EXPECT_EQ(std::get<std::string>(changes[0].row[1]), "Luge");
}

TEST(DbChangeLogTest, UpdateVsInsertOp) {
  Database db;
  CreateEventsTable(db);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("b")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(db.Delete("events", Value(int64_t(1))).ok());
  const auto changes = db.ChangesSince(0);
  ASSERT_EQ(changes.size(), 3u);
  EXPECT_EQ(changes[0].op, ChangeOp::kInsert);
  EXPECT_EQ(changes[1].op, ChangeOp::kUpdate);
  EXPECT_EQ(changes[2].op, ChangeOp::kDelete);
  EXPECT_TRUE(changes[2].row.empty());
}

TEST(DbChangeLogTest, CommitTimesUseClock) {
  SimClock clock(10 * kSecond);
  Database db(&clock);
  ASSERT_TRUE(db.CreateTable("t", {{"k", ColumnType::kInt}}).ok());
  ASSERT_TRUE(db.Upsert("t", {Value(int64_t(1))}).ok());
  clock.Advance(5 * kSecond);
  ASSERT_TRUE(db.Upsert("t", {Value(int64_t(2))}).ok());
  const auto changes = db.ChangesSince(0);
  EXPECT_EQ(changes[0].committed_at, 10 * kSecond);
  EXPECT_EQ(changes[1].committed_at, 15 * kSecond);
}

// --- subscriptions -----------------------------------------------------------------

TEST(DbSubscribeTest, ListenerFiresOnCommit) {
  Database db;
  CreateEventsTable(db);
  std::vector<uint64_t> seen;
  db.Subscribe([&](const ChangeRecord& c) { seen.push_back(c.seqno); });
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(db.Delete("events", Value(int64_t(1))).ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2}));
}

TEST(DbSubscribeTest, UnsubscribeStopsDelivery) {
  Database db;
  CreateEventsTable(db);
  int count = 0;
  const uint64_t id = db.Subscribe([&](const ChangeRecord&) { ++count; });
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  db.Unsubscribe(id);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(2)),
                                   Value(std::string("b")), Value(0.0)})
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST(DbSubscribeTest, ListenerMayReenterDatabase) {
  // The trigger monitor re-renders pages (reads the DB) from inside the
  // commit notification; the lock must not be held across the callback.
  Database db;
  CreateEventsTable(db);
  size_t observed_rows = 0;
  db.Subscribe([&](const ChangeRecord&) {
    observed_rows = db.ScanAll("events").size();
  });
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  EXPECT_EQ(observed_rows, 1u);
}

// --- replicated apply ---------------------------------------------------------------

TEST(DbReplicateTest, MirrorsMasterSeqnos) {
  Database master;
  CreateEventsTable(master);
  Database replica;
  CreateEventsTable(replica);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(master
                    .Upsert("events", {Value(int64_t(i)),
                                       Value(std::string("e")), Value(0.0)})
                    .ok());
  }
  for (const auto& change : master.ChangesSince(0)) {
    ASSERT_TRUE(replica.ApplyReplicated(change).ok());
  }
  EXPECT_EQ(replica.LastSeqno(), master.LastSeqno());
  EXPECT_EQ(replica.RowCount("events"), 4u);
}

TEST(DbReplicateTest, RejectsGaps) {
  Database master;
  CreateEventsTable(master);
  Database replica;
  CreateEventsTable(replica);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(master
                    .Upsert("events", {Value(int64_t(i)),
                                       Value(std::string("e")), Value(0.0)})
                    .ok());
  }
  const auto changes = master.ChangesSince(0);
  ASSERT_TRUE(replica.ApplyReplicated(changes[0]).ok());
  // Skipping seqno 2 must be refused.
  EXPECT_EQ(replica.ApplyReplicated(changes[2]).code(), ErrorCode::kDataLoss);
  // Re-applying seqno 1 (duplicate) must also be refused.
  EXPECT_EQ(replica.ApplyReplicated(changes[0]).code(), ErrorCode::kDataLoss);
  ASSERT_TRUE(replica.ApplyReplicated(changes[1]).ok());
  ASSERT_TRUE(replica.ApplyReplicated(changes[2]).ok());
  EXPECT_EQ(replica.LastSeqno(), 3u);
}

TEST(DbReplicateTest, ReplicatedDeleteApplies) {
  Database master;
  CreateEventsTable(master);
  Database replica;
  CreateEventsTable(replica);
  ASSERT_TRUE(master
                  .Upsert("events", {Value(int64_t(1)),
                                     Value(std::string("e")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(master.Delete("events", Value(int64_t(1))).ok());
  for (const auto& change : master.ChangesSince(0)) {
    ASSERT_TRUE(replica.ApplyReplicated(change).ok());
  }
  EXPECT_EQ(replica.RowCount("events"), 0u);
}

// --- change-log retention and recovery (ISSUE 4) ----------------------------

namespace {

// Self-cleaning mkdtemp directory for WAL-backed databases.
struct TempWalDir {
  TempWalDir() {
    char tmpl[] = "/tmp/nagano_db_wal_XXXXXX";
    const char* created = ::mkdtemp(tmpl);
    EXPECT_NE(created, nullptr);
    path = created;
  }
  ~TempWalDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

std::unique_ptr<wal::WriteAheadLog> OpenWal(const std::string& dir,
                                            metrics::MetricRegistry* registry) {
  wal::WalOptions options;
  options.dir = dir;
  options.metrics.registry = registry;
  auto log = wal::WriteAheadLog::Open(std::move(options));
  EXPECT_TRUE(log.ok()) << log.status().ToString();
  return std::move(log).value();
}

Database MakeWalDb(wal::WriteAheadLog* wal, metrics::MetricRegistry* registry,
                   size_t retention = 0) {
  DatabaseOptions options;
  options.metrics.registry = registry;
  options.wal = wal;
  options.change_log_retention = retention;
  return Database(std::move(options));
}

void UpsertN(Database& db, int from, int to) {
  for (int i = from; i <= to; ++i) {
    ASSERT_TRUE(db.Upsert("events", {Value(int64_t(i)),
                                     Value("e" + std::to_string(i)),
                                     Value(double(i))})
                    .ok());
  }
}

}  // namespace

TEST(DbRetentionTest, CheckpointTruncatesLogToRetention) {
  TempWalDir dir;
  metrics::MetricRegistry registry;
  auto wal = OpenWal(dir.path, &registry);
  Database db = MakeWalDb(wal.get(), &registry, /*retention=*/4);
  CreateEventsTable(db);
  UpsertN(db, 1, 10);  // seqnos 1..10
  EXPECT_EQ(db.log_head_seqno(), 1u);
  EXPECT_EQ(db.ChangesSince(0).size(), 10u);

  ASSERT_TRUE(db.Checkpoint().ok());
  // Retention 4 keeps seqnos 7..10; the head moves to 7.
  EXPECT_EQ(db.log_head_seqno(), 7u);
  EXPECT_EQ(db.ChangesSince(6).size(), 4u);
  EXPECT_EQ(db.ChangesSince(6).front().seqno, 7u);
}

TEST(DbRetentionTest, ReadChangesAroundTruncatedHead) {
  TempWalDir dir;
  metrics::MetricRegistry registry;
  auto wal = OpenWal(dir.path, &registry);
  Database db = MakeWalDb(wal.get(), &registry, /*retention=*/4);
  CreateEventsTable(db);
  UpsertN(db, 1, 10);
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_EQ(db.log_head_seqno(), 7u);

  // Exactly at the head (after = head-1 = 6): everything retained, no gap.
  auto at_head = db.ReadChanges(6);
  ASSERT_TRUE(at_head.ok());
  EXPECT_EQ(at_head.value().size(), 4u);
  EXPECT_EQ(at_head.value().front().seqno, 7u);

  // Before the head: the gap status that drives replica resync.
  for (uint64_t after : {0u, 3u, 5u}) {
    auto gap = db.ReadChanges(after);
    EXPECT_EQ(gap.status().code(), ErrorCode::kDataLoss) << "after=" << after;
  }
  // ChangesSince itself stays infallible: it returns the retained suffix.
  EXPECT_EQ(db.ChangesSince(0).size(), 4u);
  EXPECT_EQ(db.ChangesSince(0).front().seqno, 7u);

  // Past the end: empty, not an error.
  auto past = db.ReadChanges(10);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past.value().empty());
  auto way_past = db.ReadChanges(1000);
  ASSERT_TRUE(way_past.ok());
  EXPECT_TRUE(way_past.value().empty());
}

TEST(DbRetentionTest, UnboundedRetentionKeepsFullLog) {
  TempWalDir dir;
  metrics::MetricRegistry registry;
  auto wal = OpenWal(dir.path, &registry);
  Database db = MakeWalDb(wal.get(), &registry, /*retention=*/0);
  CreateEventsTable(db);
  UpsertN(db, 1, 10);
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_EQ(db.log_head_seqno(), 1u);
  ASSERT_TRUE(db.ReadChanges(0).ok());
  EXPECT_EQ(db.ReadChanges(0).value().size(), 10u);
}

TEST(DbRecoverTest, SeqnoContinuityAcrossRecover) {
  TempWalDir dir;
  metrics::MetricRegistry registry;
  uint64_t last_before_crash = 0;
  {
    auto wal = OpenWal(dir.path, &registry);
    Database db = MakeWalDb(wal.get(), &registry, /*retention=*/4);
    CreateEventsTable(db);
    UpsertN(db, 1, 6);
    ASSERT_TRUE(db.Checkpoint().ok());
    UpsertN(db, 7, 9);  // post-checkpoint tail
    last_before_crash = db.LastSeqno();
    ASSERT_EQ(last_before_crash, 9u);
  }
  // "Crash": drop the database, reopen the WAL, recover a fresh one.
  metrics::MetricRegistry registry2;
  auto wal = OpenWal(dir.path, &registry2);
  Database recovered = MakeWalDb(wal.get(), &registry2);
  ASSERT_TRUE(recovered.Recover().ok());

  // Original seqnos preserved...
  EXPECT_EQ(recovered.LastSeqno(), last_before_crash);
  EXPECT_EQ(recovered.RowCount("events"), 9u);
  // ...the rebuilt in-memory log starts after the checkpoint...
  EXPECT_EQ(recovered.log_head_seqno(), 7u);
  EXPECT_EQ(recovered.ChangesSince(6).size(), 3u);
  EXPECT_EQ(recovered.ReadChanges(3).status().code(), ErrorCode::kDataLoss);
  // ...and new commits continue densely from the recovered tip.
  ASSERT_TRUE(recovered
                  .Upsert("events", {Value(int64_t(100)),
                                     Value(std::string("post")), Value(1.0)})
                  .ok());
  EXPECT_EQ(recovered.LastSeqno(), last_before_crash + 1);
  EXPECT_EQ(recovered.ChangesSince(last_before_crash).front().seqno,
            last_before_crash + 1);
  // A replica that was at the master's pre-crash seqno can keep pulling.
  Database replica;
  CreateEventsTable(replica);
  // (replica applies the retained suffix it can reach)
  for (const auto& change : recovered.ChangesSince(6)) {
    // Replica is empty, so dense-apply needs seqno 1 first — this exercise
    // is just that recovered ChangesSince yields records starting at 7.
    EXPECT_GE(change.seqno, 7u);
  }
}

}  // namespace
}  // namespace nagano::db
