#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "db/database.h"
#include "wal/wal.h"

namespace nagano::db {
namespace {

Database MakeDb(DatabaseOptions options = {}) {
  return Database(std::move(options));
}

void CreateEventsTable(Database& db) {
  ASSERT_TRUE(db.CreateTable("events",
                             {{"event_id", ColumnType::kInt},
                              {"name", ColumnType::kString},
                              {"score", ColumnType::kDouble}})
                  .ok());
}

// Drains the cursor feed from a uniform per-shard position. The tests here
// run single-shard (unless stated), where shard seqnos equal global seqnos,
// so `after` reads as the familiar global watermark.
std::vector<ChangeRecord> ChangesAfter(const Database& db, uint64_t after,
                                       size_t limit = SIZE_MAX) {
  ChangeCursor cursor;
  cursor.positions.assign(db.shards(), after);
  auto batch = db.ReadChanges(cursor, limit);
  EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  if (!batch.ok()) return {};
  EXPECT_TRUE(batch.value().gap_shards.empty());
  return std::move(batch.value().records);
}

// ChangeSink adapter for tests that just want a callback.
class FnSink : public ChangeSink {
 public:
  explicit FnSink(std::function<void(uint32_t, const ChangeRecord&)> fn)
      : fn_(std::move(fn)) {}
  void OnChange(uint32_t shard, const ChangeRecord& change) override {
    fn_(shard, change);
  }

 private:
  std::function<void(uint32_t, const ChangeRecord&)> fn_;
};

TEST(DbTest, CreateTableDuplicateFails) {
  Database db = MakeDb();
  EXPECT_TRUE(db.CreateTable("t", {{"k", ColumnType::kInt}}).ok());
  EXPECT_EQ(db.CreateTable("t", {{"k", ColumnType::kInt}}).code(),
            ErrorCode::kAlreadyExists);
}

TEST(DbTest, CreateTableValidation) {
  Database db = MakeDb();
  EXPECT_EQ(db.CreateTable("t", {}).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(db.CreateTable("t", {{"k", ColumnType::kInt}}, 5).code(),
            ErrorCode::kInvalidArgument);
}

TEST(DbTest, OptionsValidation) {
  DatabaseOptions zero_shards;
  zero_shards.shards = 0;
  EXPECT_EQ(zero_shards.Validate().code(), ErrorCode::kInvalidArgument);

  DatabaseOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  ok.shards = 4;
  EXPECT_TRUE(ok.Validate().ok());

  // The single-stream wal convenience field is for unsharded stores only.
  wal::WriteAheadLog* fake = reinterpret_cast<wal::WriteAheadLog*>(0x1);
  DatabaseOptions sharded_single_wal;
  sharded_single_wal.shards = 2;
  sharded_single_wal.wal = fake;
  EXPECT_EQ(sharded_single_wal.Validate().code(), ErrorCode::kInvalidArgument);

  // shard_wals must carry exactly one stream per shard, none null.
  DatabaseOptions short_wals;
  short_wals.shards = 2;
  short_wals.shard_wals = {fake};
  EXPECT_EQ(short_wals.Validate().code(), ErrorCode::kInvalidArgument);
  DatabaseOptions null_wals;
  null_wals.shards = 2;
  null_wals.shard_wals = {fake, nullptr};
  EXPECT_EQ(null_wals.Validate().code(), ErrorCode::kInvalidArgument);
  DatabaseOptions both;
  both.wal = fake;
  both.shard_wals = {fake};
  EXPECT_EQ(both.Validate().code(), ErrorCode::kInvalidArgument);
}

TEST(DbTest, HasTableAndNames) {
  Database db = MakeDb();
  EXPECT_FALSE(db.HasTable("x"));
  ASSERT_TRUE(db.CreateTable("beta", {{"k", ColumnType::kInt}}).ok());
  ASSERT_TRUE(db.CreateTable("alpha", {{"k", ColumnType::kInt}}).ok());
  EXPECT_TRUE(db.HasTable("alpha"));
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(DbTest, ColumnIndex) {
  Database db = MakeDb();
  CreateEventsTable(db);
  EXPECT_EQ(db.ColumnIndex("events", "name").value(), 1u);
  EXPECT_EQ(db.ColumnIndex("events", "ghost").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(db.ColumnIndex("ghost", "name").status().code(),
            ErrorCode::kNotFound);
}

TEST(DbTest, UpsertAndGet) {
  Database db = MakeDb();
  CreateEventsTable(db);
  ASSERT_TRUE(
      db.Upsert("events", {Value(int64_t(1)), Value(std::string("Ski Jump")),
                           Value(99.5)})
          .ok());
  auto row = db.Get("events", Value(int64_t(1)));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(std::get<std::string>(row.value()[1]), "Ski Jump");
  EXPECT_DOUBLE_EQ(std::get<double>(row.value()[2]), 99.5);
}

TEST(DbTest, GetMissing) {
  Database db = MakeDb();
  CreateEventsTable(db);
  EXPECT_EQ(db.Get("events", Value(int64_t(7))).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(db.Get("ghost", Value(int64_t(7))).status().code(),
            ErrorCode::kNotFound);
}

TEST(DbTest, UpsertArityAndTypeValidation) {
  Database db = MakeDb();
  CreateEventsTable(db);
  EXPECT_EQ(db.Upsert("events", {Value(int64_t(1))}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(db.Upsert("events", {Value(std::string("oops")),
                                 Value(std::string("x")), Value(1.0)})
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(DbTest, UpsertOverwrites) {
  Database db = MakeDb();
  CreateEventsTable(db);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(1.0)})
                  .ok());
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("b")), Value(2.0)})
                  .ok());
  EXPECT_EQ(db.RowCount("events"), 1u);
  EXPECT_EQ(std::get<std::string>(db.Get("events", Value(int64_t(1))).value()[1]),
            "b");
}

TEST(DbTest, DeleteRemovesRow) {
  Database db = MakeDb();
  CreateEventsTable(db);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(1.0)})
                  .ok());
  EXPECT_TRUE(db.Delete("events", Value(int64_t(1))).ok());
  EXPECT_EQ(db.RowCount("events"), 0u);
  EXPECT_EQ(db.Delete("events", Value(int64_t(1))).code(),
            ErrorCode::kNotFound);
}

TEST(DbTest, ScanWithPredicate) {
  Database db = MakeDb();
  CreateEventsTable(db);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(db.Upsert("events",
                          {Value(int64_t(i)), Value(std::string("e")),
                           Value(double(i))})
                    .ok());
  }
  const auto rows = db.Scan("events", [](const Row& r) {
    return std::get<double>(r[2]) > 7.0;
  });
  EXPECT_EQ(rows.size(), 3u);
}

TEST(DbTest, ScanOrderIsKeyOrder) {
  Database db = MakeDb();
  ASSERT_TRUE(db.CreateTable("t", {{"k", ColumnType::kString}}).ok());
  for (const char* k : {"charlie", "alpha", "bravo"}) {
    ASSERT_TRUE(db.Upsert("t", {Value(std::string(k))}).ok());
  }
  const auto rows = db.ScanAll("t");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(std::get<std::string>(rows[0][0]), "alpha");
  EXPECT_EQ(std::get<std::string>(rows[2][0]), "charlie");
}

TEST(DbTest, KeyStringEncodings) {
  EXPECT_EQ(KeyString(Value(int64_t(42))), "42");
  EXPECT_EQ(KeyString(Value(int64_t(-7))), "-7");
  EXPECT_EQ(KeyString(Value(std::string("JPN"))), "JPN");
  EXPECT_EQ(KeyString(Value(1.5)), "1.5");
}

TEST(DbTest, TypeMatches) {
  EXPECT_TRUE(TypeMatches(Value(int64_t(1)), ColumnType::kInt));
  EXPECT_FALSE(TypeMatches(Value(int64_t(1)), ColumnType::kDouble));
  EXPECT_TRUE(TypeMatches(Value(1.0), ColumnType::kDouble));
  EXPECT_TRUE(TypeMatches(Value(std::string("x")), ColumnType::kString));
}

// --- secondary indexes -----------------------------------------------------------

TEST(DbIndexTest, CreateIndexValidation) {
  Database db = MakeDb();
  CreateEventsTable(db);
  EXPECT_EQ(db.CreateIndex("ghost", "name").code(), ErrorCode::kNotFound);
  EXPECT_EQ(db.CreateIndex("events", "ghost").code(), ErrorCode::kNotFound);
  EXPECT_TRUE(db.CreateIndex("events", "name").ok());
  EXPECT_TRUE(db.CreateIndex("events", "name").ok());  // idempotent
  EXPECT_TRUE(db.HasIndex("events", "name"));
  EXPECT_FALSE(db.HasIndex("events", "score"));
}

TEST(DbIndexTest, IndexBuiltFromExistingRows) {
  Database db = MakeDb();
  CreateEventsTable(db);
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(db.Upsert("events", {Value(int64_t(i)),
                                     Value(std::string(i % 2 ? "odd" : "even")),
                                     Value(0.0)})
                    .ok());
  }
  ASSERT_TRUE(db.CreateIndex("events", "name").ok());
  EXPECT_EQ(db.Lookup("events", "name", Value(std::string("odd"))).size(), 3u);
  EXPECT_EQ(db.Lookup("events", "name", Value(std::string("even"))).size(), 3u);
}

TEST(DbIndexTest, IndexMaintainedAcrossMutations) {
  Database db = MakeDb();
  CreateEventsTable(db);
  ASSERT_TRUE(db.CreateIndex("events", "name").ok());
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(2)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  EXPECT_EQ(db.Lookup("events", "name", Value(std::string("a"))).size(), 2u);

  // Update row 1's name: it must move between index buckets.
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("b")), Value(0.0)})
                  .ok());
  EXPECT_EQ(db.Lookup("events", "name", Value(std::string("a"))).size(), 1u);
  EXPECT_EQ(db.Lookup("events", "name", Value(std::string("b"))).size(), 1u);

  ASSERT_TRUE(db.Delete("events", Value(int64_t(2))).ok());
  EXPECT_TRUE(db.Lookup("events", "name", Value(std::string("a"))).empty());
}

TEST(DbIndexTest, LookupWithoutIndexFallsBackToScan) {
  Database db = MakeDb();
  CreateEventsTable(db);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("x")), Value(2.5)})
                  .ok());
  const auto rows = db.Lookup("events", "score", Value(2.5));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(rows[0][0]), 1);
  EXPECT_TRUE(db.Lookup("events", "ghost", Value(1.0)).empty());
}

TEST(DbIndexTest, LookupMatchesScanUnderRandomOps) {
  // Property: indexed Lookup agrees with a predicate Scan after arbitrary
  // upsert/delete interleavings.
  Database db = MakeDb();
  CreateEventsTable(db);
  ASSERT_TRUE(db.CreateIndex("events", "name").ok());
  Rng rng(404);
  for (int step = 0; step < 800; ++step) {
    const int64_t key = static_cast<int64_t>(rng.NextBelow(30));
    if (rng.NextBool(0.75)) {
      ASSERT_TRUE(db.Upsert("events",
                            {Value(key),
                             Value("g" + std::to_string(rng.NextBelow(5))),
                             Value(0.0)})
                      .ok());
    } else {
      (void)db.Delete("events", Value(key));
    }
    const std::string group = "g" + std::to_string(rng.NextBelow(5));
    const auto indexed = db.Lookup("events", "name", Value(group));
    const auto scanned = db.Scan("events", [&](const Row& r) {
      return std::get<std::string>(r[1]) == group;
    });
    ASSERT_EQ(indexed.size(), scanned.size()) << "step " << step;
    for (size_t i = 0; i < indexed.size(); ++i) {
      EXPECT_EQ(std::get<int64_t>(indexed[i][0]),
                std::get<int64_t>(scanned[i][0]));
    }
  }
}

TEST(DbIndexTest, ReplicatedApplyMaintainsReplicaIndexes) {
  Database master = MakeDb();
  CreateEventsTable(master);
  Database replica = MakeDb();
  CreateEventsTable(replica);
  ASSERT_TRUE(replica.CreateIndex("events", "name").ok());

  ASSERT_TRUE(master.Upsert("events", {Value(int64_t(1)),
                                       Value(std::string("a")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(master.Upsert("events", {Value(int64_t(1)),
                                       Value(std::string("b")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(master.Delete("events", Value(int64_t(1))).ok());
  for (const auto& change : ChangesAfter(master, 0)) {
    ASSERT_TRUE(replica.ApplyReplicated(change).ok());
  }
  EXPECT_TRUE(replica.Lookup("events", "name", Value(std::string("a"))).empty());
  EXPECT_TRUE(replica.Lookup("events", "name", Value(std::string("b"))).empty());
}

// --- change log ----------------------------------------------------------------

TEST(DbChangeLogTest, SeqnosAreDense) {
  Database db = MakeDb();
  CreateEventsTable(db);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(db.Upsert("events", {Value(int64_t(i)),
                                     Value(std::string("e")), Value(0.0)})
                    .ok());
  }
  EXPECT_EQ(db.LastSeqno(), 5u);
  const auto changes = ChangesAfter(db, 0);
  ASSERT_EQ(changes.size(), 5u);
  for (size_t i = 0; i < changes.size(); ++i) {
    EXPECT_EQ(changes[i].seqno, i + 1);
    // Single shard: the per-shard numbering coincides with the global one.
    EXPECT_EQ(changes[i].shard, 0u);
    EXPECT_EQ(changes[i].shard_seqno, i + 1);
  }
}

TEST(DbChangeLogTest, ReadChangesFiltersAndLimits) {
  Database db = MakeDb();
  CreateEventsTable(db);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(db.Upsert("events", {Value(int64_t(i)),
                                     Value(std::string("e")), Value(0.0)})
                    .ok());
  }
  EXPECT_EQ(ChangesAfter(db, 7).size(), 3u);
  EXPECT_EQ(ChangesAfter(db, 7, 2).size(), 2u);
  EXPECT_EQ(ChangesAfter(db, 10).size(), 0u);
  EXPECT_EQ(ChangesAfter(db, 3)[0].seqno, 4u);

  // ChangeBatch::next resumes exactly where the previous read stopped.
  ChangeCursor cursor;
  auto first = db.ReadChanges(cursor, 4);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().records.size(), 4u);
  auto rest = db.ReadChanges(first.value().next);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest.value().records.size(), 6u);
  EXPECT_EQ(rest.value().records.front().seqno, 5u);
}

TEST(DbChangeLogTest, RecordsCarryRowImage) {
  Database db = MakeDb();
  CreateEventsTable(db);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(3)),
                                   Value(std::string("Luge")), Value(55.0)})
                  .ok());
  const auto changes = ChangesAfter(db, 0);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].op, ChangeOp::kInsert);
  EXPECT_EQ(changes[0].table, "events");
  EXPECT_EQ(changes[0].key, "3");
  ASSERT_EQ(changes[0].row.size(), 3u);
  EXPECT_EQ(std::get<std::string>(changes[0].row[1]), "Luge");
}

TEST(DbChangeLogTest, UpdateVsInsertOp) {
  Database db = MakeDb();
  CreateEventsTable(db);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("b")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(db.Delete("events", Value(int64_t(1))).ok());
  const auto changes = ChangesAfter(db, 0);
  ASSERT_EQ(changes.size(), 3u);
  EXPECT_EQ(changes[0].op, ChangeOp::kInsert);
  EXPECT_EQ(changes[1].op, ChangeOp::kUpdate);
  EXPECT_EQ(changes[2].op, ChangeOp::kDelete);
  EXPECT_TRUE(changes[2].row.empty());
}

TEST(DbChangeLogTest, CommitTimesUseClock) {
  SimClock clock(10 * kSecond);
  DatabaseOptions options;
  options.clock = &clock;
  Database db = MakeDb(std::move(options));
  ASSERT_TRUE(db.CreateTable("t", {{"k", ColumnType::kInt}}).ok());
  ASSERT_TRUE(db.Upsert("t", {Value(int64_t(1))}).ok());
  clock.Advance(5 * kSecond);
  ASSERT_TRUE(db.Upsert("t", {Value(int64_t(2))}).ok());
  const auto changes = ChangesAfter(db, 0);
  EXPECT_EQ(changes[0].committed_at, 10 * kSecond);
  EXPECT_EQ(changes[1].committed_at, 15 * kSecond);
}

// --- subscriptions -----------------------------------------------------------------

TEST(DbSubscribeTest, SinkFiresOnCommit) {
  Database db = MakeDb();
  CreateEventsTable(db);
  std::vector<uint64_t> seen;
  std::vector<uint32_t> shards;
  FnSink sink([&](uint32_t shard, const ChangeRecord& c) {
    shards.push_back(shard);
    seen.push_back(c.seqno);
  });
  db.Subscribe(&sink);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(db.Delete("events", Value(int64_t(1))).ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(shards, (std::vector<uint32_t>{0, 0}));
}

TEST(DbSubscribeTest, UnsubscribeStopsDelivery) {
  Database db = MakeDb();
  CreateEventsTable(db);
  int count = 0;
  FnSink sink([&](uint32_t, const ChangeRecord&) { ++count; });
  const uint64_t id = db.Subscribe(&sink);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  db.Unsubscribe(id);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(2)),
                                   Value(std::string("b")), Value(0.0)})
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST(DbSubscribeTest, SinkMayReenterDatabase) {
  // The trigger monitor re-renders pages (reads the DB) from inside the
  // commit notification; no database lock may be held across the callback.
  Database db = MakeDb();
  CreateEventsTable(db);
  size_t observed_rows = 0;
  FnSink sink([&](uint32_t, const ChangeRecord&) {
    observed_rows = db.ScanAll("events").size();
  });
  db.Subscribe(&sink);
  ASSERT_TRUE(db.Upsert("events", {Value(int64_t(1)),
                                   Value(std::string("a")), Value(0.0)})
                  .ok());
  EXPECT_EQ(observed_rows, 1u);
}

TEST(DbSubscribeTest, PerShardSubscriptionFilters) {
  DatabaseOptions options;
  options.shards = 4;
  Database db = MakeDb(std::move(options));
  CreateEventsTable(db);
  std::vector<uint32_t> all_shards;
  FnSink all_sink(
      [&](uint32_t shard, const ChangeRecord&) { all_shards.push_back(shard); });
  db.Subscribe(&all_sink, kAllShards);

  // Find a key on shard 0 and one off it, then subscribe to shard 0 only.
  const HashShardMap& map = HashShardMap::Instance();
  std::vector<uint32_t> filtered;
  FnSink shard0_sink(
      [&](uint32_t shard, const ChangeRecord&) { filtered.push_back(shard); });
  db.Subscribe(&shard0_sink, /*shard=*/0);
  size_t expected_shard0 = 0;
  for (int i = 1; i <= 32; ++i) {
    ASSERT_TRUE(db.Upsert("events", {Value(int64_t(i)),
                                     Value(std::string("e")), Value(0.0)})
                    .ok());
    if (map.ShardOf("events", std::to_string(i), 4) == 0) ++expected_shard0;
  }
  EXPECT_EQ(all_shards.size(), 32u);
  EXPECT_EQ(filtered.size(), expected_shard0);
  for (const uint32_t shard : filtered) EXPECT_EQ(shard, 0u);
}

// --- replicated apply ---------------------------------------------------------------

TEST(DbReplicateTest, MirrorsMasterSeqnos) {
  Database master = MakeDb();
  CreateEventsTable(master);
  Database replica = MakeDb();
  CreateEventsTable(replica);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(master
                    .Upsert("events", {Value(int64_t(i)),
                                       Value(std::string("e")), Value(0.0)})
                    .ok());
  }
  for (const auto& change : ChangesAfter(master, 0)) {
    ASSERT_TRUE(replica.ApplyReplicated(change).ok());
  }
  EXPECT_EQ(replica.LastSeqno(), master.LastSeqno());
  EXPECT_EQ(replica.RowCount("events"), 4u);
}

TEST(DbReplicateTest, RejectsGaps) {
  Database master = MakeDb();
  CreateEventsTable(master);
  Database replica = MakeDb();
  CreateEventsTable(replica);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(master
                    .Upsert("events", {Value(int64_t(i)),
                                       Value(std::string("e")), Value(0.0)})
                    .ok());
  }
  const auto changes = ChangesAfter(master, 0);
  ASSERT_TRUE(replica.ApplyReplicated(changes[0]).ok());
  // Skipping shard seqno 2 must be refused.
  EXPECT_EQ(replica.ApplyReplicated(changes[2]).code(), ErrorCode::kDataLoss);
  // Re-applying seqno 1 (duplicate) must also be refused.
  EXPECT_EQ(replica.ApplyReplicated(changes[0]).code(), ErrorCode::kDataLoss);
  ASSERT_TRUE(replica.ApplyReplicated(changes[1]).ok());
  ASSERT_TRUE(replica.ApplyReplicated(changes[2]).ok());
  EXPECT_EQ(replica.LastSeqno(), 3u);
}

TEST(DbReplicateTest, RejectsForeignShardLayout) {
  Database master = MakeDb();
  CreateEventsTable(master);
  ASSERT_TRUE(master
                  .Upsert("events", {Value(int64_t(1)),
                                     Value(std::string("e")), Value(0.0)})
                  .ok());
  auto change = ChangesAfter(master, 0).front();

  // A record claiming a shard this store doesn't have is a layout mismatch,
  // not a gap.
  Database replica = MakeDb();
  CreateEventsTable(replica);
  change.shard = 3;
  EXPECT_EQ(replica.ApplyReplicated(change).code(),
            ErrorCode::kInvalidArgument);

  // So is a shard index that disagrees with the replica's own placement.
  DatabaseOptions sharded;
  sharded.shards = 4;
  Database sharded_replica = MakeDb(std::move(sharded));
  CreateEventsTable(sharded_replica);
  const uint32_t owner = HashShardMap::Instance().ShardOf("events", "1", 4);
  change.shard = (owner + 1) % 4;
  EXPECT_EQ(sharded_replica.ApplyReplicated(change).code(),
            ErrorCode::kInvalidArgument);
}

TEST(DbReplicateTest, ReplicatedDeleteApplies) {
  Database master = MakeDb();
  CreateEventsTable(master);
  Database replica = MakeDb();
  CreateEventsTable(replica);
  ASSERT_TRUE(master
                  .Upsert("events", {Value(int64_t(1)),
                                     Value(std::string("e")), Value(0.0)})
                  .ok());
  ASSERT_TRUE(master.Delete("events", Value(int64_t(1))).ok());
  for (const auto& change : ChangesAfter(master, 0)) {
    ASSERT_TRUE(replica.ApplyReplicated(change).ok());
  }
  EXPECT_EQ(replica.RowCount("events"), 0u);
}

// --- change-log retention and recovery (ISSUE 4) ----------------------------

namespace {

// Self-cleaning mkdtemp directory for WAL-backed databases.
struct TempWalDir {
  TempWalDir() {
    char tmpl[] = "/tmp/nagano_db_wal_XXXXXX";
    const char* created = ::mkdtemp(tmpl);
    EXPECT_NE(created, nullptr);
    path = created;
  }
  ~TempWalDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

std::unique_ptr<wal::WriteAheadLog> OpenWal(const std::string& dir,
                                            metrics::MetricRegistry* registry) {
  wal::WalOptions options;
  options.dir = dir;
  options.metrics.registry = registry;
  auto log = wal::WriteAheadLog::Open(std::move(options));
  EXPECT_TRUE(log.ok()) << log.status().ToString();
  return std::move(log).value();
}

Database MakeWalDb(wal::WriteAheadLog* wal, metrics::MetricRegistry* registry,
                   size_t retention = 0) {
  DatabaseOptions options;
  options.metrics.registry = registry;
  options.wal = wal;
  options.change_log_retention = retention;
  return Database(std::move(options));
}

void UpsertN(Database& db, int from, int to) {
  for (int i = from; i <= to; ++i) {
    ASSERT_TRUE(db.Upsert("events", {Value(int64_t(i)),
                                     Value("e" + std::to_string(i)),
                                     Value(double(i))})
                    .ok());
  }
}

}  // namespace

TEST(DbRetentionTest, CheckpointTruncatesLogToRetention) {
  TempWalDir dir;
  metrics::MetricRegistry registry;
  auto wal = OpenWal(dir.path, &registry);
  Database db = MakeWalDb(wal.get(), &registry, /*retention=*/4);
  CreateEventsTable(db);
  UpsertN(db, 1, 10);  // seqnos 1..10
  EXPECT_EQ(db.log_head_seqno(), 1u);
  EXPECT_EQ(ChangesAfter(db, 0).size(), 10u);

  ASSERT_TRUE(db.Checkpoint().ok());
  // Retention 4 keeps seqnos 7..10; the head moves to 7.
  EXPECT_EQ(db.log_head_seqno(), 7u);
  EXPECT_EQ(ChangesAfter(db, 6).size(), 4u);
  EXPECT_EQ(ChangesAfter(db, 6).front().seqno, 7u);
}

TEST(DbRetentionTest, ReadChangesAroundTruncatedHead) {
  TempWalDir dir;
  metrics::MetricRegistry registry;
  auto wal = OpenWal(dir.path, &registry);
  Database db = MakeWalDb(wal.get(), &registry, /*retention=*/4);
  CreateEventsTable(db);
  UpsertN(db, 1, 10);
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_EQ(db.log_head_seqno(), 7u);
  EXPECT_EQ(db.RetainedCursor().at(0), 6u);

  // Exactly at the head (position = head-1 = 6): everything retained.
  auto at_head = db.ReadChanges(ChangeCursor{{6}});
  ASSERT_TRUE(at_head.ok());
  EXPECT_TRUE(at_head.value().gap_shards.empty());
  EXPECT_EQ(at_head.value().records.size(), 4u);
  EXPECT_EQ(at_head.value().records.front().seqno, 7u);

  // Before the head: the per-shard gap that drives replica resync — the
  // shard is reported in gap_shards with its position unmoved, not an
  // all-or-nothing error.
  for (uint64_t after : {0u, 3u, 5u}) {
    auto gap = db.ReadChanges(ChangeCursor{{after}});
    ASSERT_TRUE(gap.ok()) << "after=" << after;
    EXPECT_EQ(gap.value().gap_shards, (std::vector<uint32_t>{0}));
    EXPECT_TRUE(gap.value().records.empty());
    EXPECT_EQ(gap.value().next.at(0), after);  // position held for resync
  }
  // A consumer that only knows a global watermark re-parents through
  // CursorAtGlobal, which clamps to the retained head: the read yields the
  // retained suffix without a gap (the clamp already acknowledged the loss).
  auto clamped = db.ReadChanges(db.CursorAtGlobal(0));
  ASSERT_TRUE(clamped.ok());
  EXPECT_TRUE(clamped.value().gap_shards.empty());
  EXPECT_EQ(clamped.value().records.size(), 4u);
  EXPECT_EQ(clamped.value().records.front().seqno, 7u);

  // Past the end: empty, not a gap.
  auto past = db.ReadChanges(ChangeCursor{{10}});
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past.value().records.empty());
  EXPECT_TRUE(past.value().gap_shards.empty());
  auto way_past = db.ReadChanges(ChangeCursor{{1000}});
  ASSERT_TRUE(way_past.ok());
  EXPECT_TRUE(way_past.value().records.empty());
}

TEST(DbRetentionTest, UnboundedRetentionKeepsFullLog) {
  TempWalDir dir;
  metrics::MetricRegistry registry;
  auto wal = OpenWal(dir.path, &registry);
  Database db = MakeWalDb(wal.get(), &registry, /*retention=*/0);
  CreateEventsTable(db);
  UpsertN(db, 1, 10);
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_EQ(db.log_head_seqno(), 1u);
  EXPECT_EQ(ChangesAfter(db, 0).size(), 10u);
}

TEST(DbRecoverTest, SeqnoContinuityAcrossRecover) {
  TempWalDir dir;
  metrics::MetricRegistry registry;
  uint64_t last_before_crash = 0;
  {
    auto wal = OpenWal(dir.path, &registry);
    Database db = MakeWalDb(wal.get(), &registry, /*retention=*/4);
    CreateEventsTable(db);
    UpsertN(db, 1, 6);
    ASSERT_TRUE(db.Checkpoint().ok());
    UpsertN(db, 7, 9);  // post-checkpoint tail
    last_before_crash = db.LastSeqno();
    ASSERT_EQ(last_before_crash, 9u);
  }
  // "Crash": drop the database, reopen the WAL, recover a fresh one.
  metrics::MetricRegistry registry2;
  auto wal = OpenWal(dir.path, &registry2);
  Database recovered = MakeWalDb(wal.get(), &registry2);
  ASSERT_TRUE(recovered.Recover().ok());
  ASSERT_EQ(recovered.last_recovery().shards.size(), 1u);
  EXPECT_TRUE(recovered.last_recovery().healthy());
  EXPECT_EQ(recovered.last_recovery().shards[0].replayed, 3u);

  // Original seqnos preserved...
  EXPECT_EQ(recovered.LastSeqno(), last_before_crash);
  EXPECT_EQ(recovered.RowCount("events"), 9u);
  // ...the rebuilt in-memory log starts after the checkpoint...
  EXPECT_EQ(recovered.log_head_seqno(), 7u);
  EXPECT_EQ(ChangesAfter(recovered, 6).size(), 3u);
  auto gap = recovered.ReadChanges(ChangeCursor{{3}});
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(gap.value().gap_shards, (std::vector<uint32_t>{0}));
  // ...and new commits continue densely from the recovered tip.
  ASSERT_TRUE(recovered
                  .Upsert("events", {Value(int64_t(100)),
                                     Value(std::string("post")), Value(1.0)})
                  .ok());
  EXPECT_EQ(recovered.LastSeqno(), last_before_crash + 1);
  EXPECT_EQ(ChangesAfter(recovered, last_before_crash).front().seqno,
            last_before_crash + 1);
  // A replica that was at the master's pre-crash seqno can keep pulling.
  for (const auto& change : ChangesAfter(recovered, 6)) {
    EXPECT_GE(change.seqno, 7u);
  }
}

}  // namespace
}  // namespace nagano::db
